"""Bounded-degree candidate graphs for large matching instances.

Muri's grouping stage turns a job queue into a maximum weight matching
problem.  Building every pairwise edge is O(n^2) weight evaluations and
hands the O(V^3) blossom solver a dense graph — fine for a few hundred
nodes, hopeless for the paper's 1,000-job queues.  Almost all of that
work is wasted: the matching only ever uses edges between jobs whose
resource bottlenecks complement each other, and a handful of good
partners per job is enough to recover the dense optimum to within a
couple of percent (the same candidate-space pruning that makes periodic
re-optimization viable in Pollux-style schedulers).

This module prunes the edge set before any weight is computed:

1. Every node gets a cheap *signature*: its dominant (bottleneck)
   resource plus a coarse log-scale bin of its total duration.
2. Nodes are bucketed by signature.  For each node, partner buckets
   are visited complementary-bottleneck-first, nearest duration bin
   first — the pairs interleaving actually rewards.
3. At most ``probe_limit`` candidate weights are evaluated per node and
   only the ``max_degree`` heaviest surviving edges per node are kept
   (the union of per-node top lists, as in a k-NN graph).

The result is an edge list of size O(n * max_degree) built with
O(n * probe_limit) weight evaluations, fully deterministic in the input
order.  Callers are expected to fall back to the dense build below a
size threshold where exactness matters more than speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.observe.events import EventCategory
from repro.observe.tracer import Tracer

__all__ = [
    "SparsifyConfig",
    "node_signature",
    "sparse_candidate_edges",
]

#: ``weight_fn(i, j)`` returns the edge weight for nodes ``i < j``, or
#: ``None`` when the pair is infeasible (size cap, memory, threshold).
WeightFn = Callable[[int, int], Optional[float]]

#: Vectorized oracle: one optional weight per ``(i, j)`` pair, in order.
BatchWeightFn = Callable[
    [Sequence[Tuple[int, int]]], Sequence[Optional[float]]
]

Signature = Tuple[int, int]


@dataclass(frozen=True)
class SparsifyConfig:
    """Knobs for the sparse candidate graph.

    Attributes:
        threshold: Bucket size at which sparsification kicks in; below
            it callers should build the dense graph, which keeps
            small-queue results bit-identical.
        max_degree: Edges kept per node (the heaviest ones survive).
        probe_limit: Candidate weight evaluations per node; bounds the
            total work at ``O(n * probe_limit)``.  Must be at least
            ``max_degree``.
        duration_bin_base: Log base of the coarse duration binning used
            in signatures; larger bases mean coarser bins.
    """

    threshold: int = 128
    max_degree: int = 8
    probe_limit: int = 24
    duration_bin_base: float = 2.0

    def __post_init__(self) -> None:
        if self.threshold < 2:
            raise ValueError("threshold must be >= 2")
        if self.max_degree < 1:
            raise ValueError("max_degree must be >= 1")
        if self.probe_limit < self.max_degree:
            raise ValueError("probe_limit must be >= max_degree")
        if self.duration_bin_base <= 1.0:
            raise ValueError("duration_bin_base must be > 1")


def node_signature(
    durations: Sequence[float],
    duration_bin_base: float = 2.0,
) -> Signature:
    """Quantized bottleneck signature of one node.

    Returns ``(bottleneck_index, duration_bin)`` where the bin is the
    floor of the log of the total duration.  Nodes with the same
    signature are near-interchangeable as matching partners, which is
    what lets the candidate search treat buckets as units.
    """
    bottleneck = max(range(len(durations)), key=lambda i: durations[i])
    total = sum(durations)
    if total <= 0:
        return bottleneck, 0
    return bottleneck, int(math.floor(math.log(total, duration_bin_base)))


def _bucket_preference(
    own: Signature, other: Signature
) -> Tuple[int, int, int]:
    """Sort key: complementary bottlenecks first, then nearby durations."""
    same_bottleneck = 1 if other[0] == own[0] else 0
    return (same_bottleneck, abs(other[1] - own[1]), other[0])


def _probe_plan(
    signatures: Sequence[Signature],
    config: SparsifyConfig,
) -> Tuple[List[List[Tuple[int, int]]], List[Tuple[int, int]], int, int]:
    """Plan every probe without evaluating a single weight.

    The probe sequence depends only on the signatures — never on the
    weights — so it can be laid out up front and the weights evaluated
    afterwards, one by one or in a single vectorized batch.

    Returns ``(per_node, unique_pairs, total_probes, memo_hits)``:
    the ordered probe list of each node, the distinct pairs in
    first-discovery order (the exact order the interleaved evaluation
    used to call the weight oracle in), and the probe/memo counters
    the tracer reports.
    """
    n = len(signatures)
    total_probes = 0
    memo_hits = 0
    buckets: Dict[Signature, List[int]] = {}
    rank: List[int] = [0] * n
    for index, signature in enumerate(signatures):
        members = buckets.setdefault(signature, [])
        rank[index] = len(members)
        members.append(index)

    bucket_keys = sorted(buckets)
    # Partner buckets per signature, best-complementing first.
    bucket_preference: Dict[Signature, List[List[int]]] = {
        signature: [
            buckets[key]
            for key in sorted(
                bucket_keys, key=lambda k: _bucket_preference(signature, k)
            )
        ]
        for signature in bucket_keys
    }

    seen: Dict[Tuple[int, int], None] = {}
    unique_pairs: List[Tuple[int, int]] = []
    per_node: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for i in range(n):
        probes = 0
        partners = bucket_preference[signatures[i]]
        # Two anti-starvation measures.  Probes are *interleaved* over
        # partner buckets (depth-by-depth, best bucket first) so one
        # oversubscribed bucket cannot eat the whole budget and leave a
        # node without alternatives.  Within each bucket the walk is
        # *rotated* by this node's rank in its own bucket, so peers
        # probe different partners instead of funnelling onto the same
        # few candidates — both would otherwise starve the matching.
        depth = 0
        while probes < config.probe_limit:
            advanced = False
            for members in partners:
                if probes >= config.probe_limit:
                    break
                size = len(members)
                if depth >= size:
                    continue
                j = members[(rank[i] + depth) % size]
                if j == i:
                    continue
                advanced = True
                pair = (i, j) if i < j else (j, i)
                probes += 1
                total_probes += 1
                if pair in seen:
                    # The mirrored probe from the other endpoint: the
                    # evaluation is memoized, feasibility included.
                    memo_hits += 1
                else:
                    seen[pair] = None
                    unique_pairs.append(pair)
                per_node[i].append(pair)
            if not advanced and depth >= max(len(m) for m in partners):
                break
            depth += 1
    return per_node, unique_pairs, total_probes, memo_hits


def sparse_candidate_edges(
    signatures: Sequence[Signature],
    weight_fn: Optional[WeightFn],
    config: SparsifyConfig = SparsifyConfig(),
    tracer: Optional[Tracer] = None,
    sim_time: float = 0.0,
    batch_weight_fn: Optional[BatchWeightFn] = None,
) -> List[Tuple[int, int, float]]:
    """Build a bounded-degree edge list over ``len(signatures)`` nodes.

    Args:
        signatures: One :func:`node_signature` per node, in node order.
        weight_fn: Edge weight oracle; ``None`` marks an infeasible
            pair.  Called at most ``probe_limit`` times per node, with
            ``i < j``.  May be None when ``batch_weight_fn`` is given.
        config: Degree / probe bounds.
        tracer: Optional :class:`~repro.observe.Tracer`; when enabled,
            probe/memo-hit counters are bumped and one ``CACHE``
            summary event describes the build.
        sim_time: Simulation time stamped on that summary event.
        batch_weight_fn: Optional vectorized oracle taking the distinct
            pairs in first-discovery order and returning one optional
            weight per pair.  When given it replaces ``weight_fn``;
            results must match what per-pair evaluation would produce
            (the grouper's batched kernel is bit-identical by
            construction).

    Returns:
        Edges ``(i, j, weight)`` with ``i < j``, each in the top
        ``max_degree`` of at least one endpoint, sorted by node index.
    """
    n = len(signatures)
    tracing = tracer is not None and tracer.enabled
    per_node, unique_pairs, total_probes, memo_hits = _probe_plan(
        signatures, config
    )

    # Evaluate distinct pairs in first-discovery order — exactly the
    # order the interleaved probe loop would have called the oracle in,
    # so stateful weight functions (caches) see an identical sequence.
    if batch_weight_fn is not None:
        evaluated = batch_weight_fn(unique_pairs)
        if len(evaluated) != len(unique_pairs):
            raise ValueError("batch_weight_fn must return one weight per pair")
    else:
        if weight_fn is None:
            raise ValueError("need weight_fn or batch_weight_fn")
        evaluated = [weight_fn(*pair) for pair in unique_pairs]
    neg_inf = float("-inf")
    weights: Dict[Tuple[int, int], float] = {
        pair: (neg_inf if weight is None else weight)
        for pair, weight in zip(unique_pairs, evaluated)
    }

    top: List[List[Tuple[float, int, int]]] = [[] for _ in range(n)]
    for i in range(n):
        entries = top[i]
        for pair in per_node[i]:
            weight = weights[pair]
            if weight == neg_inf:
                continue
            entries.append((weight, pair[0], pair[1]))
        # Deterministic top-m: heaviest first.  Ties keep discovery
        # order (stable sort), which the rotation already spreads over
        # each bucket — tie-breaking on node index instead would point
        # every node's kept edges at the same low-indexed partners.
        entries.sort(key=lambda e: -e[0])
        del entries[config.max_degree :]

    kept = {
        (u, v) for per_node_top in top for (_w, u, v) in per_node_top
    }
    if tracing:
        tracer.count("sparsify.probes", total_probes)
        tracer.count("sparsify.memo_hits", memo_hits)
        tracer.emit(
            EventCategory.CACHE,
            "sparsify.build",
            sim_time,
            nodes=n,
            probes=total_probes,
            memo_hits=memo_hits,
            edges_kept=len(kept),
        )
    return [(u, v, weights[(u, v)]) for (u, v) in sorted(kept)]
