"""Exact (exponential-time) matchers used as test oracles and ablations.

These solvers enumerate matchings directly.  They are only suitable for
small instances (roughly n <= 12 for graphs, n <= 10 for hypergraphs)
but serve two purposes:

* a ground-truth oracle for the blossom implementation in unit and
  property-based tests, and
* the optimal arm of the "Blossom vs greedy vs exact" grouping ablation
  (DESIGN.md section 5).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "brute_force_matching",
    "exact_hypergraph_matching",
]


def _best_edge_weights(
    edges: Sequence[Tuple[int, int, float]],
) -> Dict[Tuple[int, int], float]:
    """Collapse parallel edges, keeping the maximum weight per pair."""
    best: Dict[Tuple[int, int], float] = {}
    for u, v, w in edges:
        key = (min(u, v), max(u, v))
        if key not in best or w > best[key]:
            best[key] = w
    return best


def brute_force_matching(
    edges: Sequence[Tuple[int, int, float]],
    max_cardinality: bool = False,
) -> Tuple[Set[Tuple[int, int]], float]:
    """Find a maximum weight matching by exhaustive search.

    Returns:
        ``(pairs, weight)`` where pairs is a set of ``(u, v)`` tuples
        with ``u < v`` and weight is the total matched weight.
    """
    weights = _best_edge_weights(edges)
    edge_list = sorted(weights.items())

    best_pairs: Set[Tuple[int, int]] = set()
    best_key = (0, 0.0) if max_cardinality else 0.0

    def key_of(pairs: List[Tuple[int, int]], weight: float):
        if max_cardinality:
            return (len(pairs), weight)
        return weight

    def search(idx: int, used: Set[int], pairs: List[Tuple[int, int]], weight: float) -> None:
        nonlocal best_pairs, best_key
        current = key_of(pairs, weight)
        if current > best_key:
            best_key = current
            best_pairs = set(pairs)
        if idx == len(edge_list):
            return
        # Prune: even taking every remaining edge cannot help if all
        # weights are <= 0 and we are weight-maximizing only.
        for next_idx in range(idx, len(edge_list)):
            (u, v), w = edge_list[next_idx]
            if u in used or v in used:
                continue
            used.add(u)
            used.add(v)
            pairs.append((u, v))
            search(next_idx + 1, used, pairs, weight + w)
            pairs.pop()
            used.discard(u)
            used.discard(v)

    search(0, set(), [], 0.0)
    return best_pairs, (best_key[1] if max_cardinality else best_key)


def exact_hypergraph_matching(
    num_nodes: int,
    group_size: int,
    weight_fn,
    max_nodes: Optional[int] = 20,
) -> Tuple[List[Tuple[int, ...]], float]:
    """Exact maximum weight k-uniform hypergraph matching.

    This solves the problem Muri's multi-round heuristic approximates
    (section 4.2 of the paper): partition a subset of ``num_nodes``
    nodes into disjoint groups of exactly ``group_size`` nodes,
    maximizing the sum of ``weight_fn(group)`` over chosen groups.

    Args:
        num_nodes: Number of nodes, labelled ``0..num_nodes-1``.
        group_size: Hyperedge cardinality k.
        weight_fn: Callable mapping a tuple of node ids to a weight.
        max_nodes: Guard against accidental exponential blowups (the
            search enumerates all C(n, k) hyperedges): inputs larger
            than this raise instead of hanging.  Pass None to disable
            when a long exact run is intended.

    Returns:
        ``(groups, total_weight)`` for the best disjoint selection.

    Raises:
        ValueError: When ``group_size < 1``, or ``num_nodes`` exceeds
            ``max_nodes``.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if max_nodes is not None and num_nodes > max_nodes:
        raise ValueError(
            f"exact matching over {num_nodes} nodes would enumerate "
            f"C({num_nodes}, {group_size}) hyperedges; pass "
            f"max_nodes=None to force it"
        )
    nodes = tuple(range(num_nodes))
    hyperedges = [
        (group, float(weight_fn(group)))
        for group in combinations(nodes, group_size)
    ]

    best_groups: List[Tuple[int, ...]] = []
    best_weight = 0.0

    def search(idx: int, used: int, groups: List[Tuple[int, ...]], weight: float) -> None:
        nonlocal best_groups, best_weight
        if weight > best_weight:
            best_weight = weight
            best_groups = list(groups)
        for next_idx in range(idx, len(hyperedges)):
            group, w = hyperedges[next_idx]
            mask = 0
            for node in group:
                mask |= 1 << node
            if used & mask:
                continue
            groups.append(group)
            search(next_idx + 1, used | mask, groups, weight + w)
            groups.pop()

    search(0, 0, [], 0.0)
    return best_groups, best_weight
