"""Graph matching algorithms used by Muri's grouping stage.

Public API:

* :func:`max_weight_matching` / :func:`matching_pairs` — from-scratch
  O(V^3) blossom algorithm for maximum weight matching.
* :func:`greedy_matching` / :func:`sequential_pair_matching` — greedy
  baselines ("w/o Blossom" ablation).
* :func:`brute_force_matching` / :func:`exact_hypergraph_matching` —
  exponential-time exact oracles for tests and ablations.
"""

from repro.matching.blossom import (
    matching_pairs,
    matching_weight,
    max_weight_matching,
)
from repro.matching.exact import brute_force_matching, exact_hypergraph_matching
from repro.matching.greedy import greedy_matching, sequential_pair_matching

__all__ = [
    "max_weight_matching",
    "matching_pairs",
    "matching_weight",
    "greedy_matching",
    "sequential_pair_matching",
    "brute_force_matching",
    "exact_hypergraph_matching",
]
