"""Graph matching algorithms used by Muri's grouping stage.

Public API:

* :func:`max_weight_matching` / :func:`matching_pairs` — from-scratch
  O(V^3) blossom algorithm for maximum weight matching.
* :func:`greedy_matching` / :func:`sequential_pair_matching` — greedy
  baselines ("w/o Blossom" ablation).
* :func:`brute_force_matching` / :func:`exact_hypergraph_matching` —
  exponential-time exact oracles for tests and ablations.
* :func:`sparse_candidate_edges` / :class:`SparsifyConfig` —
  bounded-degree candidate graphs for 1,000+ node instances.
"""

from repro.matching.blossom import (
    matching_pairs,
    matching_weight,
    max_weight_matching,
)
from repro.matching.exact import brute_force_matching, exact_hypergraph_matching
from repro.matching.greedy import greedy_matching, sequential_pair_matching
from repro.matching.sparsify import (
    SparsifyConfig,
    node_signature,
    sparse_candidate_edges,
)

__all__ = [
    "max_weight_matching",
    "matching_pairs",
    "matching_weight",
    "greedy_matching",
    "sequential_pair_matching",
    "brute_force_matching",
    "exact_hypergraph_matching",
    "SparsifyConfig",
    "node_signature",
    "sparse_candidate_edges",
]
