"""Greedy maximum weight matching.

This is the "Muri without Blossom" ablation arm of the paper
(Figure 11): pack jobs pairwise in a fixed priority order rather than
solving the matching optimally.  It is also a useful fast approximate
matcher in its own right (1/2-approximation when edges are taken in
descending weight order).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

__all__ = ["greedy_matching", "sequential_pair_matching"]


def greedy_matching(
    edges: Sequence[Tuple[int, int, float]],
) -> Set[Tuple[int, int]]:
    """Match edges greedily in descending weight order.

    Guarantees at least half the optimal matched weight for
    non-negative weights.  Equal-weight edges tie-break on the
    *normalized* endpoint pair ``(min(u, v), max(u, v))``, so the
    result is independent of both input order and the orientation each
    edge happens to be written in.
    """
    matched: Set[int] = set()
    pairs: Set[Tuple[int, int]] = set()
    ranked = sorted(
        edges,
        key=lambda e: (-e[2], min(e[0], e[1]), max(e[0], e[1])),
    )
    for u, v, w in ranked:
        if w <= 0:
            break
        if u in matched or v in matched or u == v:
            continue
        matched.add(u)
        matched.add(v)
        pairs.add((min(u, v), max(u, v)))
    return pairs


def sequential_pair_matching(order: Sequence[int]) -> List[Tuple[int, int]]:
    """Pair consecutive items of ``order``: (o0, o1), (o2, o3), ...

    This mirrors the paper's "Muri-L w/o Blossom" variant, which packs
    jobs with the same GPU requirement in descending priority order
    instead of running the matching algorithm.  A trailing odd item is
    left unpaired.
    """
    pairs = []
    for i in range(0, len(order) - 1, 2):
        pairs.append((order[i], order[i + 1]))
    return pairs
