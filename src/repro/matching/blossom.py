"""Maximum weight matching in general graphs (the blossom algorithm).

Muri (SIGCOMM 2022, section 4.1) converts the job-grouping problem into
maximum weight matching on a graph whose nodes are jobs and whose edge
weights are pairwise interleaving efficiencies.  This module provides a
from-scratch implementation of the O(V^3) blossom algorithm so the
scheduler has no dependency on an external graph library.

The implementation follows the classic primal-dual formulation of
Galil, "Efficient algorithms for finding maximum matching in graphs"
(ACM Computing Surveys, 1986).  A matching is grown by repeatedly
searching for augmenting paths in an alternating forest; odd cycles
("blossoms") are shrunk into super-nodes, and dual variables are
adjusted when the search saturates.

The inner loops are the grouping hot path, so the matcher is written
as flat-array kernels (see docs/performance.md for the measurements
behind each choice):

* All per-edge state lives in preallocated parallel arrays — endpoint
  vertices ``_edge_u``/``_edge_v``, doubled weights ``_edge_two_w``,
  and a per-vertex adjacency of ``(endpoint, edge, neighbour)``
  triples — never in per-edge tuples or dicts, and slack is computed
  inline from those arrays in the BFS scan.
* Per-stage resets reuse preallocated template arrays via slice
  assignment instead of reallocating.
* Blossom leaf traversal is an iterative preorder walk returning a
  list (the recursive generator dominated profiles), and
  ``_add_blossom`` folds its best-edge scan over a dict keyed by
  neighbouring blossom with memoized slacks, preserving the exact
  ascending-index tie-break of the original full-array scan.

Results are bit-identical to the retained reference implementation
(:mod:`repro.matching.blossom_reference`), which the test-suite
enforces on random dense graphs.

Entry points:

``max_weight_matching(edges, max_cardinality=False)``
    Returns the mate array for an edge list of ``(u, v, weight)`` triples.

``matching_pairs(edges, max_cardinality=False)``
    Returns the matching as a set of ``(u, v)`` pairs with ``u < v``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

__all__ = ["max_weight_matching", "matching_pairs", "matching_weight"]

#: Sentinel for "no mate / no label end".
_NONE = -1


def max_weight_matching(
    edges: Sequence[Tuple[int, int, float]],
    max_cardinality: bool = False,
) -> List[int]:
    """Compute a maximum weight matching.

    Args:
        edges: Edge list of ``(u, v, weight)`` with non-negative integer
            vertex ids.  Weights may be any real numbers (integers keep
            the algorithm exact; floats are supported and adequate for
            interleaving efficiencies in ``[0, 1]``).
        max_cardinality: If true, only maximum-cardinality matchings are
            considered; among those the maximum weight one is returned.

    Returns:
        A list ``mate`` such that ``mate[v]`` is the vertex matched to
        ``v``, or ``-1`` if ``v`` is unmatched.  Vertices are
        ``0..max_vertex_id`` where ``max_vertex_id`` is the largest id
        appearing in ``edges``.

    Raises:
        ValueError: If an edge is a self-loop or has a negative vertex id.
    """
    matcher = _Matcher(edges, max_cardinality)
    return matcher.solve()


def matching_pairs(
    edges: Sequence[Tuple[int, int, float]],
    max_cardinality: bool = False,
) -> Set[Tuple[int, int]]:
    """Return the maximum weight matching as a set of vertex pairs."""
    mate = max_weight_matching(edges, max_cardinality)
    pairs = set()
    for v, m in enumerate(mate):
        if m != _NONE and v < m:
            pairs.add((v, m))
    return pairs


def matching_weight(
    edges: Sequence[Tuple[int, int, float]],
    pairs: Iterable[Tuple[int, int]],
) -> float:
    """Total weight of ``pairs`` under ``edges``.

    When multiple edges connect the same pair, the heaviest one counts,
    mirroring how the matcher treats parallel edges.
    """
    best = {}
    for u, v, w in edges:
        key = (min(u, v), max(u, v))
        if key not in best or w > best[key]:
            best[key] = w
    total = 0.0
    for u, v in pairs:
        total += best[(min(u, v), max(u, v))]
    return total


class _Matcher:
    """State machine for one maximum weight matching computation.

    Vertices are ``0..nvertex-1``.  Blossoms are numbered
    ``nvertex..2*nvertex-1``.  Edge ``k`` has endpoints ``2k`` and
    ``2k+1``; endpoint ``p`` corresponds to vertex ``endpoint[p]``.
    """

    def __init__(
        self,
        edges: Sequence[Tuple[int, int, float]],
        max_cardinality: bool,
    ) -> None:
        edges = list(edges)
        for (u, v, _w) in edges:
            if u == v:
                raise ValueError(f"self-loop edge ({u}, {v}) is not allowed")
            if u < 0 or v < 0:
                raise ValueError("vertex ids must be non-negative")
        self.edges = edges
        self.max_cardinality = max_cardinality

        if edges:
            nvertex = 1 + max(max(u, v) for (u, v, _w) in edges)
        else:
            nvertex = 0
        self.nvertex = nvertex
        nedge = len(edges)

        max_weight = max((w for (_u, _v, w) in edges), default=0)
        self.max_weight = max(0, max_weight)

        # Flat per-edge arrays: endpoints and doubled weight.  The hot
        # loops index these instead of unpacking (u, v, w) tuples.
        self._edge_u = [u for (u, _v, _w) in edges]
        self._edge_v = [v for (_u, v, _w) in edges]
        self._edge_two_w = [2 * w for (_u, _v, w) in edges]

        # endpoint[p] is the vertex at endpoint p of edge p//2.
        self.endpoint = [edges[p // 2][p % 2] for p in range(2 * nedge)]

        # neighbend[v] lists the remote endpoints of edges incident to v.
        self.neighbend: List[List[int]] = [[] for _ in range(nvertex)]
        for k, (u, v, _w) in enumerate(edges):
            self.neighbend[u].append(2 * k + 1)
            self.neighbend[v].append(2 * k)

        # _adjacent[v] unpacks neighbend for the BFS scan: one
        # (remote endpoint, edge id, remote vertex) triple per incident
        # edge, in the same order as neighbend[v].
        self._adjacent: List[List[Tuple[int, int, int]]] = [
            [(p, p // 2, self.endpoint[p]) for p in plist]
            for plist in self.neighbend
        ]

        # mate[v] is the remote endpoint of v's matched edge, or -1.
        self.mate = [_NONE] * nvertex

        # label[b] in {0: free, 1: S, 2: T} for top-level blossom b.
        self.label = [0] * (2 * nvertex)
        # labelend[b] is the endpoint through which b obtained its label.
        self.labelend = [_NONE] * (2 * nvertex)

        # inblossom[v] is the top-level blossom containing vertex v.
        self.inblossom = list(range(nvertex))
        # blossomparent[b] is the immediate parent blossom, or -1.
        self.blossomparent = [_NONE] * (2 * nvertex)
        # blossomchilds[b] lists sub-blossoms of b in cycle order.
        self.blossomchilds: List[List[int]] = [None] * (2 * nvertex)  # type: ignore[list-item]
        # blossombase[b] is the base vertex of blossom b.
        self.blossombase = list(range(nvertex)) + [_NONE] * nvertex
        # blossomendps[b] lists connecting endpoints around b's cycle.
        self.blossomendps: List[List[int]] = [None] * (2 * nvertex)  # type: ignore[list-item]

        # bestedge[b] is the least-slack edge to a different S-blossom.
        self.bestedge = [_NONE] * (2 * nvertex)
        # blossombestedges[b] caches least-slack edges per S-blossom.
        self.blossombestedges: List[List[int]] = [None] * (2 * nvertex)  # type: ignore[list-item]

        self.unusedblossoms = list(range(nvertex, 2 * nvertex))

        # Dual variables: vertices start at max_weight/2, blossoms at 0.
        self.dualvar = (
            [self.max_weight] * nvertex + [0] * nvertex
        )

        # allowedge[k] is true if edge k has zero slack.
        self.allowedge = [False] * nedge
        self.queue: List[int] = []

        # Per-stage reset templates, copied in with slice assignment.
        self._label_template = [0] * (2 * nvertex)
        self._bestedge_template = [_NONE] * (2 * nvertex)
        self._allowedge_template = [False] * nedge

    # -- slack -----------------------------------------------------------

    def _slack(self, k: int) -> float:
        """Return 2 * slack of edge k (keeps integer weights integral)."""
        dualvar = self.dualvar
        return (
            dualvar[self._edge_u[k]]
            + dualvar[self._edge_v[k]]
            - self._edge_two_w[k]
        )

    # -- blossom traversal ----------------------------------------------

    def _blossom_leaves(self, b: int) -> List[int]:
        """Leaf vertices of (sub-)blossom b, in cycle preorder."""
        nvertex = self.nvertex
        if b < nvertex:
            return [b]
        blossomchilds = self.blossomchilds
        leaves: List[int] = []
        stack = [b]
        while stack:
            t = stack.pop()
            if t < nvertex:
                leaves.append(t)
            else:
                stack.extend(reversed(blossomchilds[t]))
        return leaves

    # -- labels ----------------------------------------------------------

    def _assign_label(self, w: int, t: int, p: int) -> None:
        """Assign label t to the top-level blossom containing vertex w."""
        label = self.label
        labelend = self.labelend
        bestedge = self.bestedge
        while True:
            b = self.inblossom[w]
            label[w] = label[b] = t
            labelend[w] = labelend[b] = p
            bestedge[w] = bestedge[b] = _NONE
            if t == 1:
                # b became an S-blossom; scan its vertices.
                self.queue.extend(self._blossom_leaves(b))
                return
            # b became a T-blossom; label its mate an S-blossom.
            base_mate = self.mate[self.blossombase[b]]
            w = self.endpoint[base_mate]
            t = 1
            p = base_mate ^ 1

    def _scan_blossom(self, v: int, w: int) -> int:
        """Trace back from v and w to find a common ancestor base vertex.

        Returns the base vertex if the paths connect (forming a blossom),
        or -1 if an augmenting path was discovered instead.
        """
        label = self.label
        labelend = self.labelend
        inblossom = self.inblossom
        endpoint = self.endpoint
        path = []
        base = _NONE
        while v != _NONE or w != _NONE:
            if v != _NONE:
                b = inblossom[v]
                if label[b] & 4:
                    base = self.blossombase[b]
                    break
                path.append(b)
                label[b] = 5
                if labelend[b] == _NONE:
                    v = _NONE
                else:
                    v = endpoint[labelend[b]]
                    b = inblossom[v]
                    v = endpoint[labelend[b]]
            if w != _NONE:
                v, w = w, v
        for b in path:
            label[b] = 1
        return base

    # -- blossom shrink / expand ------------------------------------------

    def _add_blossom(self, base: int, k: int) -> None:
        """Construct a blossom with the given base over edge k = (v, w)."""
        v = self._edge_u[k]
        w = self._edge_v[k]
        inblossom = self.inblossom
        labelend = self.labelend
        endpoint = self.endpoint
        bb = inblossom[base]
        bv = inblossom[v]
        bw = inblossom[w]
        b = self.unusedblossoms.pop()
        self.blossombase[b] = base
        self.blossomparent[b] = _NONE
        self.blossomparent[bb] = b
        path: List[int] = []
        endps: List[int] = []
        self.blossomchilds[b] = path
        self.blossomendps[b] = endps
        # Trace from v back to base.
        while bv != bb:
            self.blossomparent[bv] = b
            path.append(bv)
            endps.append(labelend[bv])
            v = endpoint[labelend[bv]]
            bv = inblossom[v]
        path.append(bb)
        path.reverse()
        endps.reverse()
        endps.append(2 * k)
        # Trace from w back to base.
        while bw != bb:
            self.blossomparent[bw] = b
            path.append(bw)
            endps.append(labelend[bw] ^ 1)
            w = endpoint[labelend[bw]]
            bw = inblossom[w]
        label = self.label
        label[b] = 1
        labelend[b] = labelend[bb]
        self.dualvar[b] = 0
        queue = self.queue
        for leaf in self._blossom_leaves(b):
            if label[inblossom[leaf]] == 2:
                queue.append(leaf)
            inblossom[leaf] = b
        # Recompute best-edge caches.  bestedgeto maps a neighbouring
        # S-blossom to its least-slack edge with the slack memoized;
        # duals are frozen inside this call, so memoizing is exact.
        # Emitting the surviving edges in ascending-blossom order below
        # reproduces the original full-array scan's tie-breaking.
        dualvar = self.dualvar
        edge_u = self._edge_u
        edge_v = self._edge_v
        edge_two_w = self._edge_two_w
        neighbend = self.neighbend
        blossombestedges = self.blossombestedges
        bestedgeto: dict = {}
        for bv in path:
            cached = blossombestedges[bv]
            if cached is None:
                nblists: Iterable[List[int]] = (
                    [p // 2 for p in neighbend[leaf]]
                    for leaf in self._blossom_leaves(bv)
                )
            else:
                nblists = [cached]
            for nblist in nblists:
                for kk in nblist:
                    i = edge_u[kk]
                    j = edge_v[kk]
                    if inblossom[j] == b:
                        j = i
                    bj = inblossom[j]
                    if bj != b and label[bj] == 1:
                        slack = (
                            dualvar[edge_u[kk]]
                            + dualvar[edge_v[kk]]
                            - edge_two_w[kk]
                        )
                        entry = bestedgeto.get(bj)
                        if entry is None or slack < entry[0]:
                            bestedgeto[bj] = (slack, kk)
            blossombestedges[bv] = None
            self.bestedge[bv] = _NONE
        best_k = _NONE
        best_slack = 0.0
        keep: List[int] = []
        for _bj, (slack, kk) in sorted(bestedgeto.items()):
            keep.append(kk)
            if best_k == _NONE or slack < best_slack:
                best_k = kk
                best_slack = slack
        blossombestedges[b] = keep
        self.bestedge[b] = best_k

    def _expand_blossom(self, b: int, endstage: bool) -> None:
        """Expand blossom b, moving its children to the top level."""
        for s in self.blossomchilds[b]:
            self.blossomparent[s] = _NONE
            if s < self.nvertex:
                self.inblossom[s] = s
            elif endstage and self.dualvar[s] == 0:
                self._expand_blossom(s, endstage)
            else:
                for leaf in self._blossom_leaves(s):
                    self.inblossom[leaf] = s
        if (not endstage) and self.label[b] == 2:
            # Relabel the path through the blossom that the T-label took.
            entrychild = self.inblossom[self.endpoint[self.labelend[b] ^ 1]]
            j = self.blossomchilds[b].index(entrychild)
            if j & 1:
                # Odd index: go forward around the cycle.
                j -= len(self.blossomchilds[b])
                jstep = 1
                endptrick = 0
            else:
                jstep = -1
                endptrick = 1
            p = self.labelend[b]
            while j != 0:
                self.label[self.endpoint[p ^ 1]] = 0
                self.label[
                    self.endpoint[
                        self.blossomendps[b][j - endptrick] ^ endptrick ^ 1
                    ]
                ] = 0
                self._assign_label(self.endpoint[p ^ 1], 2, p)
                self.allowedge[self.blossomendps[b][j - endptrick] // 2] = True
                j += jstep
                p = self.blossomendps[b][j - endptrick] ^ endptrick
                self.allowedge[p // 2] = True
                j += jstep
            bv = self.blossomchilds[b][j]
            self.label[self.endpoint[p ^ 1]] = self.label[bv] = 2
            self.labelend[self.endpoint[p ^ 1]] = self.labelend[bv] = p
            self.bestedge[bv] = _NONE
            # Leave the base child labelled; unlabel the rest.
            j += jstep
            while self.blossomchilds[b][j] != entrychild:
                bv = self.blossomchilds[b][j]
                if self.label[bv] == 1:
                    j += jstep
                    continue
                for v in self._blossom_leaves(bv):
                    if self.label[v] != 0:
                        break
                else:
                    v = _NONE
                if v != _NONE:
                    self.label[v] = 0
                    self.label[
                        self.endpoint[self.mate[self.blossombase[bv]]]
                    ] = 0
                    self._assign_label(v, 2, self.labelend[v])
                j += jstep
        self.label[b] = self.labelend[b] = _NONE
        self.blossomchilds[b] = None  # type: ignore[assignment]
        self.blossomendps[b] = None  # type: ignore[assignment]
        self.blossombase[b] = _NONE
        self.blossombestedges[b] = None  # type: ignore[assignment]
        self.bestedge[b] = _NONE
        self.unusedblossoms.append(b)

    def _augment_blossom(self, b: int, v: int) -> None:
        """Swap matched/unmatched edges over the path from v to b's base."""
        t = v
        while self.blossomparent[t] != b:
            t = self.blossomparent[t]
        if t >= self.nvertex:
            self._augment_blossom(t, v)
        i = j = self.blossomchilds[b].index(t)
        if i & 1:
            j -= len(self.blossomchilds[b])
            jstep = 1
            endptrick = 0
        else:
            jstep = -1
            endptrick = 1
        while j != 0:
            j += jstep
            t = self.blossomchilds[b][j]
            p = self.blossomendps[b][j - endptrick] ^ endptrick
            if t >= self.nvertex:
                self._augment_blossom(t, self.endpoint[p])
            j += jstep
            t = self.blossomchilds[b][j]
            if t >= self.nvertex:
                self._augment_blossom(t, self.endpoint[p ^ 1])
            self.mate[self.endpoint[p]] = p ^ 1
            self.mate[self.endpoint[p ^ 1]] = p
        # Rotate the child list so the new base is first.
        self.blossomchilds[b] = (
            self.blossomchilds[b][i:] + self.blossomchilds[b][:i]
        )
        self.blossomendps[b] = (
            self.blossomendps[b][i:] + self.blossomendps[b][:i]
        )
        self.blossombase[b] = self.blossombase[self.blossomchilds[b][0]]

    def _augment_matching(self, k: int) -> None:
        """Augment the matching along the path through edge k."""
        v = self._edge_u[k]
        w = self._edge_v[k]
        endpoint = self.endpoint
        for (s, p) in ((v, 2 * k + 1), (w, 2 * k)):
            while True:
                bs = self.inblossom[s]
                if bs >= self.nvertex:
                    self._augment_blossom(bs, s)
                self.mate[s] = p
                if self.labelend[bs] == _NONE:
                    break
                t = endpoint[self.labelend[bs]]
                bt = self.inblossom[t]
                s = endpoint[self.labelend[bt]]
                j = endpoint[self.labelend[bt] ^ 1]
                if bt >= self.nvertex:
                    self._augment_blossom(bt, j)
                self.mate[j] = self.labelend[bt]
                p = self.labelend[bt] ^ 1

    # -- main loop ---------------------------------------------------------

    def solve(self) -> List[int]:
        """Run the primal-dual stages and return the mate array."""
        nvertex = self.nvertex
        # Hot-loop locals: every name below is an alias of the instance
        # state, mutated only in place so the helpers see each update.
        label = self.label
        bestedge = self.bestedge
        allowedge = self.allowedge
        inblossom = self.inblossom
        mate = self.mate
        dualvar = self.dualvar
        adjacent = self._adjacent
        edge_u = self._edge_u
        edge_v = self._edge_v
        edge_two_w = self._edge_two_w
        blossombestedges = self.blossombestedges
        blossomparent = self.blossomparent
        blossombase = self.blossombase
        queue = self.queue

        for _stage in range(nvertex):
            label[:] = self._label_template
            bestedge[:] = self._bestedge_template
            for b in range(nvertex, 2 * nvertex):
                blossombestedges[b] = None  # type: ignore[assignment]
            allowedge[:] = self._allowedge_template
            del queue[:]
            labelend = self.labelend
            for v in range(nvertex):
                if mate[v] == _NONE and label[inblossom[v]] == 0:
                    # Free singletons (the common case) take the
                    # _assign_label(v, 1, _NONE) fast path inline.
                    if inblossom[v] == v:
                        label[v] = 1
                        labelend[v] = _NONE
                        queue.append(v)
                    else:
                        self._assign_label(v, 1, _NONE)

            augmented = False
            while True:
                while queue and not augmented:
                    v = queue.pop()
                    dual_v = dualvar[v]
                    for p, k, w in adjacent[v]:
                        bw = inblossom[w]
                        if inblossom[v] == bw:
                            continue
                        if not allowedge[k]:
                            kslack = dual_v + dualvar[w] - edge_two_w[k]
                            if kslack <= 0:
                                allowedge[k] = True
                        if allowedge[k]:
                            label_bw = label[bw]
                            if label_bw == 0:
                                self._assign_label(w, 2, p ^ 1)
                            elif label_bw == 1:
                                base = self._scan_blossom(v, w)
                                if base >= 0:
                                    self._add_blossom(base, k)
                                else:
                                    self._augment_matching(k)
                                    augmented = True
                                    break
                            elif label[w] == 0:
                                label[w] = 2
                                self.labelend[w] = p ^ 1
                        elif label[bw] == 1:
                            b = inblossom[v]
                            be = bestedge[b]
                            if be == _NONE or kslack < (
                                dualvar[edge_u[be]]
                                + dualvar[edge_v[be]]
                                - edge_two_w[be]
                            ):
                                bestedge[b] = k
                        elif label[w] == 0:
                            be = bestedge[w]
                            if be == _NONE or kslack < (
                                dualvar[edge_u[be]]
                                + dualvar[edge_v[be]]
                                - edge_two_w[be]
                            ):
                                bestedge[w] = k
                if augmented:
                    break

                # Dual update.
                deltatype = -1
                delta = deltaedge = deltablossom = None
                if not self.max_cardinality:
                    deltatype = 1
                    delta = min(dualvar[:nvertex], default=0)
                for v in range(nvertex):
                    be = bestedge[v]
                    if label[inblossom[v]] == 0 and be != _NONE:
                        d = (
                            dualvar[edge_u[be]]
                            + dualvar[edge_v[be]]
                            - edge_two_w[be]
                        )
                        if deltatype == -1 or d < delta:
                            delta = d
                            deltatype = 2
                            deltaedge = be
                for b in range(2 * nvertex):
                    be = bestedge[b]
                    if (
                        blossomparent[b] == _NONE
                        and label[b] == 1
                        and be != _NONE
                    ):
                        kslack = (
                            dualvar[edge_u[be]]
                            + dualvar[edge_v[be]]
                            - edge_two_w[be]
                        )
                        d = kslack / 2
                        if deltatype == -1 or d < delta:
                            delta = d
                            deltatype = 3
                            deltaedge = be
                for b in range(nvertex, 2 * nvertex):
                    if (
                        blossombase[b] >= 0
                        and blossomparent[b] == _NONE
                        and label[b] == 2
                        and (deltatype == -1 or dualvar[b] < delta)
                    ):
                        delta = dualvar[b]
                        deltatype = 4
                        deltablossom = b
                if deltatype == -1:
                    # No further improvement possible (max-cardinality).
                    deltatype = 1
                    delta = max(0, min(dualvar[:nvertex]))

                # Apply delta to duals.
                for v in range(nvertex):
                    lbl = label[inblossom[v]]
                    if lbl == 1:
                        dualvar[v] -= delta
                    elif lbl == 2:
                        dualvar[v] += delta
                for b in range(nvertex, 2 * nvertex):
                    if blossombase[b] >= 0 and blossomparent[b] == _NONE:
                        if label[b] == 1:
                            dualvar[b] += delta
                        elif label[b] == 2:
                            dualvar[b] -= delta

                if deltatype == 1:
                    break
                elif deltatype == 2:
                    allowedge[deltaedge] = True
                    i = edge_u[deltaedge]
                    if label[inblossom[i]] == 0:
                        i = edge_v[deltaedge]
                    queue.append(i)
                elif deltatype == 3:
                    allowedge[deltaedge] = True
                    queue.append(edge_u[deltaedge])
                elif deltatype == 4:
                    self._expand_blossom(deltablossom, False)

            if not augmented:
                break

            # End of a successful stage: expand spent blossoms.
            for b in range(nvertex, 2 * nvertex):
                if (
                    blossomparent[b] == _NONE
                    and blossombase[b] >= 0
                    and label[b] == 1
                    and dualvar[b] == 0
                ):
                    self._expand_blossom(b, True)

        # Translate endpoints back to vertices.
        endpoint = self.endpoint
        for v in range(nvertex):
            if mate[v] >= 0:
                mate[v] = endpoint[mate[v]]
        return mate
