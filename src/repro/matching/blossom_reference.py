"""Reference blossom matcher (slow, assertion-heavy, trusted).

This is the original straight-from-the-survey implementation of the
O(V^3) primal-dual blossom algorithm (Galil 1986) that
:mod:`repro.matching.blossom` shipped before its inner loops were
restructured for speed.  It is kept verbatim — per-stage invariant
assertions included — as the trusted oracle for the optimized kernel:
:mod:`repro.verify` and the matching test-suite compare the two
implementations edge-for-edge on random dense graphs, so any
tie-breaking or correctness drift in the fast kernel is caught as a
hard mismatch rather than a silent plan change.

Entry point:

``reference_max_weight_matching(edges, max_cardinality=False)``
    Returns the mate array for an edge list of ``(u, v, weight)``
    triples, bit-identical to what the optimized matcher must produce.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = ["reference_max_weight_matching"]

#: Sentinel for "no mate / no label end".
_NONE = -1


def reference_max_weight_matching(
    edges: Sequence[Tuple[int, int, float]],
    max_cardinality: bool = False,
) -> List[int]:
    """Compute a maximum weight matching with the reference matcher.

    Same contract as
    :func:`repro.matching.blossom.max_weight_matching`, which the
    optimized kernel must reproduce bit-identically: a list ``mate``
    such that ``mate[v]`` is the vertex matched to ``v``, or ``-1`` if
    ``v`` is unmatched.
    """
    matcher = _Matcher(edges, max_cardinality)
    return matcher.solve()


class _Matcher:
    """State machine for one maximum weight matching computation.

    Vertices are ``0..nvertex-1``.  Blossoms are numbered
    ``nvertex..2*nvertex-1``.  Edge ``k`` has endpoints ``2k`` and
    ``2k+1``; endpoint ``p`` corresponds to vertex ``endpoint[p]``.
    """

    def __init__(
        self,
        edges: Sequence[Tuple[int, int, float]],
        max_cardinality: bool,
    ) -> None:
        edges = list(edges)
        for (u, v, _w) in edges:
            if u == v:
                raise ValueError(f"self-loop edge ({u}, {v}) is not allowed")
            if u < 0 or v < 0:
                raise ValueError("vertex ids must be non-negative")
        self.edges = edges
        self.max_cardinality = max_cardinality

        if edges:
            nvertex = 1 + max(max(u, v) for (u, v, _w) in edges)
        else:
            nvertex = 0
        self.nvertex = nvertex
        nedge = len(edges)

        max_weight = max((w for (_u, _v, w) in edges), default=0)
        self.max_weight = max(0, max_weight)

        # endpoint[p] is the vertex at endpoint p of edge p//2.
        self.endpoint = [edges[p // 2][p % 2] for p in range(2 * nedge)]

        # neighbend[v] lists the remote endpoints of edges incident to v.
        self.neighbend: List[List[int]] = [[] for _ in range(nvertex)]
        for k, (u, v, _w) in enumerate(edges):
            self.neighbend[u].append(2 * k + 1)
            self.neighbend[v].append(2 * k)

        # mate[v] is the remote endpoint of v's matched edge, or -1.
        self.mate = [_NONE] * nvertex

        # label[b] in {0: free, 1: S, 2: T} for top-level blossom b.
        self.label = [0] * (2 * nvertex)
        # labelend[b] is the endpoint through which b obtained its label.
        self.labelend = [_NONE] * (2 * nvertex)

        # inblossom[v] is the top-level blossom containing vertex v.
        self.inblossom = list(range(nvertex))
        # blossomparent[b] is the immediate parent blossom, or -1.
        self.blossomparent = [_NONE] * (2 * nvertex)
        # blossomchilds[b] lists sub-blossoms of b in cycle order.
        self.blossomchilds: List[List[int]] = [None] * (2 * nvertex)  # type: ignore[list-item]
        # blossombase[b] is the base vertex of blossom b.
        self.blossombase = list(range(nvertex)) + [_NONE] * nvertex
        # blossomendps[b] lists connecting endpoints around b's cycle.
        self.blossomendps: List[List[int]] = [None] * (2 * nvertex)  # type: ignore[list-item]

        # bestedge[b] is the least-slack edge to a different S-blossom.
        self.bestedge = [_NONE] * (2 * nvertex)
        # blossombestedges[b] caches least-slack edges per S-blossom.
        self.blossombestedges: List[List[int]] = [None] * (2 * nvertex)  # type: ignore[list-item]

        self.unusedblossoms = list(range(nvertex, 2 * nvertex))

        # Dual variables: vertices start at max_weight/2, blossoms at 0.
        self.dualvar = (
            [self.max_weight] * nvertex + [0] * nvertex
        )

        # allowedge[k] is true if edge k has zero slack.
        self.allowedge = [False] * nedge
        self.queue: List[int] = []

    # -- slack -----------------------------------------------------------

    def _slack(self, k: int) -> float:
        """Return 2 * slack of edge k (keeps integer weights integral)."""
        (u, v, w) = self.edges[k]
        return self.dualvar[u] + self.dualvar[v] - 2 * w

    # -- blossom traversal ----------------------------------------------

    def _blossom_leaves(self, b: int) -> Iterable[int]:
        """Yield the leaf vertices of (sub-)blossom b."""
        if b < self.nvertex:
            yield b
            return
        for child in self.blossomchilds[b]:
            if child < self.nvertex:
                yield child
            else:
                yield from self._blossom_leaves(child)

    # -- labels ----------------------------------------------------------

    def _assign_label(self, w: int, t: int, p: int) -> None:
        """Assign label t to the top-level blossom containing vertex w."""
        b = self.inblossom[w]
        assert self.label[w] == 0 and self.label[b] == 0
        self.label[w] = self.label[b] = t
        self.labelend[w] = self.labelend[b] = p
        self.bestedge[w] = self.bestedge[b] = _NONE
        if t == 1:
            # b became an S-blossom; scan its vertices.
            self.queue.extend(self._blossom_leaves(b))
        elif t == 2:
            # b became a T-blossom; label its mate an S-blossom.
            base = self.blossombase[b]
            assert self.mate[base] >= 0
            self._assign_label(
                self.endpoint[self.mate[base]], 1, self.mate[base] ^ 1
            )

    def _scan_blossom(self, v: int, w: int) -> int:
        """Trace back from v and w to find a common ancestor base vertex.

        Returns the base vertex if the paths connect (forming a blossom),
        or -1 if an augmenting path was discovered instead.
        """
        path = []
        base = _NONE
        while v != _NONE or w != _NONE:
            if v != _NONE:
                b = self.inblossom[v]
                if self.label[b] & 4:
                    base = self.blossombase[b]
                    break
                assert self.label[b] == 1
                path.append(b)
                self.label[b] = 5
                assert self.labelend[b] == self.mate[self.blossombase[b]]
                if self.labelend[b] == _NONE:
                    v = _NONE
                else:
                    v = self.endpoint[self.labelend[b]]
                    b = self.inblossom[v]
                    assert self.label[b] == 2
                    assert self.labelend[b] >= 0
                    v = self.endpoint[self.labelend[b]]
            if w != _NONE:
                v, w = w, v
        for b in path:
            self.label[b] = 1
        return base

    # -- blossom shrink / expand ------------------------------------------

    def _add_blossom(self, base: int, k: int) -> None:
        """Construct a blossom with the given base over edge k = (v, w)."""
        (v, w, _wt) = self.edges[k]
        bb = self.inblossom[base]
        bv = self.inblossom[v]
        bw = self.inblossom[w]
        b = self.unusedblossoms.pop()
        self.blossombase[b] = base
        self.blossomparent[b] = _NONE
        self.blossomparent[bb] = b
        path: List[int] = []
        endps: List[int] = []
        self.blossomchilds[b] = path
        self.blossomendps[b] = endps
        # Trace from v back to base.
        while bv != bb:
            self.blossomparent[bv] = b
            path.append(bv)
            endps.append(self.labelend[bv])
            assert self.label[bv] == 2 or (
                self.label[bv] == 1
                and self.labelend[bv] == self.mate[self.blossombase[bv]]
            )
            assert self.labelend[bv] >= 0
            v = self.endpoint[self.labelend[bv]]
            bv = self.inblossom[v]
        path.append(bb)
        path.reverse()
        endps.reverse()
        endps.append(2 * k)
        # Trace from w back to base.
        while bw != bb:
            self.blossomparent[bw] = b
            path.append(bw)
            endps.append(self.labelend[bw] ^ 1)
            assert self.label[bw] == 2 or (
                self.label[bw] == 1
                and self.labelend[bw] == self.mate[self.blossombase[bw]]
            )
            assert self.labelend[bw] >= 0
            w = self.endpoint[self.labelend[bw]]
            bw = self.inblossom[w]
        assert self.label[bb] == 1
        self.label[b] = 1
        self.labelend[b] = self.labelend[bb]
        self.dualvar[b] = 0
        for leaf in self._blossom_leaves(b):
            if self.label[self.inblossom[leaf]] == 2:
                self.queue.append(leaf)
            self.inblossom[leaf] = b
        # Recompute best-edge caches.
        bestedgeto = [_NONE] * (2 * self.nvertex)
        for bv in path:
            if self.blossombestedges[bv] is None:
                nblists: Iterable[List[int]] = (
                    [p // 2 for p in self.neighbend[leaf]]
                    for leaf in self._blossom_leaves(bv)
                )
            else:
                nblists = [self.blossombestedges[bv]]
            for nblist in nblists:
                for kk in nblist:
                    (i, j, _wt2) = self.edges[kk]
                    if self.inblossom[j] == b:
                        i, j = j, i
                    bj = self.inblossom[j]
                    if (
                        bj != b
                        and self.label[bj] == 1
                        and (
                            bestedgeto[bj] == _NONE
                            or self._slack(kk) < self._slack(bestedgeto[bj])
                        )
                    ):
                        bestedgeto[bj] = kk
            self.blossombestedges[bv] = None
            self.bestedge[bv] = _NONE
        self.blossombestedges[b] = [kk for kk in bestedgeto if kk != _NONE]
        self.bestedge[b] = _NONE
        for kk in self.blossombestedges[b]:
            if self.bestedge[b] == _NONE or self._slack(kk) < self._slack(
                self.bestedge[b]
            ):
                self.bestedge[b] = kk

    def _expand_blossom(self, b: int, endstage: bool) -> None:
        """Expand blossom b, moving its children to the top level."""
        for s in self.blossomchilds[b]:
            self.blossomparent[s] = _NONE
            if s < self.nvertex:
                self.inblossom[s] = s
            elif endstage and self.dualvar[s] == 0:
                self._expand_blossom(s, endstage)
            else:
                for leaf in self._blossom_leaves(s):
                    self.inblossom[leaf] = s
        if (not endstage) and self.label[b] == 2:
            # Relabel the path through the blossom that the T-label took.
            assert self.labelend[b] >= 0
            entrychild = self.inblossom[self.endpoint[self.labelend[b] ^ 1]]
            j = self.blossomchilds[b].index(entrychild)
            if j & 1:
                # Odd index: go forward around the cycle.
                j -= len(self.blossomchilds[b])
                jstep = 1
                endptrick = 0
            else:
                jstep = -1
                endptrick = 1
            p = self.labelend[b]
            while j != 0:
                self.label[self.endpoint[p ^ 1]] = 0
                self.label[
                    self.endpoint[
                        self.blossomendps[b][j - endptrick] ^ endptrick ^ 1
                    ]
                ] = 0
                self._assign_label(self.endpoint[p ^ 1], 2, p)
                self.allowedge[self.blossomendps[b][j - endptrick] // 2] = True
                j += jstep
                p = self.blossomendps[b][j - endptrick] ^ endptrick
                self.allowedge[p // 2] = True
                j += jstep
            bv = self.blossomchilds[b][j]
            self.label[self.endpoint[p ^ 1]] = self.label[bv] = 2
            self.labelend[self.endpoint[p ^ 1]] = self.labelend[bv] = p
            self.bestedge[bv] = _NONE
            # Leave the base child labelled; unlabel the rest.
            j += jstep
            while self.blossomchilds[b][j] != entrychild:
                bv = self.blossomchilds[b][j]
                if self.label[bv] == 1:
                    j += jstep
                    continue
                for v in self._blossom_leaves(bv):
                    if self.label[v] != 0:
                        break
                else:
                    v = _NONE
                if v != _NONE:
                    assert self.label[v] == 2
                    assert self.inblossom[v] == bv
                    self.label[v] = 0
                    self.label[
                        self.endpoint[self.mate[self.blossombase[bv]]]
                    ] = 0
                    self._assign_label(v, 2, self.labelend[v])
                j += jstep
        self.label[b] = self.labelend[b] = _NONE
        self.blossomchilds[b] = None  # type: ignore[assignment]
        self.blossomendps[b] = None  # type: ignore[assignment]
        self.blossombase[b] = _NONE
        self.blossombestedges[b] = None  # type: ignore[assignment]
        self.bestedge[b] = _NONE
        self.unusedblossoms.append(b)

    def _augment_blossom(self, b: int, v: int) -> None:
        """Swap matched/unmatched edges over the path from v to b's base."""
        t = v
        while self.blossomparent[t] != b:
            t = self.blossomparent[t]
        if t >= self.nvertex:
            self._augment_blossom(t, v)
        i = j = self.blossomchilds[b].index(t)
        if i & 1:
            j -= len(self.blossomchilds[b])
            jstep = 1
            endptrick = 0
        else:
            jstep = -1
            endptrick = 1
        while j != 0:
            j += jstep
            t = self.blossomchilds[b][j]
            p = self.blossomendps[b][j - endptrick] ^ endptrick
            if t >= self.nvertex:
                self._augment_blossom(t, self.endpoint[p])
            j += jstep
            t = self.blossomchilds[b][j]
            if t >= self.nvertex:
                self._augment_blossom(t, self.endpoint[p ^ 1])
            self.mate[self.endpoint[p]] = p ^ 1
            self.mate[self.endpoint[p ^ 1]] = p
        # Rotate the child list so the new base is first.
        self.blossomchilds[b] = (
            self.blossomchilds[b][i:] + self.blossomchilds[b][:i]
        )
        self.blossomendps[b] = (
            self.blossomendps[b][i:] + self.blossomendps[b][:i]
        )
        self.blossombase[b] = self.blossombase[self.blossomchilds[b][0]]
        assert self.blossombase[b] == v

    def _augment_matching(self, k: int) -> None:
        """Augment the matching along the path through edge k."""
        (v, w, _wt) = self.edges[k]
        for (s, p) in ((v, 2 * k + 1), (w, 2 * k)):
            while True:
                bs = self.inblossom[s]
                assert self.label[bs] == 1
                assert self.labelend[bs] == self.mate[self.blossombase[bs]]
                if bs >= self.nvertex:
                    self._augment_blossom(bs, s)
                self.mate[s] = p
                if self.labelend[bs] == _NONE:
                    break
                t = self.endpoint[self.labelend[bs]]
                bt = self.inblossom[t]
                assert self.label[bt] == 2
                assert self.labelend[bt] >= 0
                s = self.endpoint[self.labelend[bt]]
                j = self.endpoint[self.labelend[bt] ^ 1]
                assert self.blossombase[bt] == t
                if bt >= self.nvertex:
                    self._augment_blossom(bt, j)
                self.mate[j] = self.labelend[bt]
                p = self.labelend[bt] ^ 1

    # -- main loop ---------------------------------------------------------

    def solve(self) -> List[int]:
        """Run the primal-dual stages and return the mate array."""
        nvertex = self.nvertex
        for _stage in range(nvertex):
            self.label = [0] * (2 * nvertex)
            self.bestedge = [_NONE] * (2 * nvertex)
            for b in range(nvertex, 2 * nvertex):
                self.blossombestedges[b] = None  # type: ignore[assignment]
            self.allowedge = [False] * len(self.edges)
            self.queue = []
            for v in range(nvertex):
                if (
                    self.mate[v] == _NONE
                    and self.label[self.inblossom[v]] == 0
                ):
                    self._assign_label(v, 1, _NONE)

            augmented = False
            while True:
                while self.queue and not augmented:
                    v = self.queue.pop()
                    assert self.label[self.inblossom[v]] == 1
                    for p in self.neighbend[v]:
                        k = p // 2
                        w = self.endpoint[p]
                        if self.inblossom[v] == self.inblossom[w]:
                            continue
                        if not self.allowedge[k]:
                            kslack = self._slack(k)
                            if kslack <= 0:
                                self.allowedge[k] = True
                        if self.allowedge[k]:
                            if self.label[self.inblossom[w]] == 0:
                                self._assign_label(w, 2, p ^ 1)
                            elif self.label[self.inblossom[w]] == 1:
                                base = self._scan_blossom(v, w)
                                if base >= 0:
                                    self._add_blossom(base, k)
                                else:
                                    self._augment_matching(k)
                                    augmented = True
                                    break
                            elif self.label[w] == 0:
                                assert self.label[self.inblossom[w]] == 2
                                self.label[w] = 2
                                self.labelend[w] = p ^ 1
                        elif self.label[self.inblossom[w]] == 1:
                            b = self.inblossom[v]
                            if (
                                self.bestedge[b] == _NONE
                                or kslack
                                < self._slack(self.bestedge[b])
                            ):
                                self.bestedge[b] = k
                        elif self.label[w] == 0:
                            if (
                                self.bestedge[w] == _NONE
                                or kslack < self._slack(self.bestedge[w])
                            ):
                                self.bestedge[w] = k
                if augmented:
                    break

                # Dual update.
                deltatype = -1
                delta = deltaedge = deltablossom = None
                if not self.max_cardinality:
                    deltatype = 1
                    delta = min(self.dualvar[:nvertex], default=0)
                for v in range(nvertex):
                    if (
                        self.label[self.inblossom[v]] == 0
                        and self.bestedge[v] != _NONE
                    ):
                        d = self._slack(self.bestedge[v])
                        if deltatype == -1 or d < delta:
                            delta = d
                            deltatype = 2
                            deltaedge = self.bestedge[v]
                for b in range(2 * nvertex):
                    if (
                        self.blossomparent[b] == _NONE
                        and self.label[b] == 1
                        and self.bestedge[b] != _NONE
                    ):
                        kslack = self._slack(self.bestedge[b])
                        d = kslack / 2
                        if deltatype == -1 or d < delta:
                            delta = d
                            deltatype = 3
                            deltaedge = self.bestedge[b]
                for b in range(nvertex, 2 * nvertex):
                    if (
                        self.blossombase[b] >= 0
                        and self.blossomparent[b] == _NONE
                        and self.label[b] == 2
                        and (deltatype == -1 or self.dualvar[b] < delta)
                    ):
                        delta = self.dualvar[b]
                        deltatype = 4
                        deltablossom = b
                if deltatype == -1:
                    # No further improvement possible (max-cardinality).
                    assert self.max_cardinality
                    deltatype = 1
                    delta = max(0, min(self.dualvar[:nvertex]))

                # Apply delta to duals.
                for v in range(nvertex):
                    lbl = self.label[self.inblossom[v]]
                    if lbl == 1:
                        self.dualvar[v] -= delta
                    elif lbl == 2:
                        self.dualvar[v] += delta
                for b in range(nvertex, 2 * nvertex):
                    if self.blossombase[b] >= 0 and self.blossomparent[b] == _NONE:
                        if self.label[b] == 1:
                            self.dualvar[b] += delta
                        elif self.label[b] == 2:
                            self.dualvar[b] -= delta

                if deltatype == 1:
                    break
                elif deltatype == 2:
                    self.allowedge[deltaedge] = True
                    (i, j, _wt) = self.edges[deltaedge]
                    if self.label[self.inblossom[i]] == 0:
                        i, j = j, i
                    assert self.label[self.inblossom[i]] == 1
                    self.queue.append(i)
                elif deltatype == 3:
                    self.allowedge[deltaedge] = True
                    (i, _j, _wt) = self.edges[deltaedge]
                    assert self.label[self.inblossom[i]] == 1
                    self.queue.append(i)
                elif deltatype == 4:
                    self._expand_blossom(deltablossom, False)

            if not augmented:
                break

            # End of a successful stage: expand spent blossoms.
            for b in range(nvertex, 2 * nvertex):
                if (
                    self.blossomparent[b] == _NONE
                    and self.blossombase[b] >= 0
                    and self.label[b] == 1
                    and self.dualvar[b] == 0
                ):
                    self._expand_blossom(b, True)

        # Translate endpoints back to vertices.
        for v in range(nvertex):
            if self.mate[v] >= 0:
                self.mate[v] = self.endpoint[self.mate[v]]
        for v in range(nvertex):
            assert self.mate[v] == _NONE or self.mate[self.mate[v]] == v
        return self.mate
