"""Virtual-cluster topology: how one GPU fleet is partitioned.

Production clusters (the Philly traces the repo models) are carved
into *virtual clusters* (VCs): disjoint machine sets with their own
queues and schedulers.  A :class:`VirtualCluster` names one such
partition; a :class:`FleetTopology` is the full layout plus the
tenant-access map (which tenants may run on which VCs).  The fleet
front-end (:class:`repro.fleet.FleetFrontEnd`) runs one scheduler
shard per VC and routes submissions with these rules.

:func:`partition_cluster` splits a flat machine count into N VCs the
way the fleet acceptance harness does — as evenly as possible, earlier
VCs taking the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster

__all__ = ["VirtualCluster", "FleetTopology", "partition_cluster"]


@dataclass(frozen=True)
class VirtualCluster:
    """One named partition of the fleet.

    Attributes:
        name: Unique VC identifier (the wire protocol's ``vc`` field).
        machines: Number of machines in the partition.
        gpus_per_machine: GPU slots per machine.
    """

    name: str
    machines: int
    gpus_per_machine: int

    def __post_init__(self) -> None:
        """Validate the partition shape.

        Raises:
            ValueError: For an empty name or non-positive sizes.
        """
        if not self.name:
            raise ValueError("a virtual cluster needs a name")
        if self.machines < 1:
            raise ValueError(f"VC {self.name!r} needs at least one machine")
        if self.gpus_per_machine < 1:
            raise ValueError(f"VC {self.name!r} needs at least one GPU/machine")

    @property
    def total_gpus(self) -> int:
        """GPU capacity of the partition."""
        return self.machines * self.gpus_per_machine

    def build_cluster(self) -> Cluster:
        """A fresh :class:`Cluster` with this partition's shape."""
        return Cluster(self.machines, self.gpus_per_machine)


class FleetTopology:
    """The fleet layout: ordered VCs plus the tenant-access map.

    VC declaration order is load-bearing — the front-end breaks
    routing ties by it — so the topology preserves it.

    Args:
        vcs: The virtual clusters, in routing-priority order.
        tenant_access: Optional mapping of tenant id to the VC names
            that tenant may run on (in routing order).  Tenants absent
            from the map may run on every VC.

    Raises:
        ValueError: For an empty fleet, duplicate VC names, or a
            tenant-access entry naming an unknown VC.
    """

    def __init__(
        self,
        vcs: Sequence[VirtualCluster],
        tenant_access: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> None:
        if not vcs:
            raise ValueError("a fleet needs at least one virtual cluster")
        names = [vc.name for vc in vcs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate VC names in {names}")
        self.vcs: Tuple[VirtualCluster, ...] = tuple(vcs)
        self._by_name: Dict[str, VirtualCluster] = {
            vc.name: vc for vc in self.vcs
        }
        access: Dict[str, Tuple[VirtualCluster, ...]] = {}
        for tenant, allowed in (tenant_access or {}).items():
            unknown = [name for name in allowed if name not in self._by_name]
            if unknown:
                raise ValueError(
                    f"tenant {tenant!r} references unknown VCs {unknown}"
                )
            access[tenant] = tuple(self._by_name[name] for name in allowed)
        self._access = access

    @property
    def names(self) -> Tuple[str, ...]:
        """VC names in declaration (routing-priority) order."""
        return tuple(vc.name for vc in self.vcs)

    @property
    def total_gpus(self) -> int:
        """GPU capacity of the whole fleet."""
        return sum(vc.total_gpus for vc in self.vcs)

    def get(self, name: str) -> Optional[VirtualCluster]:
        """The VC with ``name``, or None."""
        return self._by_name.get(name)

    def allowed_vcs(self, tenant: str) -> Tuple[VirtualCluster, ...]:
        """The VCs ``tenant`` may run on, in routing order.

        Tenants without an explicit access entry may use every VC.
        """
        return self._access.get(tenant, self.vcs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FleetTopology {', '.join(self.names)}>"


def partition_cluster(
    num_machines: int,
    gpus_per_machine: int,
    num_vcs: int,
    prefix: str = "vc",
) -> FleetTopology:
    """Split a flat cluster into ``num_vcs`` virtual clusters.

    Machines are divided as evenly as possible; when the count does
    not divide, earlier VCs take one extra machine (so ``vc0`` is
    never the smallest).

    Args:
        num_machines: Total machines in the fleet.
        gpus_per_machine: GPU slots per machine (homogeneous fleet).
        num_vcs: Number of partitions; must not exceed the machine
            count.
        prefix: VC names are ``f"{prefix}{i}"``.

    Raises:
        ValueError: When ``num_vcs`` < 1 or exceeds ``num_machines``.
    """
    if num_vcs < 1:
        raise ValueError("num_vcs must be >= 1")
    if num_vcs > num_machines:
        raise ValueError(
            f"cannot split {num_machines} machines into {num_vcs} VCs"
        )
    base, extra = divmod(num_machines, num_vcs)
    vcs = [
        VirtualCluster(
            name=f"{prefix}{i}",
            machines=base + (1 if i < extra else 0),
            gpus_per_machine=gpus_per_machine,
        )
        for i in range(num_vcs)
    ]
    return FleetTopology(vcs)
