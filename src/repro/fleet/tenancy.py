"""Per-tenant admission control: quotas and fair-share credits.

The fleet front-end charges every submission against its tenant's
:class:`TenantQuota` before any shard sees the job:

* **Pending quota** — a cap on the tenant's *open* (non-terminal) jobs
  across the whole fleet; exceeding it rejects with
  ``"quota_exceeded"``.
* **Fair-share credits** — a token bucket in GPU-credits: a
  submission costs its GPU demand, the bucket refills at
  ``credit_rate`` GPU-credits per (virtual) second up to
  ``credit_burst``.  An empty bucket rejects with
  ``"credits_exhausted"``.  This is the admission-side analogue of
  cluster-wide share fairness (cf. Pollux, arXiv 2008.12260): a tenant
  bursting past its share is throttled at the door instead of
  squeezing other tenants' queues.

Both rejects raise :class:`~repro.service.daemon.SubmitRejected` with
the tenant and structured details attached, extending the PR-5 codes
(the full list is :data:`repro.service.protocol.REJECTION_CODES`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Set

from repro.service.daemon import SubmitRejected

__all__ = ["TenantQuota", "TenantAccount", "TenantLedger"]


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant.

    Attributes:
        max_pending: Cap on the tenant's open (non-terminal) jobs
            fleet-wide; None is unlimited.
        credit_rate: GPU-credits earned per virtual second; None
            disables credit metering for the tenant.
        credit_burst: Token-bucket capacity (and initial balance) in
            GPU-credits; only meaningful with a ``credit_rate``.
    """

    max_pending: Optional[int] = None
    credit_rate: Optional[float] = None
    credit_burst: float = 0.0

    def __post_init__(self) -> None:
        """Validate the limits.

        Raises:
            ValueError: For non-positive caps/rates or a metered quota
                with no burst capacity.
        """
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None)")
        if self.credit_rate is not None:
            if self.credit_rate < 0:
                raise ValueError("credit_rate must be >= 0")
            if self.credit_burst <= 0:
                raise ValueError(
                    "a metered tenant needs credit_burst > 0 "
                    "(the bucket would otherwise never admit anything)"
                )


#: Tenants with no explicit quota (when the ledger allows them).
UNLIMITED = TenantQuota()


@dataclass
class TenantAccount:
    """Mutable per-tenant admission state.

    Attributes:
        quota: The tenant's limits.
        credits: Current token-bucket balance (GPU-credits).
        last_refill: Virtual timestamp of the last bucket refill.
        open_jobs: Ids of this tenant's jobs not yet observed terminal;
            swept lazily against shard state on each admission check,
            so each finished job is dropped exactly once.
        submitted: Total submissions admitted.
        rejected: Total submissions refused.
    """

    quota: TenantQuota
    credits: float = 0.0
    last_refill: float = 0.0
    open_jobs: Set[int] = field(default_factory=set)
    submitted: int = 0
    rejected: int = 0


class TenantLedger:
    """Fleet-wide tenant accounting: one :class:`TenantAccount` each.

    Args:
        quotas: Per-tenant limits.
        default_quota: Limits applied to tenants absent from
            ``quotas``; None together with ``strict=True`` makes
            unknown tenants a structured ``"unknown_tenant"`` reject,
            while the default (non-strict) admits them unmetered.
        strict: Reject tenants that have no quota entry.
    """

    def __init__(
        self,
        quotas: Optional[Mapping[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
        strict: bool = False,
    ) -> None:
        self._quotas = dict(quotas or {})
        self._default = default_quota
        self._strict = strict
        self.accounts: Dict[str, TenantAccount] = {}

    def account(self, tenant: str) -> TenantAccount:
        """The tenant's account, created on first use.

        Raises:
            SubmitRejected: Code ``"unknown_tenant"`` in strict mode
                for tenants without a quota entry.
        """
        existing = self.accounts.get(tenant)
        if existing is not None:
            return existing
        quota = self._quotas.get(tenant)
        if quota is None:
            if self._strict:
                raise SubmitRejected(
                    "unknown_tenant",
                    f"tenant {tenant!r} is not registered with this fleet",
                    tenant=tenant,
                    details={"known_tenants": sorted(self._quotas)},
                )
            quota = self._default if self._default is not None else UNLIMITED
        account = TenantAccount(
            quota=quota,
            credits=quota.credit_burst,
        )
        self.accounts[tenant] = account
        return account

    def charge(
        self,
        tenant: str,
        now: float,
        cost: float,
        open_jobs: int,
    ) -> TenantAccount:
        """Charge one submission against the tenant's limits.

        Checks run in a fixed order so rejects are deterministic:
        pending quota first, then credits.  On success the bucket is
        debited and the admission counted.

        Args:
            tenant: Tenant the submission is accounted to.
            now: Virtual time of the admission check; the bucket
                refills over the interval since the last charge (clock
                regressions are clamped to no-op).
            cost: GPU-credits the submission costs (its GPU demand).
            open_jobs: The tenant's current open-job count, supplied
                by the front-end's lazy sweep.

        Returns:
            The tenant's account (so the caller can record the job).

        Raises:
            SubmitRejected: ``"unknown_tenant"`` (strict mode),
                ``"quota_exceeded"``, or ``"credits_exhausted"``, each
                with structured details.
        """
        account = self.account(tenant)
        quota = account.quota
        if (
            quota.max_pending is not None
            and open_jobs >= quota.max_pending
        ):
            account.rejected += 1
            raise SubmitRejected(
                "quota_exceeded",
                f"tenant {tenant!r} has {open_jobs} open jobs, "
                f"at its quota of {quota.max_pending}",
                tenant=tenant,
                details={
                    "open_jobs": open_jobs,
                    "max_pending": quota.max_pending,
                },
            )
        if quota.credit_rate is not None:
            elapsed = max(0.0, now - account.last_refill)
            account.credits = min(
                quota.credit_burst,
                account.credits + elapsed * quota.credit_rate,
            )
            account.last_refill = max(account.last_refill, now)
            if account.credits < cost:
                account.rejected += 1
                raise SubmitRejected(
                    "credits_exhausted",
                    f"tenant {tenant!r} needs {cost:g} GPU-credits but "
                    f"has {account.credits:g}",
                    tenant=tenant,
                    details={
                        "balance": account.credits,
                        "cost": cost,
                        "rate": quota.credit_rate,
                        "burst": quota.credit_burst,
                    },
                )
            account.credits -= cost
        account.submitted += 1
        return account

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant admission counters for status reporting."""
        return {
            tenant: {
                "submitted": account.submitted,
                "rejected": account.rejected,
                "open_jobs": len(account.open_jobs),
                "credits": account.credits,
            }
            for tenant, account in sorted(self.accounts.items())
        }
