"""Unix-socket front end for a whole fleet.

The fleet analogue of :class:`repro.service.server.ServiceServer`,
built on the same :class:`~repro.service.server.LineServer` transport:
one socket serves every tenant, version-2 submissions carry tenant and
VC-hint fields, and version-1 clients keep working (their submissions
land under the default tenant with no hint).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.fleet.frontend import FleetFrontEnd
from repro.service.daemon import SubmitRejected
from repro.service.protocol import (
    CancelRequest,
    CancelResult,
    DrainRequest,
    DrainResult,
    PingRequest,
    PingResult,
    Request,
    Response,
    ResultPoll,
    ResultRequest,
    StatusRequest,
    StatusResult,
    SubmitRequest,
    error_response,
    request_from_wire,
)
from repro.service.server import LineServer
from repro.sim.metrics import SimulationResult

__all__ = ["FleetServer"]


class FleetServer(LineServer):
    """Serves one :class:`FleetFrontEnd` on a Unix socket.

    Args:
        frontend: The fleet to expose.
        path: Filesystem path of the Unix socket.
        linger: Post-drain grace period for result polls.
    """

    def __init__(
        self,
        frontend: FleetFrontEnd,
        path: str,
        linger: float = 5.0,
    ) -> None:
        super().__init__(path, linger)
        self.frontend = frontend

    async def serve(self) -> SimulationResult:
        """Run every shard daemon and the socket server until drained.

        Returns:
            The merged fleet result once every shard drains.
        """
        return await self.serve_sockets(self.frontend.run())

    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one wire request to the fleet; never raises."""
        try:
            message = request_from_wire(request)
        except ValueError as error:
            return error_response("bad_request", str(error))
        except KeyError as error:
            return error_response("bad_request", f"missing field {error}")
        try:
            return self.handle(message).to_wire()
        except SubmitRejected as rejection:
            wire = error_response(rejection.code, str(rejection))
            if rejection.tenant is not None:
                wire["tenant"] = rejection.tenant
            if rejection.details:
                wire["details"] = rejection.details
            return wire
        except KeyError as error:
            return error_response("unknown_job", str(error))
        except (TypeError, ValueError) as error:
            return error_response("bad_request", str(error))

    def handle(self, message: Request) -> Response:
        """Apply one typed request to the fleet; returns the result.

        Raises:
            SubmitRejected: On any admission refusal (tenant-scoped
                or shard-level).
            KeyError: For a status/cancel naming an unknown job.
        """
        frontend = self.frontend
        if isinstance(message, PingRequest):
            return PingResult()
        if isinstance(message, SubmitRequest):
            return frontend.submit(
                message.spec, tenant=message.tenant, vc=message.vc
            )
        if isinstance(message, StatusRequest):
            return StatusResult(data=frontend.status(message.job_id))
        if isinstance(message, CancelRequest):
            return CancelResult(cancelled=frontend.cancel(message.job_id))
        if isinstance(message, DrainRequest):
            frontend.drain()
            return DrainResult()
        if isinstance(message, ResultRequest):
            if frontend.result is None:
                return ResultPoll(done=False)
            return ResultPoll(done=True, result=frontend.result)
        raise ValueError(f"unhandled request type {type(message).__name__}")
