"""The fleet front-end: tenant-aware routing over scheduler shards.

One :class:`FleetFrontEnd` owns N independent shards (one per virtual
cluster) and the admission path in front of them:

1. **Tenancy** — the submission's tenant is checked against its
   quota and fair-share credit bucket (:mod:`repro.fleet.tenancy`);
   structured :class:`~repro.service.daemon.SubmitRejected` on refusal.
2. **Routing** — deterministic: an explicit VC hint is honoured when
   the tenant may use it and the job fits; otherwise the job goes to
   the least-loaded (fewest pending jobs) allowed VC that fits, ties
   broken by VC declaration order.
3. **Shard admission** — the chosen shard's daemon applies its own
   PR-5 admission control (``queue_full`` etc.); its rejects propagate
   with the tenant attached.

The front-end records per-tenant submit→decision wall latency,
aggregates fleet-wide counters, and drains every shard into one
merged :class:`~repro.sim.metrics.SimulationResult`.  Because shards
share nothing, each shard's portion of the merged result is
bit-identical to running its VC's submission stream serially — the
property :func:`repro.verify.compare_fleet_serial` enforces.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.fleet.shard import SchedulerShard, make_shard
from repro.fleet.tenancy import TenantLedger, TenantQuota
from repro.fleet.topology import FleetTopology
from repro.jobs.job import JobSpec, JobStatus
from repro.observe.events import EventCategory
from repro.observe.tracer import Tracer
from repro.service.daemon import SubmitRejected
from repro.service.protocol import DEFAULT_TENANT, SubmitResult
from repro.sim.metrics import SimulationResult, percentile

__all__ = ["FleetFrontEnd", "RoutedJob", "merge_results"]


@dataclass(frozen=True)
class RoutedJob:
    """One admitted submission's routing record.

    Attributes:
        job_id: Fleet-unique job id (assigned by the shard daemon).
        tenant: Tenant the job is accounted to.
        vc: Name of the VC the job was routed to.
        spec: The submitted spec (immutable, so the verify oracle can
            replay the exact stream serially).
    """

    job_id: int
    tenant: str
    vc: str
    spec: JobSpec


def merge_results(
    results: Sequence[SimulationResult],
    trace_name: str = "fleet",
    scheduler_name: str = "fleet",
) -> SimulationResult:
    """Merge per-shard results into one fleet-wide result.

    Job ids are fleet-unique, so the JCT/finish/submit maps are
    disjoint unions; preemptions and restart time add; the makespan is
    the slowest shard's; the timeseries is the time-sorted
    concatenation of the shards' samples (an approximation: samples
    describe each VC's state, not a fleet-wide snapshot — documented
    in ``docs/fleet.md``).

    Args:
        results: One finalized result per shard.
        trace_name: Label for the merged result.
        scheduler_name: Scheduler label for the merged result.
    """
    merged = SimulationResult(
        scheduler_name=scheduler_name,
        trace_name=trace_name,
    )
    for result in results:
        merged.jcts.update(result.jcts)
        merged.finish_times.update(result.finish_times)
        merged.submit_times.update(result.submit_times)
        merged.timeseries.extend(result.timeseries)
        merged.total_preemptions += result.total_preemptions
        merged.total_restart_time += result.total_restart_time
        merged.wall_clock = max(merged.wall_clock, result.wall_clock)
    merged.timeseries.sort(key=lambda point: point.time)
    return merged


class FleetFrontEnd:
    """Routes a multi-tenant submission stream over scheduler shards.

    Args:
        topology: The fleet layout and tenant-access map.
        shards: One shard per topology VC, in topology order; build
            them with :func:`~repro.fleet.make_shard` or use
            :meth:`build`.
        ledger: Tenant quotas/credits; defaults to an unlimited,
            non-strict ledger.
        tracer: Optional tracer for fleet events and counters.

    Raises:
        ValueError: When ``shards`` do not match the topology's VCs.
    """

    def __init__(
        self,
        topology: FleetTopology,
        shards: Sequence[SchedulerShard],
        ledger: Optional[TenantLedger] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        shard_names = [shard.name for shard in shards]
        if shard_names != list(topology.names):
            raise ValueError(
                f"shards {shard_names} do not match topology VCs "
                f"{list(topology.names)}"
            )
        self.topology = topology
        self.shards: Dict[str, SchedulerShard] = {
            shard.name: shard for shard in shards
        }
        self.ledger = ledger if ledger is not None else TenantLedger()
        self.tracer = tracer
        self.routed: List[RoutedJob] = []
        self._jobs: Dict[int, RoutedJob] = {}
        self.submit_latencies: Dict[str, List[float]] = {}
        self.result: Optional[SimulationResult] = None

    @classmethod
    def build(
        cls,
        topology: FleetTopology,
        scheduler: str = "fifo",
        quotas: Optional[Dict[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
        strict_tenants: bool = False,
        tracer: Optional[Tracer] = None,
        **shard_options: Any,
    ) -> "FleetFrontEnd":
        """Construct a front-end with one shard per topology VC.

        Args:
            topology: The fleet layout.
            scheduler: Registry name each shard's scheduler is built
                from (every shard runs the same policy, each with its
                own instance and caches).
            quotas: Per-tenant admission limits.
            default_quota: Limits for tenants absent from ``quotas``.
            strict_tenants: Reject tenants without a quota entry.
            tracer: Shared tracer for the fleet's own events; shards
                get their own (aggregated on drain) when tracing.
            **shard_options: Forwarded to :func:`make_shard` — the
                :func:`make_scheduler` keywords (``event_regroup``,
                ``workers``...), ``max_pending``, ``clock``,
                ``simulator_options``, and scheduler constructor args.
        """
        shards = [
            make_shard(vc, scheduler=scheduler, **shard_options)
            for vc in topology.vcs
        ]
        ledger = TenantLedger(
            quotas=quotas, default_quota=default_quota, strict=strict_tenants
        )
        return cls(topology, shards, ledger=ledger, tracer=tracer)

    # -- admission and routing ---------------------------------------------

    def now(self) -> float:
        """The fleet's virtual time: the furthest shard clock."""
        return max(shard.now for shard in self.shards.values())

    def _open_jobs(self, tenant: str) -> int:
        """The tenant's open-job count, sweeping observed-terminal ids.

        Only quota-bound tenants pay for the sweep, and for them the
        set holds at most ``max_pending`` live jobs plus whatever
        finished since the last check (each finished job is swept out
        exactly once).  Unmetered tenants skip the scan — their count
        is never compared against a limit, so a stale length is fine
        and the submit path stays O(1) in the tenant's job history.
        """
        account = self.ledger.account(tenant)
        if account.quota.max_pending is None:
            return len(account.open_jobs)
        done: List[int] = []
        for job_id in account.open_jobs:
            routed = self._jobs[job_id]
            job = self.shards[routed.vc].service.state.jobs.get(job_id)
            if job is not None and job.status in (
                JobStatus.FINISHED, JobStatus.FAILED
            ):
                done.append(job_id)
        account.open_jobs.difference_update(done)
        return len(account.open_jobs)

    def route(
        self,
        spec: JobSpec,
        tenant: str = DEFAULT_TENANT,
        vc: Optional[str] = None,
    ) -> SchedulerShard:
        """Pick the shard a submission would run on (no admission).

        Deterministic: an explicit allowed-and-fitting ``vc`` hint
        wins; otherwise the least-pending allowed VC that fits, ties
        broken by topology order.

        Raises:
            SubmitRejected: Code ``"no_shard"`` when no allowed VC can
                fit the job (or the hint is unknown/too small).
        """
        allowed = self.topology.allowed_vcs(tenant)
        if vc is not None:
            target = self.topology.get(vc)
            if (
                target is None
                or target not in allowed
                or spec.num_gpus > target.total_gpus
            ):
                raise SubmitRejected(
                    "no_shard",
                    f"VC hint {vc!r} is unknown, not allowed for tenant "
                    f"{tenant!r}, or too small for {spec.num_gpus} GPUs",
                    tenant=tenant,
                    details={
                        "vc": vc,
                        "gpus": spec.num_gpus,
                        "allowed": [v.name for v in allowed],
                    },
                )
            return self.shards[target.name]
        candidates = [
            self.shards[v.name]
            for v in allowed
            if spec.num_gpus <= v.total_gpus
        ]
        if not candidates:
            raise SubmitRejected(
                "no_shard",
                f"no VC allowed for tenant {tenant!r} fits "
                f"{spec.num_gpus} GPUs",
                tenant=tenant,
                details={
                    "gpus": spec.num_gpus,
                    "allowed": [v.name for v in allowed],
                },
            )
        # min() is stable on ties, and candidates follow topology
        # order, so equal queue lengths resolve to the earlier VC.
        return min(candidates, key=lambda shard: shard.pending_count)

    def submit(
        self,
        spec: JobSpec,
        tenant: str = DEFAULT_TENANT,
        vc: Optional[str] = None,
    ) -> SubmitResult:
        """Admit, charge, route, and submit one job.

        Returns:
            A typed :class:`SubmitResult` carrying the assigned job id
            and the VC the job was routed to.

        Raises:
            SubmitRejected: Tenant-scoped codes (``unknown_tenant``,
                ``quota_exceeded``, ``credits_exhausted``,
                ``no_shard``) or the chosen shard's own admission
                codes, all with the tenant attached.
        """
        started = time.perf_counter()
        try:
            open_jobs = self._open_jobs(tenant)
            now = max(self.now(), spec.submit_time)
            account = self.ledger.charge(
                tenant, now, float(spec.num_gpus), open_jobs
            )
            shard = self.route(spec, tenant, vc)
            try:
                job_id = shard.service.submit(spec)
            except SubmitRejected as rejection:
                account.submitted -= 1
                account.rejected += 1
                if rejection.tenant is None:
                    rejection.tenant = tenant
                raise
        except SubmitRejected as rejection:
            self._count(f"fleet.rejected.{rejection.code}")
            self._emit_reject(rejection, spec)
            raise
        routed = RoutedJob(
            job_id=job_id, tenant=tenant, vc=shard.name, spec=spec
        )
        self.routed.append(routed)
        self._jobs[job_id] = routed
        account.open_jobs.add(job_id)
        latency = time.perf_counter() - started
        self.submit_latencies.setdefault(tenant, []).append(latency)
        self._count("fleet.submitted")
        self._count(f"fleet.routed.{shard.name}")
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                EventCategory.SERVICE,
                "fleet.submit",
                now,
                job=job_id,
                tenant=tenant,
                vc=shard.name,
                gpus=spec.num_gpus,
            )
        return SubmitResult(job_id=job_id, tenant=tenant, vc=shard.name)

    def cancel(self, job_id: int) -> bool:
        """Cancel one job on whichever shard holds it."""
        routed = self._jobs.get(job_id)
        if routed is None:
            return False
        cancelled = self.shards[routed.vc].service.cancel(job_id)
        if cancelled:
            self._count("fleet.cancelled")
        return cancelled

    def status(self, job_id: Optional[int] = None) -> Dict[str, Any]:
        """Fleet-wide status, or one job's (routed to its shard).

        The fleet snapshot nests one entry per shard plus the tenant
        ledger's admission counters.

        Raises:
            KeyError: For an unknown ``job_id``.
        """
        if job_id is not None:
            routed = self._jobs.get(job_id)
            if routed is None:
                raise KeyError(f"unknown job id {job_id}")
            snapshot = self.shards[routed.vc].service.status(job_id)
            snapshot["tenant"] = routed.tenant
            snapshot["vc"] = routed.vc
            return snapshot
        shard_status = {
            name: shard.service.status()
            for name, shard in self.shards.items()
        }
        return {
            "now": self.now(),
            "done": self.is_done,
            "jobs": len(self._jobs),
            "shards": shard_status,
            "tenants": self.ledger.snapshot(),
        }

    # -- lifecycle -----------------------------------------------------------

    @property
    def is_done(self) -> bool:
        """Every shard drained and finished."""
        return all(shard.service.is_done for shard in self.shards.values())

    def drain(self) -> None:
        """Stop admitting on every shard (idempotent)."""
        for shard in self.shards.values():
            shard.service.drain()

    def run_sync(self, drain: bool = True) -> SimulationResult:
        """Drive every shard to completion synchronously; merge.

        Shards share nothing, so running them one after another is
        equivalent to any interleaving; each shard's run is the same
        deterministic virtual-time loop a standalone daemon uses.

        Args:
            drain: Request a drain first (the default).

        Returns:
            The merged fleet result (also kept on :attr:`result`).
        """
        results = [
            shard.service.run_sync(drain=drain)
            for shard in self.shards.values()
        ]
        return self._finish(results)

    async def run(self) -> SimulationResult:
        """Drive every shard's daemon loop concurrently; merge.

        Each shard runs its own :meth:`SchedulerService.run` on the
        shared event loop (paced by its own clock); the front-end
        gathers them and merges the drained results.
        """
        results = await asyncio.gather(
            *(shard.service.run() for shard in self.shards.values())
        )
        return self._finish(list(results))

    def _finish(self, results: List[SimulationResult]) -> SimulationResult:
        """Merge shard results, fold shard counters into the tracer."""
        self.result = merge_results(results)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            for name, shard in self.shards.items():
                shard_tracer = shard.service.tracer
                if shard_tracer is None or shard_tracer is tracer:
                    continue
                for counter, value in shard_tracer.counters.items():
                    tracer.count(f"shard.{name}.{counter}", value)
            tracer.emit(
                EventCategory.SERVICE,
                "fleet.drained",
                self.now(),
                jobs=len(self._jobs),
                finished=len(self.result.jcts),
            )
        return self.result

    def latency_percentiles(
        self, tenant: Optional[str] = None
    ) -> Tuple[float, float]:
        """(p50, p99) submit→decision wall latency, in seconds.

        Args:
            tenant: Restrict to one tenant's submissions; None pools
                every tenant.
        """
        if tenant is not None:
            samples = self.submit_latencies.get(tenant, [])
        else:
            samples = [
                value
                for latencies in self.submit_latencies.values()
                for value in latencies
            ]
        if not samples:
            return (0.0, 0.0)
        return (percentile(samples, 50), percentile(samples, 99))

    # -- internals -----------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.count(name, amount)

    def _emit_reject(self, rejection: SubmitRejected, spec: JobSpec) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                EventCategory.SERVICE,
                "fleet.reject",
                self.now(),
                code=rejection.code,
                tenant=rejection.tenant,
                gpus=spec.num_gpus,
            )
