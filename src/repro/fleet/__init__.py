"""Multi-tenant sharded scheduling fleet.

Production GPU clusters are partitioned into *virtual clusters* with
per-tenant quotas; this package scales the single daemon of
:mod:`repro.service` out the same way:

* :class:`VirtualCluster` / :class:`FleetTopology` /
  :func:`partition_cluster` — the fleet layout and tenant-access map;
* :class:`TenantQuota` / :class:`TenantLedger` — per-tenant pending
  quotas and fair-share credit buckets enforced at admission;
* :class:`SchedulerShard` / :func:`make_shard` — one independent
  daemon per VC (own simulator, scheduler, grouping cache, clock),
  built with :func:`~repro.schedulers.make_scheduler`'s keyword
  signature;
* :class:`FleetFrontEnd` — tenant-aware deterministic routing,
  structured rejects, latency/counter aggregation, and a merged
  drain via :func:`merge_results`;
* :class:`FleetServer` — the whole fleet behind one Unix socket,
  speaking the versioned protocol of :mod:`repro.service.protocol`.

Shards share nothing, so per-shard results are bit-identical to
serial per-VC runs — :func:`repro.verify.compare_fleet_serial` is the
oracle.  See ``docs/fleet.md``.
"""

from repro.fleet.topology import (
    FleetTopology,
    VirtualCluster,
    partition_cluster,
)
from repro.fleet.tenancy import TenantLedger, TenantQuota
from repro.fleet.shard import SchedulerShard, make_shard
from repro.fleet.frontend import FleetFrontEnd, RoutedJob, merge_results
from repro.fleet.server import FleetServer

__all__ = [
    "VirtualCluster",
    "FleetTopology",
    "partition_cluster",
    "TenantQuota",
    "TenantLedger",
    "SchedulerShard",
    "make_shard",
    "FleetFrontEnd",
    "RoutedJob",
    "merge_results",
    "FleetServer",
]
