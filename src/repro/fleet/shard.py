"""Scheduler shards: one independent daemon per virtual cluster.

A :class:`SchedulerShard` bundles a VC with its own
:class:`~repro.service.daemon.SchedulerService` — its own simulator,
scheduler (with its own grouping cache), and virtual clock.  Shards
never share state, which is what makes the fleet's per-shard results
bit-identical to running each VC serially (the
:func:`repro.verify.compare_fleet_serial` oracle).

:func:`make_shard` is the factory; it shares
:func:`~repro.schedulers.make_scheduler`'s keyword signature
(``tracer``, ``event_regroup``, ``workers``) so a shard is constructed
exactly like a standalone scheduler — there is no post-construction
special-casing left.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.fleet.topology import VirtualCluster
from repro.observe.tracer import Tracer
from repro.profiler.profiler import ResourceProfiler
from repro.schedulers.registry import make_scheduler
from repro.service.daemon import SchedulerService
from repro.sim.simulator import ClusterSimulator

__all__ = ["SchedulerShard", "make_shard"]


class SchedulerShard:
    """One virtual cluster's scheduling daemon.

    Args:
        vc: The virtual cluster this shard schedules.
        service: The daemon core (owns the simulator and clock).
    """

    def __init__(self, vc: VirtualCluster, service: SchedulerService) -> None:
        self.vc = vc
        self.service = service

    @property
    def name(self) -> str:
        """The VC name (doubles as the shard id)."""
        return self.vc.name

    @property
    def pending_count(self) -> int:
        """Jobs occupying the shard's pending-queue slots (O(groups))."""
        return self.service.pending_count

    @property
    def now(self) -> float:
        """The shard's current virtual time."""
        return self.service.state.now

    def fits(self, num_gpus: int) -> bool:
        """True when a job of ``num_gpus`` can ever run on this VC."""
        return num_gpus <= self.vc.total_gpus

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SchedulerShard {self.name} ({self.vc.total_gpus} GPUs)>"


def make_shard(
    vc: VirtualCluster,
    scheduler: str = "fifo",
    profiler: Optional[ResourceProfiler] = None,
    tracer: Optional[Tracer] = None,
    event_regroup: Optional[bool] = None,
    workers: Optional[int] = None,
    max_pending: int = 1024,
    clock: Optional[object] = None,
    simulator_options: Optional[Dict[str, Any]] = None,
    **scheduler_options: Any,
) -> SchedulerShard:
    """Build one shard: VC cluster + scheduler + simulator + daemon.

    The scheduler keywords are :func:`make_scheduler`'s, verbatim —
    one factory signature for standalone and sharded construction.
    The simulator runs the service's event-driven configuration
    (reschedule on arrival, backfill on completion), like
    ``repro serve``.

    Args:
        vc: The virtual cluster to schedule.
        scheduler: Registry name for :func:`make_scheduler`.
        profiler: Optional profiler (Muri variants).
        tracer: Optional tracer, threaded through scheduler,
            simulator, and daemon.
        event_regroup: Full decision pass on arrival/completion
            events (Muri); ignored by policies without one.
        workers: Parallel-internals width (Muri's grouper pool).
        max_pending: The shard daemon's admission bound.
        clock: Pacing clock for the daemon loop; defaults to a
            deterministic :class:`~repro.service.clock.VirtualClock`.
        simulator_options: Extra :class:`ClusterSimulator` keyword
            overrides (e.g. ``restart_penalty`` in tests).
        **scheduler_options: Extra constructor arguments for the
            scheduler factory (``max_group_size``, ``matcher``...).
    """
    sched = make_scheduler(
        scheduler,
        profiler=profiler,
        tracer=tracer,
        event_regroup=event_regroup,
        workers=workers,
        **scheduler_options,
    )
    sim_kwargs: Dict[str, Any] = dict(
        cluster=vc.build_cluster(),
        reschedule_on_arrival=True,
        arrival_reason="arrival",
        backfill_on_completion=True,
        tracer=tracer,
    )
    sim_kwargs.update(simulator_options or {})
    simulator = ClusterSimulator(sched, **sim_kwargs)
    service = SchedulerService(
        simulator,
        max_pending=max_pending,
        clock=clock,
        trace_name=vc.name,
        tracer=tracer,
    )
    return SchedulerShard(vc, service)
