"""The GPU cluster: a collection of machines plus allocation state."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.machine import GpuSlot, GpuType, Machine

__all__ = ["Cluster", "Allocation"]


@dataclass(frozen=True)
class Allocation:
    """GPUs granted to one interleaving group.

    Attributes:
        owner: Group id the slots belong to.
        slots: The granted GPU slots.
    """

    owner: int
    slots: tuple

    @property
    def num_gpus(self) -> int:
        return len(self.slots)

    @property
    def machine_ids(self) -> List[int]:
        """Distinct machines the allocation spans, ascending."""
        return sorted({slot.machine_id for slot in self.slots})

    @property
    def spans_machines(self) -> bool:
        """True when the allocation crosses a machine boundary."""
        return len(self.machine_ids) > 1


class Cluster:
    """A cluster of machines, homogeneous by default.

    Args:
        num_machines: Number of servers.
        gpus_per_machine: GPU slots per server (the paper's testbed is
            8 machines x 8 GPUs = 64 GPUs).
        machine_types: Optional per-machine GPU generations, one per
            server.  Omitted (the default) every machine is untyped —
            the original homogeneous cluster, bit-identical to the
            pre-hetero behaviour.
    """

    def __init__(
        self,
        num_machines: int = 8,
        gpus_per_machine: int = 8,
        machine_types: Optional[Sequence[GpuType]] = None,
    ) -> None:
        if num_machines < 1:
            raise ValueError("a cluster needs at least one machine")
        if machine_types is not None and len(machine_types) != num_machines:
            raise ValueError(
                f"machine_types has {len(machine_types)} entries for "
                f"{num_machines} machines"
            )
        self.machines: List[Machine] = [
            Machine(
                machine_id=i,
                num_gpus=gpus_per_machine,
                gpu_type=machine_types[i] if machine_types else None,
            )
            for i in range(num_machines)
        ]
        self._allocations: Dict[int, Allocation] = {}

    # -- GPU generations ------------------------------------------------------

    def gpu_type_names(self) -> Tuple[str, ...]:
        """Distinct generation names present, sorted; empty if untyped."""
        return tuple(sorted({
            m.gpu_type.name for m in self.machines if m.gpu_type is not None
        }))

    @property
    def is_heterogeneous(self) -> bool:
        """True when machines carry more than one GPU generation."""
        return len(self.gpu_type_names()) > 1

    def machines_of_type(self, type_name: Optional[str]) -> List[Machine]:
        """Machines satisfying a type-affinity key, cluster order."""
        return [m for m in self.machines if m.matches_type(type_name)]

    def gpu_type_of_machine(self, machine_id: int) -> Optional[str]:
        """Generation name of one machine, or None when untyped."""
        gpu_type = self.machines[machine_id].gpu_type
        return None if gpu_type is None else gpu_type.name

    # -- capacity -------------------------------------------------------------

    @property
    def total_gpus(self) -> int:
        return sum(m.num_gpus for m in self.machines)

    @property
    def free_gpus(self) -> int:
        return sum(m.free_gpu_count for m in self.machines)

    @property
    def allocated_gpus(self) -> int:
        return self.total_gpus - self.free_gpus

    def can_fit(self, num_gpus: int) -> bool:
        """True if ``num_gpus`` slots are free cluster-wide."""
        return num_gpus <= self.free_gpus

    def machine(self, machine_id: int) -> Machine:
        return self.machines[machine_id]

    # -- allocation --------------------------------------------------------------

    def allocate(self, owner: int, slot_plan: Dict[int, int]) -> Allocation:
        """Grant GPUs to ``owner`` following a per-machine plan.

        Args:
            owner: Group id receiving the slots.
            slot_plan: Mapping ``machine_id -> gpu count``.

        Raises:
            ValueError: If the owner already holds an allocation or a
                machine lacks capacity (nothing is allocated then).
        """
        if owner in self._allocations:
            raise ValueError(f"owner {owner} already holds an allocation")
        for machine_id, count in slot_plan.items():
            if self.machines[machine_id].free_gpu_count < count:
                raise ValueError(
                    f"machine {machine_id} cannot provide {count} GPUs"
                )
        slots: List[GpuSlot] = []
        for machine_id, count in slot_plan.items():
            slots.extend(self.machines[machine_id].allocate(count, owner))
        allocation = Allocation(owner=owner, slots=tuple(slots))
        self._allocations[owner] = allocation
        return allocation

    def release(self, owner: int) -> None:
        """Free every slot held by ``owner``.

        Raises:
            KeyError: If the owner holds no allocation.
        """
        allocation = self._allocations.pop(owner)
        by_machine: Dict[int, List[GpuSlot]] = {}
        for slot in allocation.slots:
            by_machine.setdefault(slot.machine_id, []).append(slot)
        for machine_id, slots in by_machine.items():
            self.machines[machine_id].release(slots)

    def allocation_of(self, owner: int) -> Optional[Allocation]:
        return self._allocations.get(owner)

    def allocations(self) -> Iterable[Allocation]:
        return list(self._allocations.values())

    def release_all(self) -> None:
        """Free every allocation (used between scheduling rounds)."""
        for owner in list(self._allocations):
            self.release(owner)

    # -- fragmentation metrics --------------------------------------------------

    def fragmentation(self) -> float:
        """Fraction of free GPUs stranded on partially used machines.

        Zero when free capacity is concentrated on fully empty
        machines; approaches one when every machine is partially used.
        """
        free = self.free_gpus
        if free == 0:
            return 0.0
        stranded = sum(
            m.free_gpu_count
            for m in self.machines
            if 0 < m.free_gpu_count < m.num_gpus
        )
        return stranded / free
