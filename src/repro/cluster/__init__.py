"""Cluster substrate: machines, GPU slots, and placement."""

from repro.cluster.cluster import Allocation, Cluster
from repro.cluster.machine import GpuSlot, Machine
from repro.cluster.placement import (
    DescendingPlacer,
    PlacementPlan,
    RandomPlacer,
    SpreadPlacer,
)

__all__ = [
    "Cluster",
    "Allocation",
    "Machine",
    "GpuSlot",
    "DescendingPlacer",
    "SpreadPlacer",
    "RandomPlacer",
    "PlacementPlan",
]
