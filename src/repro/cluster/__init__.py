"""Cluster substrate: machines, GPU types/slots, and placement."""

from repro.cluster.cluster import Allocation, Cluster
from repro.cluster.machine import GpuSlot, GpuType, Machine
from repro.cluster.placement import (
    DescendingPlacer,
    PlacementPlan,
    RandomPlacer,
    SpreadPlacer,
)

__all__ = [
    "Cluster",
    "Allocation",
    "Machine",
    "GpuSlot",
    "GpuType",
    "DescendingPlacer",
    "SpreadPlacer",
    "RandomPlacer",
    "PlacementPlan",
]
