"""A single machine (server) in the GPU cluster.

The paper's testbed machine is 8 x V100 GPUs, 2 x Xeon 8260 CPUs,
256 GB RAM and one 100 Gbps NIC.  The simulator tracks GPUs as
allocatable slots — one interleaving group occupies a set of GPU slots
— while CPU/storage/network capacities are descriptive metadata: the
interleaving model already accounts for their time-sharing inside a
group, and the worker monitor reports their utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

__all__ = ["Machine", "GpuSlot", "GpuType"]


@dataclass(frozen=True)
class GpuType:
    """One GPU generation (e.g. K80, P100, V100, A100).

    Attributes:
        name: Generation name; the affinity key jobs pin or prefer.
        speed_factor: Relative compute speed against the baseline
            generation (the paper's V100 testbed is 1.0).  A job's
            stage durations are divided by this factor when its
            profile is scaled for the generation it lands on.
        memory_gb: Device memory per GPU (metadata).
    """

    name: str
    speed_factor: float = 1.0
    memory_gb: float = 32.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a GPU type needs a non-empty name")
        if not self.speed_factor > 0:
            raise ValueError("speed_factor must be > 0")


@dataclass(frozen=True)
class GpuSlot:
    """Address of one GPU: (machine id, local index)."""

    machine_id: int
    gpu_index: int

    def __str__(self) -> str:
        return f"m{self.machine_id}:g{self.gpu_index}"


@dataclass
class Machine:
    """One server with a fixed number of GPU slots.

    Attributes:
        machine_id: Unique id within the cluster.
        num_gpus: GPU slots on this machine (8 on the paper's testbed).
        num_cpus: Physical CPU sockets/cores (metadata).
        memory_gb: RAM in gigabytes (metadata).
        nic_gbps: Network bandwidth in Gbit/s (metadata).
        gpu_type: GPU generation installed on this machine, or None
            for the untyped homogeneous default (all pre-hetero
            clusters).  Machines never mix generations — the Philly
            clusters rack one SKU per server.
    """

    machine_id: int
    num_gpus: int = 8
    num_cpus: int = 2
    memory_gb: int = 256
    nic_gbps: int = 100
    gpu_type: Optional[GpuType] = None

    _allocated: Dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError("a machine needs at least one GPU")

    # -- GPU generation ---------------------------------------------------

    def matches_type(self, type_name: Optional[str]) -> bool:
        """True when this machine satisfies a type-affinity key.

        ``None`` (no affinity) matches every machine; a concrete name
        matches only typed machines of that generation.
        """
        if type_name is None:
            return True
        return self.gpu_type is not None and self.gpu_type.name == type_name

    # -- capacity ---------------------------------------------------------

    @property
    def free_gpu_count(self) -> int:
        """Number of unallocated GPU slots."""
        return self.num_gpus - len(self._allocated)

    @property
    def allocated_gpu_count(self) -> int:
        return len(self._allocated)

    def free_gpu_indices(self) -> List[int]:
        """Indices of unallocated GPU slots, ascending."""
        return [i for i in range(self.num_gpus) if i not in self._allocated]

    def owner_of(self, gpu_index: int) -> Optional[int]:
        """Group id occupying a slot, or None if free."""
        self._check_index(gpu_index)
        return self._allocated.get(gpu_index)

    # -- allocation -----------------------------------------------------------

    def allocate(self, count: int, owner: int) -> List[GpuSlot]:
        """Allocate ``count`` GPU slots to ``owner`` (a group id).

        Raises:
            ValueError: If fewer than ``count`` slots are free.
        """
        free = self.free_gpu_indices()
        if count > len(free):
            raise ValueError(
                f"machine {self.machine_id} has {len(free)} free GPUs, "
                f"cannot allocate {count}"
            )
        slots = []
        for index in free[:count]:
            self._allocated[index] = owner
            slots.append(GpuSlot(self.machine_id, index))
        return slots

    def release(self, slots: List[GpuSlot]) -> None:
        """Release previously allocated slots.

        Raises:
            ValueError: If a slot belongs to a different machine or is
                not allocated.
        """
        for slot in slots:
            if slot.machine_id != self.machine_id:
                raise ValueError(
                    f"slot {slot} does not belong to machine {self.machine_id}"
                )
            if slot.gpu_index not in self._allocated:
                raise ValueError(f"slot {slot} is not allocated")
        for slot in slots:
            del self._allocated[slot.gpu_index]

    def release_owner(self, owner: int) -> int:
        """Release every slot owned by ``owner``; returns count freed."""
        indices = [i for i, o in self._allocated.items() if o == owner]
        for index in indices:
            del self._allocated[index]
        return len(indices)

    def owners(self) -> Set[int]:
        """Distinct group ids with at least one slot here."""
        return set(self._allocated.values())

    def _check_index(self, gpu_index: int) -> None:
        if not 0 <= gpu_index < self.num_gpus:
            raise ValueError(
                f"gpu index {gpu_index} out of range for machine "
                f"{self.machine_id} with {self.num_gpus} GPUs"
            )
