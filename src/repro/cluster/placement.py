"""GPU placement policies.

The paper (section 5) places jobs "in a descending order based on the
number of GPUs a job needs, which avoids fragmentation and minimizes
the number of nodes used by a job".  :class:`DescendingPlacer`
implements exactly that:

* candidate groups are sorted by GPU demand, largest first;
* each group prefers the single machine whose free capacity fits it
  most tightly (best fit);
* groups larger than a machine span the fewest machines possible,
  taking the emptiest machines first.

Two alternative policies exist for the placement ablation:
:class:`SpreadPlacer` (worst fit: always the emptiest machine, the
load-balancing strategy some clusters use) and :class:`RandomPlacer`
(a seeded random feasible machine).  Both consolidate less, so
multi-GPU jobs fragment and span machines more often.

On heterogeneous clusters every policy accepts a *type affinity*
(``gpu_type`` plus ``prefer``): a pinned demand only considers
machines of that GPU generation, a preferred demand tries them first
and falls back to the whole cluster.  With no affinity — and on any
single-generation cluster — the machine pool is the full machine
list in cluster order, so plans are bit-identical to the homogeneous
code path (`repro.verify.compare_homogeneous_identity` pins this).

:class:`ThroughputAwarePlacer` goes further (Gavel, arXiv 2008.12260):
instead of treating a soft preference as a feasibility fallback, it
scores every generation pool by the group's effective speed factor
there and places on the fastest pool that can host the demand.  The
realized landing speed is modelled by the simulator's
``landing_speed_scaling`` option, which scales a baseline-profile
group's period by its landing generation's factor.  With uniform
speed factors the placer degenerates bit-identically to
:class:`DescendingPlacer`
(`repro.verify.compare_uniform_scaling_identity` pins this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Allocation, Cluster

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hetero.types import TypeScaling

__all__ = [
    "DescendingPlacer",
    "SpreadPlacer",
    "RandomPlacer",
    "ThroughputAwarePlacer",
    "PlacementPlan",
]


@dataclass(frozen=True)
class PlacementPlan:
    """Outcome of one placement attempt.

    Attributes:
        placed: ``(owner, allocation)`` pairs in placement order.
        unplaced: Owners that did not fit, in input order.
    """

    placed: Tuple[Tuple[int, Allocation], ...]
    unplaced: Tuple[int, ...]


class DescendingPlacer:
    """Places groups on GPUs, largest demand first."""

    def place(
        self,
        cluster: Cluster,
        demands: Sequence[Tuple[int, int]],
    ) -> PlacementPlan:
        """Allocate GPUs for a batch of groups.

        Args:
            cluster: The cluster to allocate from (mutated).
            demands: ``(owner, num_gpus)`` pairs.  Input order is the
                priority order used to break demand ties.

        Returns:
            The resulting :class:`PlacementPlan`.  Owners that do not
            fit are skipped — later, smaller groups may still fit
            (backfilling), matching the paper's prototype behaviour of
            filling the cluster from the dequeued batch.
        """
        indexed = list(enumerate(demands))
        indexed.sort(key=lambda item: (-item[1][1], item[0]))

        placed: List[Tuple[int, Allocation]] = []
        unplaced: List[Tuple[int, int]] = []
        for original_index, (owner, num_gpus) in indexed:
            plan = self.plan_for(cluster, num_gpus)
            if plan is None:
                unplaced.append((original_index, owner))
                continue
            placed.append((owner, cluster.allocate(owner, plan)))
        # Placement walks demands largest-first, but rejected owners are
        # requeued by the caller, so report them in input (priority)
        # order as the PlacementPlan contract promises.
        unplaced.sort()
        return PlacementPlan(
            tuple(placed), tuple(owner for _, owner in unplaced)
        )

    def plan_for(
        self,
        cluster: Cluster,
        num_gpus: int,
        gpu_type: Optional[str] = None,
        prefer: bool = False,
    ) -> Optional[Dict[int, int]]:
        """Compute a per-machine slot plan for one demand.

        Args:
            cluster: The cluster to plan against (not mutated).
            num_gpus: GPU slots required.
            gpu_type: Optional GPU-generation affinity: only machines
                of this type are considered.
            prefer: When True the affinity is soft — if no plan fits
                on the preferred generation the whole cluster is
                retried; when False (a pin) infeasibility is final.

        Returns:
            ``{machine_id: count}`` or None when the demand cannot be
            satisfied.
        """
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if gpu_type is not None:
            plan = self._plan_on(cluster.machines_of_type(gpu_type), num_gpus)
            if plan is not None or not prefer:
                return plan
        return self._plan_on(cluster.machines, num_gpus)

    def plan_for_model(
        self,
        cluster: Cluster,
        num_gpus: int,
        gpu_type: Optional[str] = None,
        prefer: bool = False,
        model: Optional[str] = None,
    ) -> Optional[Dict[int, int]]:
        """Plan one demand, optionally informed by the lead model.

        The base policies are throughput-blind and ignore ``model``,
        delegating to :meth:`plan_for` with the historical call shapes
        (no-affinity demands take the exact pre-hetero two-argument
        form so custom placers keep working).
        :class:`ThroughputAwarePlacer` overrides this to score
        generation pools by the model's speed factors.

        Args:
            cluster: The cluster to plan against (not mutated).
            num_gpus: GPU slots required.
            gpu_type: Optional generation affinity (see
                :meth:`plan_for`).
            prefer: Soft-affinity flag (see :meth:`plan_for`).
            model: Model-zoo name of the group's lead job, used by
                throughput-aware policies to look up speed factors.

        Returns:
            ``{machine_id: count}`` or None when the demand cannot be
            satisfied.
        """
        if gpu_type is None:
            return self.plan_for(cluster, num_gpus)
        return self.plan_for(cluster, num_gpus, gpu_type, prefer)

    def _plan_on(
        self, machines: Sequence, num_gpus: int
    ) -> Optional[Dict[int, int]]:
        """Best-fit-then-span plan over one machine pool."""
        if num_gpus > sum(m.free_gpu_count for m in machines):
            return None

        # Best fit on one machine: tightest sufficient free capacity.
        single_candidates = [
            m for m in machines if m.free_gpu_count >= num_gpus
        ]
        if single_candidates:
            best = min(
                single_candidates,
                key=lambda m: (m.free_gpu_count, m.machine_id),
            )
            return {best.machine_id: num_gpus}

        # Span machines: emptiest first minimizes machine count.
        plan: Dict[int, int] = {}
        remaining = num_gpus
        for machine in sorted(
            machines,
            key=lambda m: (-m.free_gpu_count, m.machine_id),
        ):
            if remaining == 0:
                break
            take = min(machine.free_gpu_count, remaining)
            if take > 0:
                plan[machine.machine_id] = take
                remaining -= take
        if remaining > 0:
            return None
        return plan


class SpreadPlacer(DescendingPlacer):
    """Worst-fit placement: prefer the emptiest machine.

    Spreads load evenly — gentler thermal/network hotspots — at the
    cost of fragmentation: large jobs find no whole machine free and
    must span, paying the cross-machine synchronization penalty.
    """

    def _plan_on(
        self, machines: Sequence, num_gpus: int
    ) -> Optional[Dict[int, int]]:
        if num_gpus > sum(m.free_gpu_count for m in machines):
            return None
        candidates = [
            m for m in machines if m.free_gpu_count >= num_gpus
        ]
        if candidates:
            best = max(
                candidates, key=lambda m: (m.free_gpu_count, -m.machine_id)
            )
            return {best.machine_id: num_gpus}
        # Fall back to the consolidating span plan.
        return super()._plan_on(machines, num_gpus)


class RandomPlacer(DescendingPlacer):
    """Seeded random placement among feasible machines.

    The no-policy control arm of the placement ablation.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def _plan_on(
        self, machines: Sequence, num_gpus: int
    ) -> Optional[Dict[int, int]]:
        if num_gpus > sum(m.free_gpu_count for m in machines):
            return None
        candidates = [
            m for m in machines if m.free_gpu_count >= num_gpus
        ]
        if candidates:
            choice = self._rng.choice(candidates)
            return {choice.machine_id: num_gpus}
        return super()._plan_on(machines, num_gpus)


class ThroughputAwarePlacer(DescendingPlacer):
    """Gavel-style throughput-aware placement across GPU generations.

    For demands whose landing generation is a *choice* — soft
    preferences and unaffine groups on a typed cluster — generation
    pools are scored by the lead model's speed factor and tried
    fastest-first, so a group lands where it runs fastest rather than
    merely where its preference points.  Hard pins stay pure
    feasibility constraints (their profiles were pre-scaled for the
    pinned generation by ``pin_jobs``), and each pool is planned with
    the parent's best-fit-then-span policy, so consolidation behaviour
    inside a pool is unchanged.  The realized landing speed is
    modelled by the simulator's ``landing_speed_scaling`` option, not
    by the placer.

    Degenerate cases fall back to :class:`DescendingPlacer` exactly —
    untyped or single-generation clusters, demands with no model, and
    *uniform* speed factors (equal factors carry no throughput signal;
    ``repro.verify.compare_uniform_scaling_identity`` pins the
    bit-identity).

    Args:
        scaling: Per-model × per-generation speed factors; defaults to
            ``repro.hetero.DEFAULT_TYPE_SCALING``.
    """

    def __init__(self, scaling: Optional["TypeScaling"] = None) -> None:
        if scaling is None:
            from repro.hetero.types import DEFAULT_TYPE_SCALING

            scaling = DEFAULT_TYPE_SCALING
        self.scaling = scaling

    def plan_for_model(
        self,
        cluster: Cluster,
        num_gpus: int,
        gpu_type: Optional[str] = None,
        prefer: bool = False,
        model: Optional[str] = None,
    ) -> Optional[Dict[int, int]]:
        if gpu_type is not None and not prefer:
            # A pin's pool is not a choice: pure feasibility.
            return self.plan_for(cluster, num_gpus, gpu_type, prefer)
        factors = self._pool_factors(cluster, model)
        if factors is None:
            return super().plan_for_model(
                cluster, num_gpus, gpu_type, prefer, model
            )
        # Fastest pool first; the preferred generation breaks factor
        # ties, then the name keeps the order deterministic.
        order = sorted(
            factors,
            key=lambda name: (
                -factors[name], 0 if name == gpu_type else 1, name
            ),
        )
        for name in order:
            plan = self._plan_on(cluster.machines_of_type(name), num_gpus)
            if plan is not None:
                return plan
        # No single generation pool can host the demand: span the
        # whole cluster.
        return self._plan_on(cluster.machines, num_gpus)

    def _pool_factors(
        self, cluster: Cluster, model: Optional[str]
    ) -> Optional[Dict[str, float]]:
        """Per-generation speed factors, or None when throughput
        carries no placement signal and the parent path applies."""
        generations = cluster.gpu_type_names()
        if model is None or len(generations) < 2:
            return None
        factors: Dict[str, float] = {}
        for name in generations:
            try:
                factors[name] = self.scaling.factor(model, name)
            except KeyError:
                return None
        if max(factors.values()) == min(factors.values()):
            return None
        return factors
