"""GPU placement policies.

The paper (section 5) places jobs "in a descending order based on the
number of GPUs a job needs, which avoids fragmentation and minimizes
the number of nodes used by a job".  :class:`DescendingPlacer`
implements exactly that:

* candidate groups are sorted by GPU demand, largest first;
* each group prefers the single machine whose free capacity fits it
  most tightly (best fit);
* groups larger than a machine span the fewest machines possible,
  taking the emptiest machines first.

Two alternative policies exist for the placement ablation:
:class:`SpreadPlacer` (worst fit: always the emptiest machine, the
load-balancing strategy some clusters use) and :class:`RandomPlacer`
(a seeded random feasible machine).  Both consolidate less, so
multi-GPU jobs fragment and span machines more often.

On heterogeneous clusters every policy accepts a *type affinity*
(``gpu_type`` plus ``prefer``): a pinned demand only considers
machines of that GPU generation, a preferred demand tries them first
and falls back to the whole cluster.  With no affinity — and on any
single-generation cluster — the machine pool is the full machine
list in cluster order, so plans are bit-identical to the homogeneous
code path (`repro.verify.compare_homogeneous_identity` pins this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Allocation, Cluster

__all__ = ["DescendingPlacer", "SpreadPlacer", "RandomPlacer", "PlacementPlan"]


@dataclass(frozen=True)
class PlacementPlan:
    """Outcome of one placement attempt.

    Attributes:
        placed: ``(owner, allocation)`` pairs in placement order.
        unplaced: Owners that did not fit, in input order.
    """

    placed: Tuple[Tuple[int, Allocation], ...]
    unplaced: Tuple[int, ...]


class DescendingPlacer:
    """Places groups on GPUs, largest demand first."""

    def place(
        self,
        cluster: Cluster,
        demands: Sequence[Tuple[int, int]],
    ) -> PlacementPlan:
        """Allocate GPUs for a batch of groups.

        Args:
            cluster: The cluster to allocate from (mutated).
            demands: ``(owner, num_gpus)`` pairs.  Input order is the
                priority order used to break demand ties.

        Returns:
            The resulting :class:`PlacementPlan`.  Owners that do not
            fit are skipped — later, smaller groups may still fit
            (backfilling), matching the paper's prototype behaviour of
            filling the cluster from the dequeued batch.
        """
        indexed = list(enumerate(demands))
        indexed.sort(key=lambda item: (-item[1][1], item[0]))

        placed: List[Tuple[int, Allocation]] = []
        unplaced: List[Tuple[int, int]] = []
        for original_index, (owner, num_gpus) in indexed:
            plan = self.plan_for(cluster, num_gpus)
            if plan is None:
                unplaced.append((original_index, owner))
                continue
            placed.append((owner, cluster.allocate(owner, plan)))
        # Placement walks demands largest-first, but rejected owners are
        # requeued by the caller, so report them in input (priority)
        # order as the PlacementPlan contract promises.
        unplaced.sort()
        return PlacementPlan(
            tuple(placed), tuple(owner for _, owner in unplaced)
        )

    def plan_for(
        self,
        cluster: Cluster,
        num_gpus: int,
        gpu_type: Optional[str] = None,
        prefer: bool = False,
    ) -> Optional[Dict[int, int]]:
        """Compute a per-machine slot plan for one demand.

        Args:
            cluster: The cluster to plan against (not mutated).
            num_gpus: GPU slots required.
            gpu_type: Optional GPU-generation affinity: only machines
                of this type are considered.
            prefer: When True the affinity is soft — if no plan fits
                on the preferred generation the whole cluster is
                retried; when False (a pin) infeasibility is final.

        Returns:
            ``{machine_id: count}`` or None when the demand cannot be
            satisfied.
        """
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if gpu_type is not None:
            plan = self._plan_on(cluster.machines_of_type(gpu_type), num_gpus)
            if plan is not None or not prefer:
                return plan
        return self._plan_on(cluster.machines, num_gpus)

    def _plan_on(
        self, machines: Sequence, num_gpus: int
    ) -> Optional[Dict[int, int]]:
        """Best-fit-then-span plan over one machine pool."""
        if num_gpus > sum(m.free_gpu_count for m in machines):
            return None

        # Best fit on one machine: tightest sufficient free capacity.
        single_candidates = [
            m for m in machines if m.free_gpu_count >= num_gpus
        ]
        if single_candidates:
            best = min(
                single_candidates,
                key=lambda m: (m.free_gpu_count, m.machine_id),
            )
            return {best.machine_id: num_gpus}

        # Span machines: emptiest first minimizes machine count.
        plan: Dict[int, int] = {}
        remaining = num_gpus
        for machine in sorted(
            machines,
            key=lambda m: (-m.free_gpu_count, m.machine_id),
        ):
            if remaining == 0:
                break
            take = min(machine.free_gpu_count, remaining)
            if take > 0:
                plan[machine.machine_id] = take
                remaining -= take
        if remaining > 0:
            return None
        return plan


class SpreadPlacer(DescendingPlacer):
    """Worst-fit placement: prefer the emptiest machine.

    Spreads load evenly — gentler thermal/network hotspots — at the
    cost of fragmentation: large jobs find no whole machine free and
    must span, paying the cross-machine synchronization penalty.
    """

    def _plan_on(
        self, machines: Sequence, num_gpus: int
    ) -> Optional[Dict[int, int]]:
        if num_gpus > sum(m.free_gpu_count for m in machines):
            return None
        candidates = [
            m for m in machines if m.free_gpu_count >= num_gpus
        ]
        if candidates:
            best = max(
                candidates, key=lambda m: (m.free_gpu_count, -m.machine_id)
            )
            return {best.machine_id: num_gpus}
        # Fall back to the consolidating span plan.
        return super()._plan_on(machines, num_gpus)


class RandomPlacer(DescendingPlacer):
    """Seeded random placement among feasible machines.

    The no-policy control arm of the placement ablation.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def _plan_on(
        self, machines: Sequence, num_gpus: int
    ) -> Optional[Dict[int, int]]:
        if num_gpus > sum(m.free_gpu_count for m in machines):
            return None
        candidates = [
            m for m in machines if m.free_gpu_count >= num_gpus
        ]
        if candidates:
            choice = self._rng.choice(candidates)
            return {choice.machine_id: num_gpus}
        return super()._plan_on(machines, num_gpus)
