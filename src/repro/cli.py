"""Command-line interface.

Drives the library from a shell::

    repro models                                    # the model zoo
    repro simulate --trace 1 --jobs 200 --scheduler muri-l
    repro simulate --trace 1 --jobs 100 --scheduler muri-s \
                   --trace-out run.json             # Perfetto-loadable
    repro explain 17 --trace 1 --jobs 100 --scheduler muri-s
    repro compare  --trace 2' --jobs 300 --schedulers srsf,muri-s
    repro experiment table4                         # any paper artifact
    repro sweep fig9 --workers 4 --out fig9.jsonl   # parallel sweep
    repro sweep all --shard 1/3 --out shard1.jsonl  # one of 3 shards
    repro trace --trace 4 --jobs 500 --out trace.csv
    repro serve --socket /tmp/repro.sock            # scheduler daemon
    repro serve --jobs 20 --drain --verify-incremental
    repro fleet --jobs 200 --shards 4 --tenants 3   # sharded fleet
    repro fleet --jobs 100 --shards 4 --verify-shards
    repro fuzz --episodes 50 --seed 0         # invariant fuzzing
    repro fuzz --episodes 50 --hetero         # + GPU-generation episodes
    repro fuzz --replay repro-failures/repro-seed0-ep3-....json
    repro replay --jobs 100000 --via-csv /tmp/replay.csv \
                 --verify-invariants          # production-scale replay
    repro replay --csv philly.csv --vc vc7 --scheduler muri-s
    repro bench                               # pinned perf suite
    repro bench --quick --out-dir bench-out   # the CI configuration

Every command is deterministic for a given ``--seed``; ``repro sweep``
is deterministic per run id regardless of worker count or sharding.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.experiments import (
    ablation_comparison,
    compare_testbed,
    group_size_comparison,
    job_type_sweep,
    normalized_metrics,
    profiling_noise_sweep,
    run_schedulers,
    simulation_comparison,
    table2_interleaving_example,
)
from repro.analysis.report import format_series, format_speedup_table, format_table
from repro.cluster.cluster import Cluster
from repro.models.zoo import DEFAULT_MODELS, get_model
from repro.observe import (
    Tracer,
    format_explain,
    trace_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.schedulers.registry import SCHEDULERS, make_scheduler
from repro.sim.io import save_comparison, save_result
from repro.sim.simulator import ClusterSimulator
from repro.sweep import (
    SWEEPABLE_EXPERIMENTS,
    ResultStore,
    SweepRunner,
    experiment_cells,
    in_shard,
    parse_shard,
    summarize_runs,
)
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs

__all__ = ["main", "build_parser"]

EXPERIMENTS = (
    "table2", "table4", "table5", "fig9", "fig10", "fig11", "fig12",
    "fig13", "fig14",
)


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Muri (SIGCOMM 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    models = sub.add_parser("models", help="list the model zoo")

    def add_workload_args(p):
        p.add_argument("--trace", default="1",
                       help="trace id 1-4, optionally primed (e.g. 2')")
        p.add_argument("--jobs", type=int, default=200,
                       help="number of jobs (0 = paper scale)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--machines", type=int, default=8)
        p.add_argument("--gpus-per-machine", type=int, default=8)

    simulate = sub.add_parser("simulate", help="run one scheduler")
    add_workload_args(simulate)
    simulate.add_argument("--scheduler", default="muri-l",
                          choices=sorted(SCHEDULERS))
    simulate.add_argument("--out", help="write the result JSON here")
    simulate.add_argument(
        "--trace-out",
        help="record a structured trace of the run: .jsonl writes one "
             "JSON event per line, anything else a Chrome-trace JSON "
             "loadable in Perfetto (ui.perfetto.dev)",
    )
    simulate.add_argument(
        "--elastic", type=float, metavar="FRACTION",
        help="make this fraction of the workload elastic (seeded "
             "Amdahl scalability curves; pair with --scheduler "
             "elastic-muri, see docs/elastic.md)",
    )
    simulate.add_argument(
        "--verify-invariants", action="store_true",
        help="arm the full runtime invariant catalog for the run "
             "(repro.verify.InvariantChecker; raises on the first "
             "violation)",
    )

    explain = sub.add_parser(
        "explain",
        help="re-run a workload with tracing and print one job's "
             "decision provenance (grouping partners, efficiency, round)",
    )
    add_workload_args(explain)
    explain.add_argument("job_id", type=int, help="job id to explain")
    explain.add_argument("--scheduler", default="muri-l",
                         choices=sorted(SCHEDULERS))

    compare = sub.add_parser("compare", help="run several schedulers")
    add_workload_args(compare)
    compare.add_argument(
        "--schedulers",
        default="srsf,muri-s,tiresias,muri-l",
        help="comma-separated registry names",
    )
    compare.add_argument("--normalize-to",
                         help="print rows normalized to this scheduler")
    compare.add_argument("--out", help="write the comparison JSON here")

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument("artifact", choices=EXPERIMENTS)
    experiment.add_argument("--jobs", type=int, default=400)
    experiment.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser(
        "sweep",
        help="run an experiment's cell grid in parallel, resumably, "
             "optionally as one shard of a multi-machine partition",
    )
    sweep.add_argument("artifact", choices=SWEEPABLE_EXPERIMENTS + ("all",))
    sweep.add_argument("--jobs", type=int, default=400,
                       help="jobs per cell (0 = paper scale)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--workers", type=int, default=1,
                       help="process-pool size (1 = serial in-process)")
    sweep.add_argument("--shard",
                       help="run only this shard, e.g. 1/3 (1-based)")
    sweep.add_argument("--out", help="append results to this JSONL store")
    sweep.add_argument(
        "--resume", action="store_true",
        help="skip run ids already completed in --out instead of "
             "truncating it",
    )
    sweep.add_argument("--timeout", type=float,
                       help="per-run wall-clock budget in seconds")
    sweep.add_argument("--retries", type=int, default=2,
                       help="retries for crashed or timed-out workers")
    sweep.add_argument("--list", action="store_true",
                       help="print the cell grid (with shard buckets) "
                            "and exit without running")
    sweep.add_argument("--philly-csv",
                       help="hetero artifact only: replay this ingested "
                            "Philly CSV instead of the synthetic preset")

    trace = sub.add_parser("trace", help="generate a synthetic trace")
    trace.add_argument("--trace", default="1")
    trace.add_argument("--jobs", type=int, default=400)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", required=True, help="CSV output path")

    capacity = sub.add_parser(
        "capacity", help="sweep cluster sizes for a workload"
    )
    add_workload_args(capacity)
    capacity.add_argument(
        "--schedulers", default="srsf,muri-s",
        help="comma-separated registry names",
    )
    capacity.add_argument(
        "--machine-counts", default="2,4,6,8",
        help="comma-separated machine counts to sweep",
    )

    serve = sub.add_parser(
        "serve",
        help="run the online scheduling service: event-driven "
             "submission over a Unix socket, or a one-shot drained "
             "run of the generated workload (see docs/service.md)",
    )
    add_workload_args(serve)
    serve.add_argument("--scheduler", default="muri-l",
                       choices=sorted(SCHEDULERS))
    serve.add_argument("--socket",
                       help="Unix-socket path to listen on (omit with "
                            "--drain for an in-process run)")
    serve.add_argument("--clock", default="virtual",
                       choices=("virtual", "wall"),
                       help="pacing driver: 'virtual' jumps between "
                            "event horizons, 'wall' maps simulated "
                            "seconds to real seconds")
    serve.add_argument("--time-scale", type=float, default=1.0,
                       help="real seconds per simulated second for "
                            "--clock wall")
    serve.add_argument("--interval", type=float, default=360.0,
                       help="scheduling interval in simulated seconds")
    serve.add_argument("--max-pending", type=int, default=1024,
                       help="admission bound on the pending queue")
    serve.add_argument("--drain", action="store_true",
                       help="pre-submit the generated workload, drain, "
                            "print the summary, and exit")
    serve.add_argument(
        "--verify-incremental", action="store_true",
        help="check every incremental regrouping decision against a "
             "cold full re-solve (slow; CI and debugging)",
    )

    fleet = sub.add_parser(
        "fleet",
        help="run a multi-tenant sharded fleet: partition the cluster "
             "into virtual clusters, route a seeded tenant stream "
             "through one scheduler shard per VC, and drain to a "
             "merged result (see docs/fleet.md)",
    )
    add_workload_args(fleet)
    fleet.add_argument("--scheduler", default="fifo",
                       choices=sorted(SCHEDULERS),
                       help="scheduler each shard runs")
    fleet.add_argument("--shards", type=int, default=4,
                       help="number of virtual clusters the machines "
                            "are partitioned into")
    fleet.add_argument("--tenants", type=int, default=3,
                       help="number of synthetic tenants the stream "
                            "round-robins over")
    fleet.add_argument("--max-pending", type=int, default=1024,
                       help="per-shard admission bound")
    fleet.add_argument("--socket",
                       help="serve the fleet on this Unix socket "
                            "instead of a one-shot drained run")
    fleet.add_argument(
        "--verify-shards", action="store_true",
        help="after draining, replay each VC's routed stream on a "
             "fresh standalone shard and demand bit-identical results "
             "(repro.verify.compare_fleet_serial; CI and debugging)",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="run seeded random simulation episodes with all runtime "
             "invariants armed; failing seeds shrink into replayable "
             "JSON repro files (see docs/verification.md)",
    )
    fuzz.add_argument("--episodes", type=int, default=50,
                      help="number of random episodes to run")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="master seed fixing the episode sequence")
    fuzz.add_argument("--max-jobs", type=int, default=12,
                      help="largest workload size generated")
    fuzz.add_argument("--out-dir", default="repro-failures",
                      help="directory for repro files of failing episodes")
    fuzz.add_argument("--invariants",
                      help="comma-separated invariant subset (default: all)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="serialize failing episodes without shrinking")
    fuzz.add_argument("--replay", metavar="REPRO_FILE",
                      help="replay one repro file instead of fuzzing")
    fuzz.add_argument("--hetero", action="store_true",
                      help="generate heterogeneous episodes: typed "
                           "machine layouts plus GPU-generation job "
                           "affinities (exercises "
                           "placement_respects_affinity)")

    replay = sub.add_parser(
        "replay",
        help="replay a production-scale trace through the batch "
             "event-driven harness (see docs/replay.md)",
    )
    replay.add_argument("--jobs", type=int, default=100_000,
                        help="synthetic trace size when no --csv is given")
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--csv", metavar="PATH",
                        help="ingest this Philly-schema CSV instead of "
                             "synthesizing a trace")
    replay.add_argument("--vc", help="keep only this virtual cluster "
                                     "when ingesting --csv")
    replay.add_argument("--via-csv", metavar="PATH",
                        help="serialize the synthetic trace to PATH and "
                             "ingest it back, exercising the full CSV "
                             "adapter path")
    replay.add_argument("--batch-step", type=float, default=300.0,
                        help="admission round length in seconds "
                             "(0 = continuous, bit-identical to run())")
    replay.add_argument("--scheduler", default="fifo",
                        choices=sorted(SCHEDULERS))
    replay.add_argument("--machines", type=int, default=256)
    replay.add_argument("--gpus-per-machine", type=int, default=8)
    replay.add_argument("--fault-mtbf", type=float,
                        help="arm a fault storm: mean seconds between "
                             "faults")
    replay.add_argument("--fault-loss", type=float, default=0.0,
                        help="fraction of progress lost per fault")
    replay.add_argument("--verify-invariants", action="store_true",
                        help="arm the full runtime invariant catalog "
                             "for the replay")
    replay.add_argument("--out", help="write the result JSON here")

    bench = sub.add_parser(
        "bench",
        help="run the pinned performance benchmark suite and write "
             "BENCH_grouping.json / BENCH_service.json / "
             "BENCH_fleet.json / BENCH_elastic.json / "
             "BENCH_replay.json / BENCH_hetero.json (the committed "
             "perf baselines; see docs/performance.md)",
    )
    bench.add_argument("--quick", action="store_true",
                       help="the CI configuration: skip the largest "
                            "cold size and shorten the event streams")
    bench.add_argument("--suite", default="all",
                       choices=("grouping", "service", "fleet",
                                "elastic", "replay", "hetero", "all"),
                       help="which suite(s) to run")
    bench.add_argument("--out-dir", default=".",
                       help="directory the BENCH_*.json files are "
                            "written to (default: current directory)")
    bench.add_argument("--seed", type=int, default=0,
                       help="workload seed (baselines use 0)")

    reproduce = sub.add_parser(
        "reproduce", help="regenerate every paper artifact as one report"
    )
    reproduce.add_argument("--jobs", type=int, default=400)
    reproduce.add_argument("--seed", type=int, default=0)
    reproduce.add_argument(
        "--artifacts", help="comma-separated subset (default: all)"
    )
    reproduce.add_argument("--out", help="write the markdown report here")

    return parser


def _workload(args):
    num_jobs = args.jobs if args.jobs > 0 else None
    trace = generate_trace(args.trace, num_jobs=num_jobs, seed=args.seed)
    specs = build_jobs(trace, seed=args.seed)
    capacity = args.machines * args.gpus_per_machine
    fitting = [s for s in specs if s.num_gpus <= capacity]
    dropped = len(specs) - len(fitting)
    if dropped:
        print(f"note: dropped {dropped} job(s) larger than the cluster")
    return trace, fitting


def _cmd_models(_args) -> int:
    rows = []
    for name in DEFAULT_MODELS:
        model = get_model(name)
        rows.append((
            name, model.task, model.dataset, model.batch_size,
            model.bottleneck.name.title(),
            model.iteration_time,
            "Table 1" if model.published else "synthesized",
        ))
    print(format_table(
        ["Model", "Type", "Dataset/Env", "Batch", "Bottleneck",
         "Iter (s)", "Profile source"],
        rows,
        title="Model zoo (paper Table 3)",
    ))
    return 0


def _cmd_simulate(args) -> int:
    trace, specs = _workload(args)
    if args.elastic is not None:
        from repro.elastic.workload import attach_scalability

        specs = attach_scalability(
            specs, fraction=args.elastic, seed=args.seed
        )
    if args.verify_invariants:
        from repro.verify.invariants import InvariantChecker

        tracer = InvariantChecker(store_events=bool(args.trace_out))
    else:
        tracer = Tracer() if args.trace_out else None
    scheduler = make_scheduler(args.scheduler, tracer=tracer)
    simulator = ClusterSimulator(
        scheduler, cluster=Cluster(args.machines, args.gpus_per_machine),
        tracer=tracer,
    )
    result = simulator.run(specs, trace.name)
    summary = result.summary()
    print(format_table(
        ["Metric", "Value"],
        [
            ("scheduler", scheduler.name),
            ("trace", trace.name),
            ("jobs", summary.num_jobs),
            ("avg JCT (s)", summary.avg_jct),
            ("p50 JCT (s)", summary.p50_jct),
            ("p99 JCT (s)", summary.p99_jct),
            ("makespan (s)", summary.makespan),
            ("avg queue length", summary.avg_queue_length),
            ("avg blocking index", summary.avg_blocking_index),
            ("preemptions", summary.total_preemptions),
        ],
    ))
    if args.verify_invariants:
        print(f"invariants: ok ({len(tracer.invariants)} armed, "
              f"{len(tracer.violations)} violations)")
    if args.out:
        save_result(result, args.out)
        print(f"result written to {args.out}")
    if args.trace_out:
        if args.trace_out.endswith(".jsonl"):
            write_jsonl(tracer, args.trace_out)
        else:
            write_chrome_trace(tracer, args.trace_out)
        print(f"trace written to {args.trace_out}")
        print(trace_summary(tracer))
    return 0


def _cmd_explain(args) -> int:
    trace, specs = _workload(args)
    tracer = Tracer()
    scheduler = make_scheduler(args.scheduler, tracer=tracer)
    simulator = ClusterSimulator(
        scheduler, cluster=Cluster(args.machines, args.gpus_per_machine),
        tracer=tracer,
    )
    result = simulator.run(specs, trace.name)
    if args.job_id not in tracer.provenance:
        known = tracer.provenance.job_ids()
        print(
            f"error: no provenance recorded for job {args.job_id}; "
            f"known job ids: {known[:20]}{'...' if len(known) > 20 else ''}",
            file=sys.stderr,
        )
        return 2
    print(format_explain(tracer, args.job_id, result))
    return 0


def _cmd_compare(args) -> int:
    trace, specs = _workload(args)
    names = [n.strip() for n in args.schedulers.split(",") if n.strip()]
    schedulers = {}
    for name in names:
        scheduler = make_scheduler(name)
        schedulers[scheduler.name] = scheduler
    results = run_schedulers(
        specs, schedulers, trace.name,
        cluster_factory=lambda: Cluster(args.machines, args.gpus_per_machine),
    )
    rows = [
        (label, r.avg_jct, r.tail_jct(99), r.makespan,
         r.avg_queue_length, r.total_preemptions)
        for label, r in results.items()
    ]
    print(format_table(
        ["Scheduler", "Avg JCT (s)", "p99 JCT (s)", "Makespan (s)",
         "Avg queue", "Preempt"],
        rows,
        title=f"{trace.name}: {len(specs)} jobs on "
              f"{args.machines * args.gpus_per_machine} GPUs",
    ))
    if args.normalize_to:
        reference = next(
            (label for label in results
             if label.lower() == args.normalize_to.lower()),
            None,
        )
        if reference is None:
            print(f"error: {args.normalize_to!r} not among the results",
                  file=sys.stderr)
            return 2
        print()
        print(format_speedup_table(
            normalized_metrics(results, reference), list(results),
            title=f"normalized to {reference}",
        ))
    if args.out:
        save_comparison(results, args.out)
        print(f"comparison written to {args.out}")
    return 0


def _cmd_experiment(args) -> int:
    artifact = args.artifact
    jobs, seed = args.jobs, args.seed
    if artifact == "table2":
        table = table2_interleaving_example()
        rows = [
            (name, row["separate_tput"], row["sharing_tput"],
             row["normalized_tput"])
            for name, row in table.items() if name != "__total__"
        ]
        rows.append(("TOTAL", 0.0, 0.0,
                     table["__total__"]["total_normalized_tput"]))
        print(format_table(
            ["Model", "Separate", "Sharing", "Norm. tput"], rows,
            title="Table 2",
        ))
    elif artifact in ("table4", "table5"):
        known = artifact == "table4"
        _results, rows = compare_testbed(known, num_jobs=jobs, seed=seed)
        print(format_speedup_table(rows, list(rows["Normalized JCT"]),
                                   title=artifact))
    elif artifact in ("fig9", "fig10"):
        sweep = simulation_comparison(
            duration_known=(artifact == "fig9"), num_jobs=jobs, seed=seed
        )
        rows = [
            (trace_id, baseline, s["avg_jct"], s["makespan"], s["p99_jct"])
            for trace_id, per_baseline in sweep.items()
            for baseline, s in per_baseline.items()
        ]
        print(format_table(
            ["Trace", "Baseline", "JCT x", "Makespan x", "p99 x"], rows,
            title=artifact,
        ))
    elif artifact == "fig11":
        sweep = ablation_comparison(num_jobs=jobs, seed=seed)
        rows = [
            (trace_id, variant, m["avg_jct"], m["makespan"])
            for trace_id, variants in sweep.items()
            for variant, m in variants.items()
        ]
        print(format_table(["Trace", "Variant", "JCT", "Makespan"], rows,
                           title="fig11 (normalized to Muri-L)"))
    elif artifact == "fig12":
        sweep = group_size_comparison(num_jobs=jobs, seed=seed)
        rows = [
            (trace_id, label, m["avg_jct"], m["makespan"])
            for trace_id, row in sweep.items()
            for label, m in row.items()
        ]
        print(format_table(["Trace", "Scheduler", "JCT", "Makespan"], rows,
                           title="fig12 (normalized to AntMan)"))
    elif artifact == "fig13":
        sweep = job_type_sweep(num_jobs=jobs, seed=seed)
        print(format_series(
            "# types", list(sweep),
            {
                "Muri-S/SRTF": [v["Muri-S/SRTF"] for v in sweep.values()],
                "Muri-L/Tiresias": [v["Muri-L/Tiresias"] for v in sweep.values()],
            },
            title="fig13",
        ))
    elif artifact == "fig14":
        sweep = profiling_noise_sweep(num_jobs=jobs, seed=seed)
        print(format_series(
            "noise", list(sweep),
            {
                "JCT": [v["avg_jct"] for v in sweep.values()],
                "Makespan": [v["makespan"] for v in sweep.values()],
            },
            title="fig14",
        ))
    return 0


def _cmd_sweep(args) -> int:
    num_jobs = args.jobs if args.jobs > 0 else None
    if args.philly_csv and args.artifact != "hetero":
        print("error: --philly-csv applies to the hetero artifact only",
              file=sys.stderr)
        return 2
    cells = experiment_cells(
        args.artifact, num_jobs=num_jobs, seed=args.seed,
        philly_csv=args.philly_csv,
    )
    shard = parse_shard(args.shard) if args.shard else None

    if args.list:
        rows = [
            (cell.run_id, cell.experiment, cell.trace_id, cell.label,
             cell.seed, "yes" if in_shard(cell.run_id, shard) else "no")
            for cell in cells
        ]
        print(format_table(
            ["Run id", "Experiment", "Trace", "Label", "Seed", "Selected"],
            rows,
            title=f"{args.artifact}: {len(cells)} cells"
                  + (f", shard {args.shard}" if shard else ""),
        ))
        return 0

    tracer = Tracer()
    runner = SweepRunner(
        max_workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        store=ResultStore(args.out) if args.out else None,
        resume=args.resume,
        shard=shard,
        tracer=tracer,
    )
    results = runner.run(cells)

    rows = []
    for record in summarize_runs(results.values()):
        rows.append((
            record["run_id"], record["experiment"], record["trace_id"],
            record["label"], record["status"],
            record.get("avg_jct", float("nan")),
            record.get("makespan", float("nan")),
        ))
    print(format_table(
        ["Run id", "Experiment", "Trace", "Label", "Status",
         "Avg JCT (s)", "Makespan (s)"],
        rows,
        title=f"sweep {args.artifact}: {len(results)} of {len(cells)} "
              f"cells" + (f" (shard {args.shard})" if shard else ""),
    ))
    if args.artifact == "hetero":
        completed = [run for run in results.values() if run.ok]
        names: List[str] = []
        if completed:
            names = sorted(completed[0].simulation_result().gpus_by_type)
        if names:
            util_rows = []
            for run in completed:
                util = run.simulation_result().utilization_by_type()
                util_rows.append((
                    run.spec.label if run.spec else run.run_id,
                    *(f"{util.get(name, 0.0):.3f}" for name in names),
                ))
            print(format_table(
                ["Arm"] + [f"{name} util" for name in names],
                util_rows,
                title="per-generation GPU occupancy",
            ))
    counters = tracer.counters
    print(
        "completed {completed}  resumed {resumed}  failed {failed}  "
        "retried {retried}  timeouts {timeout}".format(
            completed=counters.get("sweep.runs.completed", 0),
            resumed=counters.get("sweep.runs.resumed", 0),
            failed=counters.get("sweep.runs.failed", 0),
            retried=counters.get("sweep.runs.retried", 0),
            timeout=counters.get("sweep.runs.timeout", 0),
        )
    )
    if args.out:
        print(f"results appended to {args.out}")

    failures = [run for run in results.values() if not run.ok]
    for run in failures:
        print(f"run {run.run_id} failed:\n{run.error}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_trace(args) -> int:
    trace = generate_trace(args.trace, num_jobs=args.jobs, seed=args.seed)
    trace.to_csv(args.out)
    print(f"{trace.name}: {len(trace)} jobs, load "
          f"{trace.load_factor(64):.2f}x over 64 GPUs -> {args.out}")
    return 0


def _cmd_capacity(args) -> int:
    from repro.analysis.capacity import capacity_sweep

    num_jobs = args.jobs if args.jobs > 0 else None
    trace = generate_trace(args.trace, num_jobs=num_jobs, seed=args.seed)
    machine_counts = sorted(
        int(v) for v in args.machine_counts.split(",") if v.strip()
    )
    smallest = min(machine_counts) * args.gpus_per_machine
    specs = [
        s for s in build_jobs(trace, seed=args.seed)
        if s.num_gpus <= smallest
    ]
    names = [n.strip() for n in args.schedulers.split(",") if n.strip()]
    factories = {}
    for name in names:
        label = make_scheduler(name).name
        factories[label] = (lambda key: (lambda: make_scheduler(key)))(name)
    sweep = capacity_sweep(
        specs, factories, machine_counts,
        gpus_per_machine=args.gpus_per_machine, trace_name=trace.name,
    )
    labels = list(factories)
    rows = [
        [machines * args.gpus_per_machine]
        + [sweep[machines][label].avg_jct for label in labels]
        for machines in machine_counts
    ]
    print(format_table(
        ["GPUs"] + [f"{label} avg JCT (s)" for label in labels],
        rows,
        title=f"capacity sweep on {trace.name} ({len(specs)} jobs)",
    ))
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import (
        SchedulerService,
        ServiceServer,
        VirtualClock,
        WallClock,
    )

    if not args.drain and not args.socket:
        print("error: pass --socket to serve clients, or --drain for a "
              "one-shot run", file=sys.stderr)
        return 2

    tracer = Tracer()
    # Baselines ignore event_regroup; Muri switches from the backfill
    # reservoir to event-driven incremental regrouping.
    scheduler = make_scheduler(
        args.scheduler, tracer=tracer, event_regroup=True
    )
    if args.verify_incremental:
        from repro.verify import IncrementalOracle

        scheduler = IncrementalOracle(
            scheduler,
            lambda: make_scheduler(args.scheduler, event_regroup=True),
        )
    simulator = ClusterSimulator(
        scheduler,
        cluster=Cluster(args.machines, args.gpus_per_machine),
        scheduling_interval=args.interval,
        reschedule_on_arrival=True,
        arrival_reason="arrival",
        backfill_on_completion=True,
        tracer=tracer,
    )
    clock = (WallClock(args.time_scale) if args.clock == "wall"
             else VirtualClock())
    trace, specs = _workload(args)
    service = SchedulerService(
        simulator, max_pending=args.max_pending, clock=clock,
        trace_name=trace.name, tracer=tracer,
    )

    if args.drain:
        for spec in sorted(specs, key=lambda s: s.submit_time):
            service.submit(spec)
        result = service.run_sync()
    else:
        print(f"serving on {args.socket} (scheduler {scheduler.name}, "
              f"{args.clock} clock); submit jobs with ServiceClient, "
              f"drain to finish")
        server = ServiceServer(service, args.socket)
        try:
            result = asyncio.run(server.serve())
        except KeyboardInterrupt:
            print("interrupted; draining in-process")
            result = service.run_sync()
    summary = result.summary()
    counters = tracer.counters
    print(format_table(
        ["Metric", "Value"],
        [
            ("scheduler", scheduler.name),
            ("trace", trace.name),
            ("jobs", summary.num_jobs),
            ("avg JCT (s)", summary.avg_jct),
            ("p99 JCT (s)", summary.p99_jct),
            ("makespan (s)", summary.makespan),
            ("submitted", counters.get("service.submitted", 0)),
            ("cancelled", counters.get("service.cancelled", 0)),
            ("regroups (arrival)", counters.get("sched.regroup.arrival", 0)),
            ("regroups (completion)",
             counters.get("sched.regroup.completion", 0)),
        ],
        title="service run",
    ))
    if args.verify_incremental:
        print(f"incremental regrouping verified against a cold full "
              f"re-solve on {scheduler.checks} decision(s)")
    return 0


def _cmd_fleet(args) -> int:
    import asyncio

    from repro.fleet import FleetFrontEnd, FleetServer, partition_cluster
    from repro.service.daemon import SubmitRejected

    topology = partition_cluster(
        args.machines, args.gpus_per_machine, args.shards
    )
    tracer = Tracer()
    frontend = FleetFrontEnd.build(
        topology,
        scheduler=args.scheduler,
        tracer=tracer,
        max_pending=args.max_pending,
    )
    trace, specs = _workload(args)
    largest = max(vc.total_gpus for vc in topology.vcs)
    runnable = [s for s in specs if s.num_gpus <= largest]
    skipped = len(specs) - len(runnable)
    tenants = [f"tenant{i}" for i in range(max(1, args.tenants))]
    rejected: dict = {}
    for index, spec in enumerate(
        sorted(runnable, key=lambda s: s.submit_time)
    ):
        try:
            frontend.submit(spec, tenant=tenants[index % len(tenants)])
        except SubmitRejected as rejection:
            rejected[rejection.code] = rejected.get(rejection.code, 0) + 1

    if args.socket:
        print(f"serving fleet on {args.socket} ({args.shards} shards, "
              f"scheduler {args.scheduler}); submit jobs with "
              f"ServiceClient, drain to finish")
        server = FleetServer(frontend, args.socket)
        try:
            result = asyncio.run(server.serve())
        except KeyboardInterrupt:
            print("interrupted; draining in-process")
            result = frontend.run_sync()
    else:
        result = frontend.run_sync()

    summary = result.summary()
    p50, p99 = frontend.latency_percentiles()
    counters = tracer.counters
    rows = [
        ("scheduler", args.scheduler),
        ("trace", trace.name),
        ("shards", len(topology.vcs)),
        ("tenants", len(tenants)),
        ("admitted", counters.get("fleet.submitted", 0)),
        ("rejected", sum(rejected.values())),
        ("skipped (too large)", skipped),
        ("avg JCT (s)", summary.avg_jct),
        ("p99 JCT (s)", summary.p99_jct),
        ("makespan (s)", summary.makespan),
        ("submit p50 (us)", p50 * 1e6),
        ("submit p99 (us)", p99 * 1e6),
    ]
    for name in topology.names:
        rows.append(
            (f"routed to {name}", counters.get(f"fleet.routed.{name}", 0))
        )
    for code in sorted(rejected):
        rows.append((f"rejected [{code}]", rejected[code]))
    print(format_table(["Metric", "Value"], rows, title="fleet run"))

    if args.verify_shards:
        from repro.fleet import make_shard
        from repro.verify import compare_fleet_serial

        compare_fleet_serial(
            frontend,
            lambda vc: make_shard(
                vc, scheduler=args.scheduler, max_pending=args.max_pending
            ),
        )
        print(f"shard results verified bit-identical against serial "
              f"per-VC replays ({len(topology.vcs)} shards, "
              f"{len(frontend.routed)} jobs)")
    return 0


def _cmd_fuzz(args) -> int:
    from pathlib import Path

    from repro.verify import (
        FuzzConfig,
        load_repro,
        run_episode,
        run_fuzz,
    )

    if args.replay:
        episode, recorded = load_repro(Path(args.replay))
        outcome = run_episode(episode)
        if outcome.ok:
            print(
                f"{args.replay}: episode ran clean "
                f"(recorded violation: {recorded.get('invariant', '?')}) — "
                f"the bug appears fixed"
            )
            return 0
        violation = outcome.violation
        print(f"{args.replay}: reproduced [{violation.invariant}] "
              f"{violation.message}")
        if violation.invariant != recorded.get("invariant"):
            print(
                f"note: recorded invariant was "
                f"{recorded.get('invariant', '?')!r}"
            )
        return 1

    invariants = None
    if args.invariants:
        invariants = [
            name.strip() for name in args.invariants.split(",") if name.strip()
        ]
    config = FuzzConfig(
        episodes=args.episodes,
        seed=args.seed,
        max_jobs=args.max_jobs,
        out_dir=Path(args.out_dir),
        invariants=invariants,
        shrink=not args.no_shrink,
        hetero=args.hetero,
    )
    report = run_fuzz(config, progress=print)
    print(
        f"fuzz: {report.episodes_run} episodes, "
        f"{len(report.failures)} violation(s)"
    )
    for path, violation in report.failures:
        print(f"  [{violation.invariant}] {violation.message}")
        print(f"  repro file: {path}")
    return 1 if report.failures else 0


def _cmd_replay(args) -> int:
    from repro.replay import replay_trace, synthetic_trace
    from repro.trace.philly_csv import load_philly_csv, write_philly_csv

    report = None
    if args.csv:
        ingested, report = load_philly_csv(
            args.csv, virtual_cluster=args.vc
        )
    else:
        trace = synthetic_trace(args.jobs, seed=args.seed)
        if args.via_csv:
            write_philly_csv(trace, args.via_csv)
            # Round-trip through the adapter: 1-second timestamp
            # resolution and the min-duration filter both apply, so
            # this exercises the exact CSV path CI gates on.
            ingested, report = load_philly_csv(
                args.via_csv, min_duration=0.0
            )
        else:
            ingested = trace
    specs = build_jobs(ingested, seed=args.seed)
    capacity = args.machines * args.gpus_per_machine
    fitting = [s for s in specs if s.num_gpus <= capacity]
    if len(fitting) < len(specs):
        print(f"note: dropped {len(specs) - len(fitting)} job(s) "
              f"larger than the cluster")
    if not fitting:
        print("error: no jobs to replay", file=sys.stderr)
        return 2

    if args.verify_invariants:
        from repro.verify.invariants import InvariantChecker

        tracer = InvariantChecker()
    else:
        tracer = None
    fault_injector = None
    if args.fault_mtbf is not None:
        from repro.sim.faults import FaultInjector

        fault_injector = FaultInjector(
            mean_time_between_faults=args.fault_mtbf,
            seed=args.seed,
            progress_loss=args.fault_loss,
        )
    scheduler = make_scheduler(args.scheduler, tracer=tracer)
    simulator = ClusterSimulator(
        scheduler,
        cluster=Cluster(args.machines, args.gpus_per_machine),
        fault_injector=fault_injector,
        tracer=tracer,
    )
    result, stats = replay_trace(
        simulator, fitting, trace_name=ingested.name,
        batch_step_seconds=args.batch_step,
    )
    summary = result.summary()
    rows = [
        ("scheduler", scheduler.name),
        ("trace", ingested.name),
        ("jobs", summary.num_jobs),
        ("finished", stats.finished_jobs),
        ("avg JCT (s)", summary.avg_jct),
        ("p99 JCT (s)", summary.p99_jct),
        ("makespan (s)", summary.makespan),
        ("admission rounds", stats.rounds),
        ("simulator steps", stats.sim_steps),
        ("wall clock (s)", round(stats.wall_clock, 2)),
        ("p50 step (ms)", round(stats.step_seconds_p50 * 1e3, 3)),
        ("p99 step (ms)", round(stats.step_seconds_p99 * 1e3, 3)),
    ]
    if report is not None:
        rows.append(("csv rows read", report.rows_read))
        rows.append(("csv jobs loaded", report.jobs_loaded))
        rows.append(("csv skipped", report.total_skipped))
    print(format_table(["Metric", "Value"], rows, title="replay"))
    if report is not None and report.skipped:
        for reason, count in sorted(report.skipped.items()):
            print(f"  skipped[{reason}] = {count}")
    if args.out:
        save_result(result, args.out)
        print(f"result written to {args.out}")
    if args.verify_invariants:
        if tracer.violations:
            for violation in tracer.violations:
                print(f"  [{violation.invariant}] {violation.message}")
            print(f"invariants: FAILED ({len(tracer.violations)} "
                  f"violations)")
            return 1
        print(f"invariants: ok ({len(tracer.invariants)} armed, "
              f"0 violations)")
    return 0


def _cmd_bench(args) -> int:
    from pathlib import Path

    from repro.bench import (
        ELASTIC_BENCH_FILE,
        FLEET_BENCH_FILE,
        GROUPING_BENCH_FILE,
        HETERO_BENCH_FILE,
        REPLAY_BENCH_FILE,
        SERVICE_BENCH_FILE,
        gated_metrics,
        run_elastic_suite,
        run_fleet_suite,
        run_grouping_suite,
        run_hetero_suite,
        run_replay_suite,
        run_service_suite,
        write_bench,
    )

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    suites = []
    if args.suite in ("grouping", "all"):
        suites.append((GROUPING_BENCH_FILE, run_grouping_suite))
    if args.suite in ("service", "all"):
        suites.append((SERVICE_BENCH_FILE, run_service_suite))
    if args.suite in ("fleet", "all"):
        suites.append((FLEET_BENCH_FILE, run_fleet_suite))
    if args.suite in ("elastic", "all"):
        suites.append((ELASTIC_BENCH_FILE, run_elastic_suite))
    if args.suite in ("replay", "all"):
        suites.append((REPLAY_BENCH_FILE, run_replay_suite))
    if args.suite in ("hetero", "all"):
        suites.append((HETERO_BENCH_FILE, run_hetero_suite))
    for filename, run_suite in suites:
        print(f"== {filename} ==")
        document = run_suite(
            quick=args.quick, seed=args.seed,
            progress=lambda line: print(f"   {line}"),
        )
        path = out_dir / filename
        write_bench(document, path)
        rows = sorted(gated_metrics(document).items())
        print(format_table(
            ["Gated metric", "Normalized"], rows, title=str(path)
        ))
    return 0


def _cmd_reproduce(args) -> int:
    from pathlib import Path

    from repro.analysis.reproduce import reproduce_all

    artifacts = None
    if args.artifacts:
        artifacts = [a.strip() for a in args.artifacts.split(",") if a.strip()]
    report = reproduce_all(
        num_jobs=args.jobs,
        seed=args.seed,
        artifacts=artifacts,
        progress=lambda artifact: print(f"... {artifact}"),
    )
    if args.out:
        Path(args.out).write_text(report)
        print(f"report written to {args.out}")
    else:
        print(report)
    return 0


_COMMANDS = {
    "models": _cmd_models,
    "simulate": _cmd_simulate,
    "explain": _cmd_explain,
    "compare": _cmd_compare,
    "experiment": _cmd_experiment,
    "sweep": _cmd_sweep,
    "trace": _cmd_trace,
    "capacity": _cmd_capacity,
    "serve": _cmd_serve,
    "fleet": _cmd_fleet,
    "fuzz": _cmd_fuzz,
    "replay": _cmd_replay,
    "bench": _cmd_bench,
    "reproduce": _cmd_reproduce,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
