"""Heterogeneous GPU generations: catalogue, scaling, and workloads.

``repro.hetero`` opens the heterogeneous-cluster scenario (see
``docs/heterogeneous.md``): a generation catalogue
(:data:`GPU_GENERATIONS`), per-model per-generation speed factors
(:class:`TypeScaling`), seeded cluster layouts
(:func:`make_hetero_cluster`), and type-pinned workload builders
(:func:`pin_jobs`, :func:`build_hetero_jobs`) whose job profiles are
pre-scaled for the generation they land on.  Placement affinity is
enforced by ``repro.cluster.placement`` and checked at runtime by the
``placement_respects_affinity`` invariant in ``repro.verify``.
"""

from repro.cluster.placement import ThroughputAwarePlacer
from repro.hetero.types import (
    DEFAULT_TYPE_SCALING,
    GPU_GENERATIONS,
    TypeScaling,
    get_gpu_type,
    memory_caps_by_type,
)
from repro.hetero.workload import (
    build_hetero_jobs,
    make_hetero_cluster,
    make_type_mix,
    pin_jobs,
)

__all__ = [
    "DEFAULT_TYPE_SCALING",
    "GPU_GENERATIONS",
    "ThroughputAwarePlacer",
    "TypeScaling",
    "get_gpu_type",
    "memory_caps_by_type",
    "build_hetero_jobs",
    "make_hetero_cluster",
    "make_type_mix",
    "pin_jobs",
]
