"""GPU generations and per-model speed scaling.

The paper's testbed is homogeneous V100s, but the Philly clusters it
draws traces from mix generations — and Pollux (arXiv 2008.12260)
shows that per-device goodput scaling must be modelled explicitly
rather than averaged away.  This module provides the generation
catalogue (:data:`GPU_GENERATIONS`) and :class:`TypeScaling`, the
per-model, per-generation stage-duration speed factors that
``repro.hetero.workload`` threads into job profiles.

The model: a generation with speed factor ``f`` runs every stage of a
job's iteration ``f`` times faster than the V100 baseline (durations
divide by ``f``).  Per-model overrides refine that — a memory-bound
RL model gains less from an A100 than a compute-dense transformer —
without touching the base catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.cluster.machine import GpuType

__all__ = [
    "GPU_GENERATIONS",
    "DEFAULT_TYPE_SCALING",
    "TypeScaling",
    "get_gpu_type",
    "memory_caps_by_type",
]

#: The generation catalogue, keyed by name.  Speed factors are relative
#: to the paper's V100 testbed (1.0); memory is per-device.
GPU_GENERATIONS: Dict[str, GpuType] = {
    "k80": GpuType("k80", speed_factor=0.35, memory_gb=12.0),
    "p100": GpuType("p100", speed_factor=0.6, memory_gb=16.0),
    "v100": GpuType("v100", speed_factor=1.0, memory_gb=32.0),
    "a100": GpuType("a100", speed_factor=2.0, memory_gb=40.0),
}


def get_gpu_type(name: str) -> GpuType:
    """Look up a generation by name (case-insensitive).

    Raises:
        KeyError: For names not in :data:`GPU_GENERATIONS`.
    """
    key = name.lower()
    if key not in GPU_GENERATIONS:
        raise KeyError(
            f"unknown GPU generation {name!r}; known: "
            f"{sorted(GPU_GENERATIONS)}"
        )
    return GPU_GENERATIONS[key]


def memory_caps_by_type(
    type_names: Optional[Tuple[str, ...]] = None,
) -> Dict[str, float]:
    """``generation name -> memory_gb`` capacities from the catalogue.

    The table the grouper's per-type memory feasibility check expects
    (``MultiRoundGrouper(gpu_memory_by_type=...)``): an affine group is
    checked against its landing generation's device memory instead of
    a flat cluster-wide cap.

    Args:
        type_names: Generations to include; None takes the whole
            catalogue.

    Raises:
        KeyError: For names not in :data:`GPU_GENERATIONS`.
    """
    if type_names is None:
        return {
            name: t.memory_gb for name, t in GPU_GENERATIONS.items()
        }
    return {
        name.lower(): get_gpu_type(name).memory_gb for name in type_names
    }


@dataclass(frozen=True)
class TypeScaling:
    """Per-model, per-generation stage-duration speed factors.

    Attributes:
        base: ``generation name -> speed factor`` defaults, usually the
            catalogue's :attr:`GpuType.speed_factor` values.
        per_model: Optional ``model name -> {generation -> factor}``
            overrides (model names matched case-insensitively); absent
            entries fall back to ``base``.
    """

    base: Mapping[str, float]
    per_model: Mapping[str, Mapping[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, factor in self.base.items():
            if not factor > 0:
                raise ValueError(f"factor for {name!r} must be > 0")
        for model, overrides in self.per_model.items():
            for name, factor in overrides.items():
                if not factor > 0:
                    raise ValueError(
                        f"factor for {model!r} on {name!r} must be > 0"
                    )

    def factor(self, model: str, type_name: str) -> float:
        """Speed factor of one model on one generation.

        Raises:
            KeyError: When the generation is in neither the model's
                overrides nor the base table.
        """
        overrides = self.per_model.get(model.lower())
        if overrides is not None and type_name in overrides:
            return overrides[type_name]
        if type_name not in self.base:
            raise KeyError(
                f"no speed factor for generation {type_name!r}; known: "
                f"{sorted(self.base)}"
            )
        return self.base[type_name]

    def uniformly_scaled(self, k: float) -> "TypeScaling":
        """A copy with every factor multiplied by ``k``.

        The metamorphic handle of the speed-scaling property tests:
        scaling every generation by ``k`` must scale makespan by
        ``~1/k``.
        """
        if not k > 0:
            raise ValueError("k must be > 0")
        return TypeScaling(
            base={name: factor * k for name, factor in self.base.items()},
            per_model={
                model: {name: factor * k for name, factor in overrides.items()}
                for model, overrides in self.per_model.items()
            },
        )

    def names(self) -> Tuple[str, ...]:
        """Generation names with a base factor, sorted."""
        return tuple(sorted(self.base))


#: Catalogue-derived defaults with per-model refinements: RL models
#: (CPU-heavy simulation loops) gain less from newer silicon, dense
#: language models gain more.
DEFAULT_TYPE_SCALING = TypeScaling(
    base={name: t.speed_factor for name, t in GPU_GENERATIONS.items()},
    per_model={
        "a2c": {"a100": 1.4, "p100": 0.7},
        "dqn": {"a100": 1.4, "p100": 0.7},
        "gpt2": {"a100": 2.4, "k80": 0.25},
        "bert": {"a100": 2.2, "k80": 0.3},
    },
)
