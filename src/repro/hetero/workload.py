"""Heterogeneous clusters and type-pinned workloads.

Builders that turn a homogeneous trace + cluster into a heterogeneous
scenario:

* :func:`make_type_mix` — a seeded per-machine generation layout;
* :func:`make_hetero_cluster` — a :class:`~repro.cluster.Cluster`
  carrying that layout;
* :func:`pin_jobs` / :func:`build_hetero_jobs` — job specs whose
  stage profiles are pre-scaled for the generation they are pinned
  (or prefer) to run on, so a job's iteration time depends on where
  it lands.

Determinism contract: the same ``(trace, type_names, seed)`` always
yields the same layout, the same per-job generation assignment, and
the same scaled profiles — replay runs and differential oracles rely
on it.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.machine import GpuType
from repro.hetero.types import DEFAULT_TYPE_SCALING, TypeScaling, get_gpu_type
from repro.jobs.job import JobSpec
from repro.jobs.scalability import ScalabilityProfile
from repro.models.zoo import ModelProfile
from repro.trace.records import Trace
from repro.trace.workload import build_jobs

__all__ = [
    "make_type_mix",
    "make_hetero_cluster",
    "pin_jobs",
    "build_hetero_jobs",
]

#: Seed offset separating the type-assignment RNG stream from the
#: model-assignment stream build_jobs already draws from the same seed.
_TYPE_SEED_OFFSET = 0x9E37


def make_type_mix(
    type_names: Sequence[str],
    num_machines: int,
    seed: int = 0,
) -> List[GpuType]:
    """A seeded per-machine generation layout.

    Every requested generation appears at least once (machine ``i``
    gets generation ``i`` for the first ``len(type_names)`` machines);
    the remainder is drawn uniformly, so the mix is representative but
    never degenerate.

    Args:
        type_names: Generation names from the catalogue.
        num_machines: Number of machines to lay out.
        seed: RNG seed for the uniform tail.

    Raises:
        ValueError: With no type names or fewer machines than names.
        KeyError: For unknown generation names.
    """
    if not type_names:
        raise ValueError("need at least one generation name")
    types = [get_gpu_type(name) for name in type_names]
    if num_machines < len(types):
        raise ValueError(
            f"{num_machines} machines cannot host all "
            f"{len(types)} generations"
        )
    rng = random.Random(seed + _TYPE_SEED_OFFSET)
    layout = list(types)
    layout.extend(
        rng.choice(types) for _ in range(num_machines - len(types))
    )
    return layout


def make_hetero_cluster(
    num_machines: int = 8,
    gpus_per_machine: int = 8,
    type_names: Sequence[str] = ("v100", "a100"),
    seed: int = 0,
) -> Cluster:
    """A cluster whose machines carry a seeded generation mix."""
    return Cluster(
        num_machines=num_machines,
        gpus_per_machine=gpus_per_machine,
        machine_types=make_type_mix(type_names, num_machines, seed),
    )


def _scaled_scalability(
    scalability: Optional[ScalabilityProfile], factor: float
) -> Optional[ScalabilityProfile]:
    """Scale every point of a goodput curve by one speed factor."""
    if scalability is None:
        return None
    return ScalabilityProfile(tuple(
        (gpus, profile.scaled(1.0 / factor))
        for gpus, profile in scalability.points
    ))


def pin_jobs(
    specs: Sequence[JobSpec],
    type_names: Sequence[str],
    seed: int = 0,
    scaling: Optional[TypeScaling] = None,
    prefer_fraction: float = 0.0,
) -> List[JobSpec]:
    """Pin each spec to a seeded generation and pre-scale its profile.

    Each job draws a generation uniformly from ``type_names``; its
    stage profile (and scalability curve, when present) is divided by
    the per-model speed factor of that generation, so the simulator's
    iteration arithmetic already reflects where the job will land.
    With ``prefer_fraction > 0`` a seeded subset carries a soft
    ``"prefer"`` affinity instead of a hard pin — those jobs keep the
    *baseline* profile because they may land anywhere.

    Args:
        specs: Job specs to transform (not mutated).
        type_names: Candidate generation names.
        seed: RNG seed; assignment is order-stable over ``specs``.
        scaling: Speed-factor table; :data:`DEFAULT_TYPE_SCALING` when
            omitted.
        prefer_fraction: Probability in [0, 1] of a soft affinity.

    Returns:
        New specs, input order preserved.
    """
    if not type_names:
        raise ValueError("need at least one generation name")
    if not 0.0 <= prefer_fraction <= 1.0:
        raise ValueError("prefer_fraction must be in [0, 1]")
    for name in type_names:
        get_gpu_type(name)
    table = scaling if scaling is not None else DEFAULT_TYPE_SCALING
    rng = random.Random(seed + _TYPE_SEED_OFFSET)
    pinned: List[JobSpec] = []
    for spec in specs:
        type_name = type_names[rng.randrange(len(type_names))]
        soft = prefer_fraction > 0.0 and rng.random() < prefer_fraction
        if soft:
            pinned.append(replace(
                spec, gpu_affinity=type_name, affinity_mode="prefer",
            ))
            continue
        factor = table.factor(spec.model, type_name)
        pinned.append(replace(
            spec,
            profile=spec.profile.scaled(1.0 / factor),
            scalability=_scaled_scalability(spec.scalability, factor),
            gpu_affinity=type_name,
            affinity_mode="pin",
        ))
    return pinned


def build_hetero_jobs(
    trace: Trace,
    type_names: Sequence[str],
    models: Optional[Sequence[ModelProfile]] = None,
    seed: int = 0,
    network_scaling: float = 0.0,
    scaling: Optional[TypeScaling] = None,
    prefer_fraction: float = 0.0,
) -> List[JobSpec]:
    """Build type-pinned job specs straight from a trace.

    The heterogeneous twin of
    :func:`repro.trace.workload.build_jobs`: the same model
    assignment and iteration sizing (identical seed stream), followed
    by :func:`pin_jobs` on the result.
    """
    return pin_jobs(
        build_jobs(trace, models=models, seed=seed,
                   network_scaling=network_scaling),
        type_names,
        seed=seed,
        scaling=scaling,
        prefer_fraction=prefer_fraction,
    )
