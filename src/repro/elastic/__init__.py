"""Elastic goodput-adaptive scheduling on top of Muri.

Muri fixes each job's GPU count for life; this package adds the
ROADMAP's elastic/adaptive-workload arm in the style of Pollux (arXiv
2008.12260): jobs carry a :class:`~repro.jobs.ScalabilityProfile`
(per-GPU-count stage durations, i.e. a goodput curve), and
:class:`ElasticMuriScheduler` renegotiates GPU counts at each
scheduling interval — shrinking jobs onto their efficient operating
points and water-filling freed GPUs to the best marginal goodput —
*before* running Algorithm-1 interleaving grouping on the resized
GPU-count buckets.

The arm degenerates exactly: when every job is rigid (no scalability
profile, or a flat single-point one), renegotiation proposes nothing
and the scheduler is bit-identical to
:class:`~repro.core.muri.MuriScheduler` — a guarantee enforced by the
``repro.verify.elastic`` differential oracle and CI.

Build it via the registry (``make_scheduler("elastic-muri")``), the
CLI (``repro simulate --scheduler elastic-muri``), or directly; see
``docs/elastic.md``.
"""

from repro.elastic.allocator import GoodputAllocator
from repro.elastic.scheduler import ElasticMuriScheduler
from repro.elastic.workload import attach_scalability
from repro.jobs.scalability import ScalabilityProfile

__all__ = [
    "ElasticMuriScheduler",
    "GoodputAllocator",
    "ScalabilityProfile",
    "attach_scalability",
]
