"""Attach scalability curves to existing workloads.

Synthetic traces produce rigid :class:`~repro.jobs.JobSpec` s;
:func:`attach_scalability` turns a seeded fraction of them elastic by
fitting an Amdahl-style goodput curve through each job's requested
operating point.  The transformation is deterministic in the seed and
keeps every spec's identity (job id, submit time, iterations, profile
at the requested count) unchanged, so elastic sweep cells stay
declaratively reproducible from a :class:`~repro.sweep.RunSpec`.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Sequence

from repro.jobs.job import JobSpec
from repro.jobs.scalability import ScalabilityProfile

__all__ = ["attach_scalability", "amdahl_curve"]


def amdahl_curve(
    spec: JobSpec,
    serial_fraction: float,
    max_gpus: int = 8,
) -> ScalabilityProfile:
    """An Amdahl-law goodput curve through the spec's operating point.

    Throughput at ``g`` GPUs is modelled as
    ``g / (1 + serial_fraction * (g - 1))`` relative to one GPU — the
    classic diminishing-returns shape — and the supported counts are
    the powers of two up to ``max_gpus`` plus the spec's own count.
    Stage durations at every count are the spec profile scaled by the
    relative speedup, so the curve passes exactly through the profile
    the spec already carries.

    Args:
        spec: The job to fit a curve for.
        serial_fraction: Amdahl serial fraction in ``[0, 1)``; larger
            values flatten the curve (scale-out pays less).
        max_gpus: Largest power-of-two count to support.

    Returns:
        The fitted :class:`~repro.jobs.ScalabilityProfile`.
    """
    if not 0.0 <= serial_fraction < 1.0:
        raise ValueError(
            f"serial_fraction must be in [0, 1), got {serial_fraction}"
        )

    def throughput(gpus: int) -> float:
        return gpus / (1.0 + serial_fraction * (gpus - 1))

    counts = set()
    gpus = 1
    while gpus <= max_gpus:
        counts.add(gpus)
        gpus *= 2
    counts.add(spec.num_gpus)
    base = throughput(spec.num_gpus)
    speedups = {
        count: throughput(count) / base for count in sorted(counts)
    }
    return ScalabilityProfile.from_speedups(
        spec.num_gpus, spec.profile, speedups
    )


def attach_scalability(
    specs: Sequence[JobSpec],
    fraction: float = 0.5,
    seed: int = 0,
    max_gpus: int = 8,
    serial_fraction_range: Sequence[float] = (0.05, 0.35),
) -> List[JobSpec]:
    """Make a seeded fraction of a workload elastic.

    Args:
        specs: The rigid workload (order preserved).
        fraction: Probability each job becomes elastic.
        seed: RNG seed; the same seed always elects the same jobs and
            fits the same curves.
        max_gpus: Largest supported GPU count per elastic job.
        serial_fraction_range: Per-job Amdahl serial fraction is drawn
            uniformly from this ``(low, high)`` interval.

    Returns:
        A new spec list; elected jobs carry a scalability profile,
        everything else is returned untouched.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    low, high = serial_fraction_range
    rng = random.Random(seed)
    out: List[JobSpec] = []
    for spec in specs:
        # Draw both variates unconditionally so each job's curve is
        # independent of how many jobs before it were elected.
        elected = rng.random() < fraction
        serial_fraction = rng.uniform(low, high)
        if not elected:
            out.append(spec)
            continue
        out.append(dataclasses.replace(
            spec,
            scalability=amdahl_curve(spec, serial_fraction, max_gpus),
        ))
    return out
