"""The elastic Muri scheduler: renegotiate GPU counts, then interleave.

:class:`ElasticMuriScheduler` is :class:`~repro.core.muri.MuriScheduler`
plus one hook: :meth:`ElasticMuriScheduler.renegotiate`, which the
simulator calls at each scheduling tick *before* ``decide``.  The hook
asks the :class:`~repro.elastic.allocator.GoodputAllocator` for target
GPU counts and returns only the changes; the simulator owns applying
them (stopping affected groups, conserving progress, emitting
``sched.resize.*`` events) and notifies the scheduler per resize so
every demand-keyed cache is invalidated before Algorithm-1 grouping
runs on the resized buckets.

Degeneracy guarantee: with only rigid/flat jobs the hook returns an
empty mapping before touching any scheduler state, so ``decide`` —
inherited unchanged — produces bit-identical plans to ``MuriScheduler``
(certified by :func:`repro.verify.elastic.compare_flat_identity`).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.muri import MuriScheduler
from repro.elastic.allocator import GoodputAllocator
from repro.jobs.job import Job
from repro.observe.events import EventCategory

__all__ = ["ElasticMuriScheduler"]


class ElasticMuriScheduler(MuriScheduler):
    """Muri with Pollux-style goodput-adaptive GPU renegotiation.

    Accepts every :class:`~repro.core.muri.MuriScheduler` argument,
    plus:

    Args:
        allocator: The goodput water-filling policy; defaults to a
            fresh :class:`~repro.elastic.allocator.GoodputAllocator`.
        renegotiation_interval: Renegotiate on every k-th scheduling
            tick (1 = every tick, the default).  Between renegotiation
            ticks the scheduler behaves exactly like ``MuriScheduler``.
    """

    def __init__(
        self,
        policy: str = "srsf",
        allocator: Optional[GoodputAllocator] = None,
        renegotiation_interval: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(policy=policy, **kwargs)
        if renegotiation_interval < 1:
            raise ValueError(
                f"renegotiation_interval must be >= 1, got "
                f"{renegotiation_interval}"
            )
        self.allocator = allocator if allocator is not None else GoodputAllocator()
        self.renegotiation_interval = int(renegotiation_interval)
        self._renegotiation_calls = 0
        self.name = f"Elastic-{self.name}"

    def renegotiate(
        self,
        now: float,
        jobs: Sequence[Job],
        total_gpus: int,
    ) -> Dict[int, int]:
        """Propose new GPU counts for the elastic jobs.

        Called by the simulator at each scheduling tick, before
        ``decide``.  Returns ``{job_id: target_gpus}`` containing only
        actual changes; the simulator applies them and calls
        :meth:`~repro.core.muri.MuriScheduler.notify_resize` per job.

        Args:
            now: Simulation time.
            jobs: Every schedulable (pending or running) job.
            total_gpus: Cluster GPU capacity.

        Returns:
            Target GPU count per job to resize; empty when nothing
            should change (always empty for all-rigid workloads).
        """
        self._renegotiation_calls += 1
        if (self._renegotiation_calls - 1) % self.renegotiation_interval != 0:
            return {}
        if not any(
            job.spec.scalability is not None
            and not job.spec.scalability.is_flat
            for job in jobs
        ):
            return {}

        priority = {
            job.job_id: (self.policy(job, now), job.spec.submit_time, job.job_id)
            for job in jobs
        }
        ordered = sorted(jobs, key=lambda job: priority[job.job_id])
        granted = self.allocator.allocate(ordered, total_gpus)
        targets: Dict[int, int] = {}
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        for job in ordered:
            target = granted.get(job.job_id)
            if target is None or target == job.num_gpus:
                continue
            targets[job.job_id] = target
            if tracing:
                tracer.emit(
                    EventCategory.SCHED,
                    "sched.resize.target",
                    now,
                    job=job.job_id,
                    old_gpus=job.num_gpus,
                    new_gpus=target,
                    speedup=job.spec.scalability.speedup(target),
                )
        if tracing and targets:
            tracer.count("sched.renegotiate.changed", len(targets))
        return targets
