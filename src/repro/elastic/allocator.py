"""Goodput-adaptive GPU allocation (Pollux-style water-filling).

The allocator decides, once per renegotiation, how many GPUs every
elastic job *should* hold.  It is deliberately simple and fully
deterministic — a greedy marginal-goodput water-fill:

1. walk the queue in scheduler priority order, admitting rigid jobs at
   their fixed count and elastic jobs at their smallest supported
   count, until the cluster capacity is spoken for;
2. repeatedly grant the single step-up (to the next supported GPU
   count) with the best normalized goodput gain per additional GPU,
   until no profitable step fits the remaining capacity.

Elastic jobs that did not fit even at their minimum count are still
shrunk to it, so they present the smallest possible demand at the next
scheduling interval.  Ties break toward higher-priority jobs, then
lower job id, so the same inputs always produce the same allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.jobs.job import Job

__all__ = ["GoodputAllocator"]


def _curve(job: Job):
    """The job's scalability curve, or None when it is rigid."""
    scalability = job.spec.scalability
    if scalability is None or scalability.is_flat:
        return None
    return scalability


@dataclass
class GoodputAllocator:
    """Greedy marginal-goodput water-filling over the job queue.

    Args:
        min_gain: Smallest normalized goodput gain per additional GPU
            worth acting on; steps below it are never granted, which
            keeps near-flat curve tails from churning allocations (and
            preempting groups) for negligible speedup.
    """

    min_gain: float = 1e-6

    def allocate(
        self,
        ordered_jobs: Sequence[Job],
        total_gpus: int,
    ) -> Dict[int, int]:
        """Target GPU counts for one renegotiation round.

        Args:
            ordered_jobs: Every schedulable job, highest scheduling
                priority first (the same order Muri dequeues in).
            total_gpus: Cluster GPU capacity being divided.

        Returns:
            ``{job_id: target_gpus}`` for every job the allocator
            sized.  Rigid jobs appear at their fixed count (never a
            resize); elastic jobs appear at their water-filled count.
        """
        granted: Dict[int, int] = {}
        growable: List[Job] = []
        free = total_gpus
        for job in ordered_jobs:
            curve = _curve(job)
            if curve is None:
                want = job.num_gpus
                if want <= free:
                    granted[job.job_id] = want
                    free -= want
                continue
            floor = curve.min_gpus
            granted[job.job_id] = floor
            if floor <= free:
                free -= floor
                growable.append(job)
            # else: shrunk to the floor but unfunded this round — it
            # queues with minimal demand.

        while free > 0:
            best: Optional[tuple] = None
            for index, job in enumerate(growable):
                curve = _curve(job)
                current = granted[job.job_id]
                step = curve.next_step(current)
                if step is None or step - current > free:
                    continue
                gain = (
                    curve.speedup(step) - curve.speedup(current)
                ) / (step - current)
                if gain < self.min_gain:
                    continue
                key = (gain, -index, -job.job_id)
                if best is None or key > best[0]:
                    best = (key, job, step)
            if best is None:
                break
            _, job, step = best
            free -= step - granted[job.job_id]
            granted[job.job_id] = step
        return granted
