"""Resumable JSONL result store.

One :class:`RunResult` per line, appended atomically (single write +
flush + fsync per result), so a sweep killed mid-flight loses at most
the line it was writing.  :meth:`ResultStore.load` tolerates exactly
that failure mode: a truncated (unparseable) **final** line is counted
and skipped, while corruption anywhere else raises — silent data loss
in the middle of a store is a bug, a half-written tail is expected.

The store is the resume protocol: a restarted sweep loads
:meth:`ResultStore.completed_ids` and skips those cells.  Later lines
win when a run id appears twice (e.g. a run recorded as an error and
then retried by a fresh invocation).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Set, Union

from repro.sweep.spec import RunResult

__all__ = ["ResultStore"]


class ResultStore:
    """Append-only JSONL persistence for sweep results.

    Args:
        path: The JSONL file; created (with parent directories) on
            first append.

    Attributes:
        truncated_lines: Unparseable final lines skipped by the last
            :meth:`load` (0 or 1 per file read).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.truncated_lines = 0

    def append(self, result: RunResult) -> None:
        """Durably append one result as a single JSONL line."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(result.to_dict(), allow_nan=False) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def clear(self) -> None:
        """Remove the store file (a non-resuming sweep starts fresh)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def load(self) -> List[RunResult]:
        """Read every stored result, last write winning per run id.

        Returns an empty list when the file does not exist.  A final
        line that fails to parse is treated as the tail of an
        interrupted append: skipped and counted in
        :attr:`truncated_lines`.

        Raises:
            ValueError: When a line *before* the last is unparseable —
                that is corruption, not an interrupted append.
        """
        self.truncated_lines = 0
        if not self.path.exists():
            return []
        lines = [
            (number, line)
            for number, line in enumerate(
                self.path.read_text(encoding="utf-8").splitlines(), start=1
            )
            if line.strip()
        ]
        by_id: Dict[str, RunResult] = {}
        for position, (number, line) in enumerate(lines):
            try:
                payload = json.loads(line)
                result = RunResult.from_dict(payload)
            except (ValueError, KeyError, TypeError) as error:
                if position == len(lines) - 1:
                    self.truncated_lines += 1
                    continue
                raise ValueError(
                    f"{self.path}:{number}: corrupt result line: {error}"
                ) from error
            by_id[result.run_id] = result
        return list(by_id.values())

    def completed_ids(self) -> Set[str]:
        """Run ids whose latest stored entry completed successfully."""
        return {result.run_id for result in self.load() if result.ok}
