"""Worker-side execution of sweep cells.

:func:`execute_run` is the single place a declarative
:class:`~repro.sweep.spec.RunSpec` turns back into live objects —
trace, job specs, scheduler, cluster, simulator — and runs.  It is a
top-level function on purpose: :class:`concurrent.futures`
process pools pickle callables by qualified name, so everything a
worker invokes must live at module scope.

Execution is deterministic per spec: the trace and model assignment
are derived from the spec's seed, the scheduler is built fresh, and
the simulator is seeded state-free, so the same spec produces the
same :class:`~repro.sim.metrics.SimulationResult` serially, in a
process pool, or on another machine.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.cluster.cluster import Cluster
from repro.jobs.job import JobSpec
from repro.profiler.noise import UniformNoise
from repro.profiler.profiler import ResourceProfiler
from repro.schedulers.base import Scheduler
from repro.schedulers.registry import make_scheduler
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import ClusterSimulator
from repro.sweep.spec import RunSpec
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs

__all__ = [
    "PrebuiltCell",
    "build_workload",
    "build_scheduler",
    "execute_run",
    "execute_prebuilt",
]


@dataclass
class PrebuiltCell:
    """A non-declarative cell: live objects instead of a spec.

    Used by :func:`repro.analysis.experiments.run_schedulers`, whose
    callers hand it arbitrary scheduler instances and job lists that
    have no registry description.  Prebuilt cells are picklable (the
    cluster is built parent-side so factories may be lambdas) but not
    resumable or shardable — they have no stable spec hash.

    Attributes:
        label: Result key, e.g. the scheduler's display name.
        specs: The workload.
        scheduler: A fresh scheduler instance for this run.
        cluster: A fresh cluster for this run.
        trace_name: Workload label recorded in the result.
        sim_options: Extra :class:`ClusterSimulator` keyword arguments.
    """

    label: str
    specs: Tuple[JobSpec, ...]
    scheduler: Scheduler
    cluster: Cluster
    trace_name: str = "workload"
    sim_options: Dict[str, Any] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)
        if self.sim_options is None:
            self.sim_options = {}


def build_workload(spec: RunSpec) -> Tuple[str, List[JobSpec]]:
    """Materialize the spec's trace and job list.

    Returns:
        ``(trace_name, job_specs)`` — deterministic for a given spec.
    """
    if spec.trace_path is not None:
        # End-to-end ingestion: the cell replays a real (or
        # round-tripped) Philly CSV dump through the full adapter,
        # skip accounting included.
        from repro.trace.philly_csv import load_philly_csv

        trace, _ = load_philly_csv(spec.trace_path)
        if spec.num_jobs is not None and len(trace) > spec.num_jobs:
            trace = trace.head(spec.num_jobs)
    elif spec.trace_id == "replay":
        # The replay arm's constant-load trace; sized by num_jobs
        # rather than drawn from the paper's Philly presets.
        from repro.replay import synthetic_trace

        trace = synthetic_trace(spec.num_jobs or 2_000, seed=spec.seed)
    else:
        trace = generate_trace(
            spec.trace_id,
            num_jobs=spec.num_jobs,
            seed=spec.seed,
            at_time_zero=spec.at_time_zero,
        )
    if spec.busiest_interval is not None:
        trace = trace.busiest_interval(spec.busiest_interval)
    models = list(spec.models) if spec.models is not None else None
    job_specs = build_jobs(trace, models=models, seed=spec.seed)
    if spec.elastic_fraction is not None:
        from repro.elastic.workload import attach_scalability

        job_specs = attach_scalability(
            job_specs, fraction=spec.elastic_fraction, seed=spec.seed
        )
    if spec.hetero_types is not None:
        from repro.hetero.workload import pin_jobs

        job_specs = pin_jobs(
            job_specs,
            list(spec.hetero_types),
            seed=spec.seed,
            prefer_fraction=spec.prefer_fraction or 0.0,
        )
    return trace.name, job_specs


def build_scheduler(spec: RunSpec) -> Scheduler:
    """Build the spec's scheduler (with a noisy profiler when asked)."""
    profiler = None
    if spec.noise_level is not None:
        profiler = ResourceProfiler(
            noise=UniformNoise(spec.noise_level),
            num_dry_runs=1,
            seed=spec.seed,
            cache_by_model=False,
        )
    return make_scheduler(
        spec.scheduler, profiler=profiler, **dict(spec.scheduler_options)
    )


def execute_run(spec: RunSpec) -> SimulationResult:
    """Run one declarative cell to completion, in this process.

    This is the serial path and the worker path: the sweep runner
    calls it directly when ``max_workers=1`` and through a process
    pool otherwise, so both produce identical results by construction.
    """
    trace_name, job_specs = build_workload(spec)
    scheduler = build_scheduler(spec)
    sim_options = dict(spec.sim_options)
    if spec.hetero_types is not None:
        from repro.hetero.types import DEFAULT_TYPE_SCALING
        from repro.hetero.workload import make_hetero_cluster

        cluster = make_hetero_cluster(
            spec.machines,
            spec.gpus_per_machine,
            type_names=tuple(spec.hetero_types),
            seed=spec.seed,
        )
        sim_options.setdefault("landing_speed_scaling", DEFAULT_TYPE_SCALING)
    else:
        cluster = Cluster(spec.machines, spec.gpus_per_machine)
    if spec.placement == "aware":
        from repro.cluster.placement import ThroughputAwarePlacer

        sim_options["placer"] = ThroughputAwarePlacer()
    elif spec.placement is not None:
        raise ValueError(
            f"unknown placement policy {spec.placement!r}; expected 'aware'"
        )
    simulator = ClusterSimulator(
        scheduler,
        cluster=cluster,
        **sim_options,
    )
    if spec.replay_batch_step is not None:
        from repro.replay import replay_trace

        result, _ = replay_trace(
            simulator, job_specs, trace_name=trace_name,
            batch_step_seconds=spec.replay_batch_step,
        )
        return result
    return simulator.run(job_specs, trace_name)


def execute_prebuilt(cell: PrebuiltCell) -> SimulationResult:
    """Run one prebuilt cell (live scheduler/cluster objects)."""
    simulator = ClusterSimulator(
        cell.scheduler, cluster=cell.cluster, **cell.sim_options
    )
    return simulator.run(list(cell.specs), cell.trace_name)


def _worker_entry(kind: str, payload: Any) -> Dict[str, Any]:
    """Process-pool entry point: execute a cell, never raise.

    Deterministic in-run exceptions come back as ``status="error"``
    payloads (retrying them would fail identically); only process
    death or hangs surface to the parent as pool failures.
    """
    start = time.perf_counter()
    try:
        if kind == "spec":
            result = execute_run(payload)
        elif kind == "prebuilt":
            result = execute_prebuilt(payload)
        else:
            raise ValueError(f"unknown task kind {kind!r}")
        return {
            "status": "ok",
            "result": result.to_dict(),
            "wall_clock": time.perf_counter() - start,
        }
    except BaseException:
        return {
            "status": "error",
            "error": traceback.format_exc(),
            "wall_clock": time.perf_counter() - start,
        }
