"""Parallel, resumable experiment sweeps.

Every paper artifact is a grid of independent simulations (scheduler x
seed x trace x config).  ``repro.sweep`` executes those grids as
*cells*:

* :class:`~repro.sweep.spec.RunSpec` — a declarative cell with a
  stable run id (hash of its canonical JSON), so the same cell means
  the same simulation on every machine;
* :class:`~repro.sweep.runner.SweepRunner` — a process-pool executor
  with per-run timeouts, bounded retry-with-backoff for crashed or
  hung workers, and a bit-identical in-process serial mode at
  ``max_workers=1``;
* :class:`~repro.sweep.store.ResultStore` — an append-only JSONL store
  whose completed run ids let a killed sweep resume, tolerating the
  truncated final line an interrupted append leaves behind;
* ``shard k/n`` — deterministic partition of a sweep by run-id hash,
  so independent machines (or CI matrix shards) split the work with
  no coordination;
* :mod:`~repro.sweep.cells` / :mod:`~repro.sweep.aggregate` — the
  paper experiments flattened into cells and reduced back into the
  structures :mod:`repro.analysis.experiments` reports.

Quickstart::

    from repro.sweep import ResultStore, SweepRunner, experiment_cells

    cells = experiment_cells("fig9", num_jobs=200)
    runner = SweepRunner(max_workers=4, store=ResultStore("fig9.jsonl"))
    results = runner.run(cells)          # resumes if fig9.jsonl exists

See ``docs/experiments.md`` for the full model.
"""

from repro.sweep.aggregate import load_many, results_by_label, summarize_runs
from repro.sweep.cells import (
    SWEEPABLE_EXPERIMENTS,
    ablation_cells,
    experiment_cells,
    group_size_cells,
    hetero_cells,
    job_type_cells,
    noise_cells,
    replay_cells,
    robustness_cells,
    simulation_cells,
)
from repro.sweep.execute import (
    PrebuiltCell,
    build_scheduler,
    build_workload,
    execute_prebuilt,
    execute_run,
)
from repro.sweep.runner import SweepError, SweepRunner
from repro.sweep.spec import (
    RunResult,
    RunSpec,
    canonical_json,
    in_shard,
    parse_shard,
)
from repro.sweep.store import ResultStore

__all__ = [
    "RunSpec",
    "RunResult",
    "SweepRunner",
    "SweepError",
    "ResultStore",
    "PrebuiltCell",
    "canonical_json",
    "parse_shard",
    "in_shard",
    "build_workload",
    "build_scheduler",
    "execute_run",
    "execute_prebuilt",
    "SWEEPABLE_EXPERIMENTS",
    "experiment_cells",
    "simulation_cells",
    "ablation_cells",
    "group_size_cells",
    "job_type_cells",
    "noise_cells",
    "replay_cells",
    "hetero_cells",
    "robustness_cells",
    "results_by_label",
    "summarize_runs",
    "load_many",
]
