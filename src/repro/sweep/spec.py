"""Declarative run cells and their results.

A sweep is a set of independent *cells* — one simulation each.  A
:class:`RunSpec` describes a cell declaratively (trace, scheduler,
seed, cluster shape, options) so it can be hashed into a stable run
id, shipped to a worker process, and re-executed bit-identically on
any machine.  A :class:`RunResult` pairs the spec with the outcome:
either a serialized :class:`~repro.sim.metrics.SimulationResult`
payload or an error description.

Run ids are the backbone of resumability and sharding: they are the
first 12 hex digits of the SHA-256 of the spec's canonical JSON, so
the same cell always gets the same id, on every machine, in every
process.  ``shard k/n`` selects the cells whose id hashes into
bucket ``k`` — independent machines can partition a sweep with no
coordination beyond agreeing on ``n``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.sim.metrics import SimulationResult

__all__ = ["RunSpec", "RunResult", "canonical_json", "parse_shard", "in_shard"]


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def _as_option_items(value: Union[Mapping, Tuple, None]) -> Tuple:
    """Normalize an options mapping to a sorted tuple of pairs."""
    if value is None:
        return ()
    if isinstance(value, Mapping):
        items = value.items()
    else:
        items = tuple(value)
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class RunSpec:
    """One sweep cell: everything needed to reproduce one simulation.

    Every field is plain JSON-compatible data on purpose — the spec is
    pickled to worker processes, hashed into the run id, and stored
    next to its result, so it must never hold live objects.

    Attributes:
        experiment: Artifact the cell belongs to (e.g. ``"fig9"``);
            part of the run id so different experiments never collide.
        label: Presentation label used by the aggregation step (e.g.
            ``"Muri-S"`` or ``"noise=0.4"``).
        scheduler: Scheduler registry name for
            :func:`~repro.schedulers.registry.make_scheduler`.
        trace_id: Synthetic trace id (``"1"``..``"4"``, primed forms).
        seed: Seed for both trace generation and model assignment.
        num_jobs: Trace size; None means paper scale.
        at_time_zero: Force the all-at-zero (primed) trace variant.
        busiest_interval: When set, restrict the workload to the
            busiest window of this many jobs (the testbed construction).
        models: Optional explicit model pool for
            :func:`~repro.trace.workload.build_jobs`.
        noise_level: When set, profile stage durations through a
            :class:`~repro.profiler.noise.UniformNoise` of this level
            (Fig. 14); the profiler is seeded with ``seed``.
        machines: Cluster machine count.
        gpus_per_machine: GPUs per machine.
        scheduler_options: Extra ``make_scheduler`` keyword arguments,
            stored as a sorted tuple of pairs (a mapping is accepted
            and normalized).
        sim_options: Extra :class:`~repro.sim.simulator.ClusterSimulator`
            keyword arguments, normalized like ``scheduler_options``.
        elastic_fraction: When set, pass the built workload through
            :func:`repro.elastic.attach_scalability` with this
            fraction (seeded with ``seed``), making that share of the
            jobs elastic.  None (the default) leaves the workload
            rigid — and is omitted from :meth:`to_dict`, so every
            pre-elastic run id is unchanged.
        replay_batch_step: When set, execute through
            :func:`repro.replay.replay_trace` with this
            ``batch_step_seconds`` instead of ``simulator.run()``
            (``0.0`` is the bit-identical continuous mode, so it is a
            meaningful value and only None means "not a replay
            cell").  Omitted from :meth:`to_dict` when None, so every
            pre-replay run id is unchanged.
        hetero_types: When set, run on a seeded mixed-generation
            cluster (:func:`repro.hetero.make_hetero_cluster` over
            these names) with the workload pinned/preferred onto the
            same mix via :func:`repro.hetero.pin_jobs`, and with
            landing-speed scaling active.  None (the default) keeps
            the homogeneous cluster — and is omitted from
            :meth:`to_dict`, so every pre-hetero run id is unchanged.
        prefer_fraction: Share of jobs carrying a soft (``prefer``)
            affinity instead of a hard pin; only meaningful with
            ``hetero_types``.  Omitted from :meth:`to_dict` when None.
        placement: Placement-policy override: ``"aware"`` selects the
            Gavel-style
            :class:`~repro.cluster.placement.ThroughputAwarePlacer`;
            None keeps the default descending best-fit.  Omitted from
            :meth:`to_dict` when None.
        trace_path: When set, ingest this Philly CSV file
            (:func:`repro.trace.load_philly_csv`) as the workload
            trace instead of a synthetic ``trace_id`` preset — the
            end-to-end path of the hetero sweep cell.  Omitted from
            :meth:`to_dict` when None; note a path makes the run id
            machine-layout dependent, so such cells never join the
            committed ``"all"`` grid.
    """

    experiment: str
    label: str
    scheduler: str
    trace_id: str
    seed: int
    num_jobs: Optional[int] = None
    at_time_zero: bool = False
    busiest_interval: Optional[int] = None
    models: Optional[Tuple[str, ...]] = None
    noise_level: Optional[float] = None
    machines: int = 8
    gpus_per_machine: int = 8
    scheduler_options: Tuple = ()
    sim_options: Tuple = ()
    elastic_fraction: Optional[float] = None
    replay_batch_step: Optional[float] = None
    hetero_types: Optional[Tuple[str, ...]] = None
    prefer_fraction: Optional[float] = None
    placement: Optional[str] = None
    trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "scheduler_options", _as_option_items(self.scheduler_options)
        )
        object.__setattr__(
            self, "sim_options", _as_option_items(self.sim_options)
        )
        if self.models is not None:
            object.__setattr__(self, "models", tuple(self.models))
        if self.hetero_types is not None:
            object.__setattr__(self, "hetero_types", tuple(self.hetero_types))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (options become objects)."""
        payload: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name in ("scheduler_options", "sim_options"):
                value = dict(value)
            elif (
                spec_field.name in ("models", "hetero_types")
                and value is not None
            ):
                value = list(value)
            elif (
                spec_field.name in (
                    "elastic_fraction", "replay_batch_step",
                    "hetero_types", "prefer_fraction", "placement",
                    "trace_path",
                )
                and value is None
            ):
                # Omitted when unset so every pre-elastic / pre-replay
                # / pre-hetero run id (and therefore every committed
                # baseline) stays stable.
                continue
            payload[spec_field.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in known}
        return cls(**kwargs)

    @property
    def run_id(self) -> str:
        """Stable cell id: 12 hex digits of the spec's SHA-256."""
        digest = hashlib.sha256(
            canonical_json(self.to_dict()).encode("utf-8")
        )
        return digest.hexdigest()[:12]


def parse_shard(shard: Union[str, Tuple[int, int], None]) -> Optional[Tuple[int, int]]:
    """Normalize a shard selector to a 0-based ``(index, count)`` pair.

    Accepts the CLI's 1-based ``"k/n"`` string, an already-normalized
    ``(index, count)`` tuple, or None (no sharding).

    Raises:
        ValueError: On malformed strings or out-of-range indices.
    """
    if shard is None:
        return None
    if isinstance(shard, str):
        try:
            k_text, n_text = shard.split("/", 1)
            k, n = int(k_text), int(n_text)
        except ValueError:
            raise ValueError(
                f"shard must look like 'k/n' (e.g. '1/3'), got {shard!r}"
            ) from None
        index, count = k - 1, n
    else:
        index, count = shard
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard index must be in [1, {max(count, 1)}], got {index + 1}/{count}"
        )
    return index, count


def in_shard(run_id: str, shard: Optional[Tuple[int, int]]) -> bool:
    """Deterministic shard membership by run-id hash.

    Cells are assigned to buckets by ``int(run_id, 16) % count`` —
    every machine computes the same partition from nothing but the
    spec, so shards are disjoint and jointly exhaustive.
    """
    if shard is None:
        return True
    index, count = shard
    return int(run_id, 16) % count == index


@dataclass
class RunResult:
    """The outcome of one cell.

    Attributes:
        run_id: The cell's stable id.
        spec: The cell's spec; None for prebuilt (non-declarative)
            runs submitted via
            :meth:`~repro.sweep.runner.SweepRunner.run_prebuilt`.
        status: ``"ok"`` or ``"error"``.
        result: Serialized :class:`SimulationResult` payload
            (``to_dict`` form) on success, else None.
        error: Failure description on error, else None.
        attempts: Execution attempts consumed (1 = first try worked).
        wall_clock: Wall-clock seconds of the successful (or final)
            attempt, measured inside the worker.
        resumed: True when the result was loaded from a store instead
            of executed in this process.
    """

    run_id: str
    spec: Optional[RunSpec]
    status: str
    result: Optional[Dict] = None
    error: Optional[str] = None
    attempts: int = 1
    wall_clock: float = 0.0
    resumed: bool = field(default=False, compare=False)

    @property
    def ok(self) -> bool:
        """True when the run completed and carries a result payload."""
        return self.status == "ok"

    def simulation_result(self) -> SimulationResult:
        """Deserialize the payload into a :class:`SimulationResult`.

        Raises:
            ValueError: When the run failed (no payload to decode).
        """
        if not self.ok or self.result is None:
            raise ValueError(
                f"run {self.run_id} has no result (status={self.status!r}, "
                f"error={self.error!r})"
            )
        return SimulationResult.from_dict(self.result)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation for the JSONL store."""
        return {
            "run_id": self.run_id,
            "spec": None if self.spec is None else self.spec.to_dict(),
            "status": self.status,
            "result": self.result,
            "error": self.error,
            "attempts": self.attempts,
            "wall_clock": self.wall_clock,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output."""
        spec_payload = payload.get("spec")
        return cls(
            run_id=payload["run_id"],
            spec=None if spec_payload is None else RunSpec.from_dict(spec_payload),
            status=payload["status"],
            result=payload.get("result"),
            error=payload.get("error"),
            attempts=payload.get("attempts", 1),
            wall_clock=payload.get("wall_clock", 0.0),
        )
