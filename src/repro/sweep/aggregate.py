"""Reduce sweep results back into the structures experiments report.

The sweep layer flattens every experiment into independent cells; this
module puts them back together.  :func:`results_by_label` groups a
result set for one experiment's aggregation step, and
:func:`summarize_runs` extracts the headline metrics per run — the
flat form consumed by ``repro sweep``'s terminal table and by
``tools/diff_metrics.py``'s regression gate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.sim.metrics import SimulationResult
from repro.sweep.spec import RunResult

__all__ = ["results_by_label", "summarize_runs", "load_many"]


def results_by_label(
    results: Iterable[RunResult],
    experiment: Optional[str] = None,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Group results as ``{trace_id: {label: SimulationResult}}``.

    Args:
        results: Any mix of run results (failed or spec-less runs are
            skipped).
        experiment: When given, keep only this experiment's cells.
    """
    grouped: Dict[str, Dict[str, SimulationResult]] = {}
    for result in results:
        if not result.ok or result.spec is None:
            continue
        spec = result.spec
        if experiment is not None and spec.experiment != experiment:
            continue
        grouped.setdefault(spec.trace_id, {})[spec.label] = (
            result.simulation_result()
        )
    return grouped


def summarize_runs(results: Iterable[RunResult]) -> List[Dict]:
    """One flat record per run: identity plus headline metrics.

    Each record carries ``run_id``, ``experiment``, ``trace_id``,
    ``label``, ``scheduler``, ``seed``, ``status``, and — for
    completed runs — ``avg_jct``, ``p99_jct``, and ``makespan``.
    Sorted by (experiment, trace_id, label) for stable output.
    """
    records = []
    for result in results:
        spec = result.spec
        record: Dict = {
            "run_id": result.run_id,
            "experiment": spec.experiment if spec else "",
            "trace_id": spec.trace_id if spec else "",
            "label": spec.label if spec else result.run_id,
            "scheduler": spec.scheduler if spec else "",
            "seed": spec.seed if spec else None,
            "status": result.status,
        }
        if result.ok:
            sim = result.simulation_result()
            record["avg_jct"] = sim.avg_jct
            record["p99_jct"] = sim.tail_jct(99.0)
            record["makespan"] = sim.makespan
        records.append(record)
    records.sort(
        key=lambda r: (r["experiment"], r["trace_id"], r["label"])
    )
    return records


def load_many(paths: Iterable) -> List[RunResult]:
    """Load and merge several JSONL stores (later files win per id)."""
    from repro.sweep.store import ResultStore

    by_id: Dict[str, RunResult] = {}
    for path in paths:
        for result in ResultStore(path).load():
            by_id[result.run_id] = result
    return list(by_id.values())
