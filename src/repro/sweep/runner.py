"""The sweep runner: parallel, resumable, fault-tolerant cell execution.

:class:`SweepRunner` executes independent cells on a
:class:`concurrent.futures.ProcessPoolExecutor` with:

* **per-run timeouts** — a cell that exceeds its budget has its worker
  terminated and the pool rebuilt, so one hung simulation cannot wedge
  the sweep;
* **bounded retry with backoff** — crashed or timed-out cells are
  retried up to ``retries`` times with exponential backoff; cells that
  raise *inside* the simulation are recorded as errors immediately
  (a deterministic exception would fail identically on retry);
* **graceful serial degradation** — ``max_workers=1`` executes cells
  in-process in submission order via the same
  :func:`~repro.sweep.execute.execute_run`, which is exactly the
  pre-sweep serial code path (no pool, no pickling);
* **resume** — with a :class:`~repro.sweep.store.ResultStore`
  attached, completed run ids are loaded and skipped, so a killed
  sweep restarts where it left off;
* **sharding** — a ``(index, count)`` shard executes only the cells
  whose run-id hash lands in its bucket (see
  :func:`~repro.sweep.spec.in_shard`), letting independent machines
  partition a sweep with no coordination.

Every run emits tracer events and counters under the ``sweep.*``
namespace when a :class:`~repro.observe.Tracer` is attached.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.observe.events import EventCategory
from repro.observe.tracer import Tracer, maybe_span
from repro.sweep.execute import (
    PrebuiltCell,
    _worker_entry,
    execute_prebuilt,
    execute_run,
)
from repro.sweep.spec import RunResult, RunSpec, in_shard, parse_shard
from repro.sweep.store import ResultStore

__all__ = ["SweepRunner", "SweepError"]

#: Seconds between deadline checks while waiting on worker futures.
_POLL_INTERVAL = 0.25

#: Ceiling on one retry-backoff sleep, seconds.
_MAX_BACKOFF = 30.0


class SweepError(RuntimeError):
    """A sweep could not produce the requested results."""


@dataclass
class _Task:
    """Internal dispatch unit shared by declarative and prebuilt runs."""

    run_id: str
    kind: str  # "spec" | "prebuilt"
    payload: Any
    spec: Optional[RunSpec]
    attempts: int = 0


class SweepRunner:
    """Executes sweep cells concurrently and deterministically.

    Args:
        max_workers: Process-pool size; 1 (the default) runs cells
            serially in-process with no pool at all.
        timeout: Per-run wall-clock budget in seconds; None disables
            enforcement.  Only enforced in pooled mode — an in-process
            run cannot be interrupted.
        retries: Extra attempts for cells whose *worker* crashed or
            timed out (deterministic in-run exceptions are not
            retried).
        backoff: Base of the exponential retry delay:
            ``backoff * 2**(attempt-1)`` seconds, capped at 30.
        store: Optional :class:`ResultStore`; every finished cell is
            appended, and (with ``resume=True``) previously completed
            cells are skipped.
        resume: When False an attached store is cleared at the start
            of :meth:`run` instead of consulted.
        shard: Optional shard selector — ``"k/n"`` (1-based) or a
            0-based ``(index, count)`` tuple.
        tracer: Optional tracer; runs are recorded as ``sweep.*``
            events and counters.
        mp_context: Optional :mod:`multiprocessing` context for the
            pool (tests pin ``fork`` so monkeypatched modules reach
            the workers).
    """

    def __init__(
        self,
        max_workers: int = 1,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.5,
        store: Optional[ResultStore] = None,
        resume: bool = True,
        shard: Union[str, Tuple[int, int], None] = None,
        tracer: Optional[Tracer] = None,
        mp_context=None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be > 0 when set")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        self.max_workers = max_workers
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.store = store
        self.resume = resume
        self.shard = parse_shard(shard)
        self.tracer = tracer
        self.mp_context = mp_context

    # -- public entry points -------------------------------------------------

    def run(self, specs: Sequence[RunSpec]) -> Dict[str, RunResult]:
        """Execute declarative cells; returns results keyed by run id.

        Cells outside this runner's shard are silently skipped (their
        ids simply do not appear in the returned mapping).  Completed
        cells found in the store are returned with ``resumed=True``
        without re-executing.  The mapping preserves the submission
        order of the executed cells.

        Raises:
            ValueError: When two cells hash to the same run id (the
                sweep would silently lose one of them).
        """
        ids = [spec.run_id for spec in specs]
        if len(set(ids)) != len(ids):
            seen, duplicates = set(), set()
            for run_id in ids:
                (duplicates if run_id in seen else seen).add(run_id)
            raise ValueError(
                f"duplicate run ids in sweep: {sorted(duplicates)} — "
                "cells must be distinct"
            )

        selected = [
            spec for spec in specs if in_shard(spec.run_id, self.shard)
        ]
        self._count("sweep.runs.selected", len(selected))
        self._count("sweep.runs.sharded_out", len(specs) - len(selected))

        out: Dict[str, RunResult] = {}
        todo: List[_Task] = []
        completed = self._stored_results() if self.resume else {}
        if self.store is not None and not self.resume:
            self.store.clear()
        for spec in selected:
            stored = completed.get(spec.run_id)
            if stored is not None and stored.ok:
                stored.resumed = True
                out[spec.run_id] = stored
                self._count("sweep.runs.resumed")
                self._emit("sweep.run.resumed", run_id=spec.run_id,
                           label=spec.label)
            else:
                todo.append(
                    _Task(spec.run_id, "spec", spec, spec)
                )

        executed = self._execute(todo)
        out.update(executed)
        # Preserve submission order for the executed cells.
        ordered = {
            spec.run_id: out[spec.run_id]
            for spec in selected if spec.run_id in out
        }
        return ordered

    def run_prebuilt(
        self, cells: Sequence[PrebuiltCell]
    ) -> Dict[str, RunResult]:
        """Execute prebuilt cells; returns results keyed by label.

        Prebuilt cells carry live objects, so they are neither
        shardable nor resumable: the shard selector and the store are
        ignored, and run ids are positional (``prebuilt-<i>-<label>``).
        """
        tasks = [
            _Task(f"prebuilt-{index:04d}-{cell.label}", "prebuilt", cell, None)
            for index, cell in enumerate(cells)
        ]
        labels = [cell.label for cell in cells]
        if len(set(labels)) != len(labels):
            raise ValueError("prebuilt cell labels must be unique")
        executed = self._execute(tasks, persist=False)
        return {
            cell.label: executed[task.run_id]
            for cell, task in zip(cells, tasks)
        }

    # -- execution machinery -------------------------------------------------

    def _stored_results(self) -> Dict[str, RunResult]:
        if self.store is None:
            return {}
        return {result.run_id: result for result in self.store.load()}

    def _execute(
        self, tasks: List[_Task], persist: bool = True
    ) -> Dict[str, RunResult]:
        if not tasks:
            return {}
        self._persist = persist
        with maybe_span(
            self.tracer, "sweep.execute", runs=len(tasks),
            workers=self.max_workers,
        ):
            if self.max_workers == 1:
                return self._execute_serial(tasks)
            return self._execute_pooled(tasks)

    def _execute_serial(self, tasks: List[_Task]) -> Dict[str, RunResult]:
        """In-process execution, submission order — the serial path."""
        results: Dict[str, RunResult] = {}
        for task in tasks:
            start = time.perf_counter()
            with maybe_span(self.tracer, "sweep.run", run_id=task.run_id):
                try:
                    if task.kind == "spec":
                        sim = execute_run(task.payload)
                    else:
                        sim = execute_prebuilt(task.payload)
                    results[task.run_id] = RunResult(
                        run_id=task.run_id,
                        spec=task.spec,
                        status="ok",
                        result=sim.to_dict(),
                        attempts=1,
                        wall_clock=time.perf_counter() - start,
                    )
                    self._record_done(results[task.run_id])
                except Exception:
                    results[task.run_id] = RunResult(
                        run_id=task.run_id,
                        spec=task.spec,
                        status="error",
                        error=traceback.format_exc(),
                        attempts=1,
                        wall_clock=time.perf_counter() - start,
                    )
                    self._record_done(results[task.run_id])
        return results

    def _execute_pooled(self, tasks: List[_Task]) -> Dict[str, RunResult]:
        """Process-pool execution with timeouts, retries, and rebuilds."""
        results: Dict[str, RunResult] = {}
        pending = deque(tasks)
        executor = self._new_pool()
        inflight: Dict[Any, Tuple[_Task, Optional[float]]] = {}
        try:
            while pending or inflight:
                while pending and len(inflight) < self.max_workers:
                    task = pending.popleft()
                    task.attempts += 1
                    future = executor.submit(
                        _worker_entry, task.kind, task.payload
                    )
                    deadline = (
                        time.monotonic() + self.timeout
                        if self.timeout is not None else None
                    )
                    inflight[future] = (task, deadline)
                    self._emit(
                        "sweep.run.submitted", run_id=task.run_id,
                        attempt=task.attempts,
                    )

                done, _ = wait(
                    list(inflight), timeout=_POLL_INTERVAL,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    task, _deadline = inflight.pop(future)
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        broken = True
                        self._requeue_or_fail(
                            task, "worker process died", pending, results
                        )
                        continue
                    results[task.run_id] = RunResult(
                        run_id=task.run_id,
                        spec=task.spec,
                        status=payload["status"],
                        result=payload.get("result"),
                        error=payload.get("error"),
                        attempts=task.attempts,
                        wall_clock=payload["wall_clock"],
                    )
                    self._record_done(results[task.run_id])

                if broken:
                    # The pool is unusable: recover every in-flight
                    # task (their work is lost, not their fault — no
                    # attempt is charged) and start a fresh pool.
                    for future, (task, _deadline) in inflight.items():
                        task.attempts -= 1
                        pending.appendleft(task)
                    inflight.clear()
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = self._new_pool()
                    continue

                if self.timeout is not None and inflight:
                    now = time.monotonic()
                    expired = [
                        (future, task)
                        for future, (task, deadline) in inflight.items()
                        if deadline is not None and now > deadline
                    ]
                    if expired:
                        executor = self._handle_timeouts(
                            executor, expired, inflight, pending, results
                        )
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return results

    def _handle_timeouts(self, executor, expired, inflight, pending, results):
        """Kill the pool to unstick hung workers; requeue the innocents."""
        for future, task in expired:
            inflight.pop(future, None)
            self._count("sweep.runs.timeout")
            self._requeue_or_fail(
                task,
                f"timed out after {self.timeout:.1f}s",
                pending,
                results,
            )
        # A pool cannot terminate one worker, so hung runs take the
        # whole pool down; unexpired in-flight tasks are requeued
        # without being charged an attempt.
        for future, (task, _deadline) in inflight.items():
            task.attempts -= 1
            pending.appendleft(task)
        inflight.clear()
        for process in getattr(executor, "_processes", {}).values():
            process.terminate()
        executor.shutdown(wait=False, cancel_futures=True)
        return self._new_pool()

    def _requeue_or_fail(self, task, reason, pending, results) -> None:
        if task.attempts <= self.retries:
            self._count("sweep.runs.retried")
            self._emit(
                "sweep.run.retry", run_id=task.run_id,
                attempt=task.attempts, reason=reason,
            )
            delay = min(
                self.backoff * (2 ** (task.attempts - 1)), _MAX_BACKOFF
            )
            if delay > 0:
                time.sleep(delay)
            pending.append(task)
        else:
            results[task.run_id] = RunResult(
                run_id=task.run_id,
                spec=task.spec,
                status="error",
                error=f"{reason} (after {task.attempts} attempt(s))",
                attempts=task.attempts,
            )
            self._record_done(results[task.run_id])

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.max_workers, mp_context=self.mp_context
        )

    # -- observability -------------------------------------------------------

    def _emit(self, name: str, **args) -> None:
        if self.tracer is not None:
            self.tracer.emit(EventCategory.SIM, name, **args)

    def _count(self, name: str, amount: int = 1) -> None:
        if self.tracer is not None and amount:
            self.tracer.count(name, amount)

    def _record_done(self, result: RunResult) -> None:
        """Persist and observe one finished run, the moment it finishes.

        Appending here — not after the whole sweep — is what makes a
        killed sweep resumable: every completed cell is already on
        disk when the process dies.
        """
        if getattr(self, "_persist", True) and self.store is not None:
            self.store.append(result)
        if result.ok:
            self._count("sweep.runs.completed")
        else:
            self._count("sweep.runs.failed")
        self._emit(
            "sweep.run.done",
            run_id=result.run_id,
            status=result.status,
            attempts=result.attempts,
            wall_clock=result.wall_clock,
        )
