"""Cell builders: each paper experiment as a flat list of RunSpecs.

These mirror the loops inside :mod:`repro.analysis.experiments` — one
:class:`~repro.sweep.spec.RunSpec` per (trace, scheduler, seed, config)
combination, with identical seeds and construction — so a sweep over
the cells reproduces the serial experiment exactly, run by run.  The
experiment functions aggregate over these same cells; the ``repro
sweep`` CLI and the CI shards execute them directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.models.zoo import models_for_bottlenecks
from repro.sweep.spec import RunSpec

__all__ = [
    "SWEEPABLE_EXPERIMENTS",
    "simulation_cells",
    "ablation_cells",
    "group_size_cells",
    "job_type_cells",
    "noise_cells",
    "robustness_cells",
    "elastic_cells",
    "replay_cells",
    "hetero_cells",
    "experiment_cells",
]

#: Default simulated trace set of Figs. 9/10.
_SIM_TRACES = ("1", "2", "3", "4", "1'", "2'", "3'", "4'")

#: Default trace set of the ablation-style figures (11-12).
_ABLATION_TRACES = ("1", "2", "3", "4")


def simulation_cells(
    duration_known: bool,
    trace_ids: Sequence[str] = _SIM_TRACES,
    num_jobs: Optional[int] = 400,
    seed: int = 0,
) -> List[RunSpec]:
    """Cells of Figs. 9 (known durations) / 10 (unknown durations)."""
    experiment = "fig9" if duration_known else "fig10"
    if duration_known:
        schedulers = {"SRTF": "srtf", "SRSF": "srsf", "Muri-S": "muri-s"}
    else:
        schedulers = {
            "Tiresias": "tiresias",
            "AntMan": "antman",
            "Themis": "themis",
            "Muri-L": "muri-l",
        }
    cells = []
    for trace_id in trace_ids:
        for label, scheduler in schedulers.items():
            cells.append(RunSpec(
                experiment=experiment,
                label=label,
                scheduler=scheduler,
                trace_id=trace_id,
                seed=seed + int(trace_id[0]),
                num_jobs=num_jobs,
            ))
    return cells


def ablation_cells(
    trace_ids: Sequence[str] = _ABLATION_TRACES,
    num_jobs: Optional[int] = 400,
    seed: int = 0,
) -> List[RunSpec]:
    """Cells of Fig. 11: Muri-L vs worst-ordering and greedy-matcher."""
    variants: Dict[str, Dict[str, str]] = {
        "Muri-L": {},
        "Muri-L w/ worst ordering": {"ordering": "worst"},
        "Muri-L w/o Blossom": {"matcher": "greedy"},
    }
    cells = []
    for trace_id in trace_ids:
        for label, options in variants.items():
            cells.append(RunSpec(
                experiment="fig11",
                label=label,
                scheduler="muri-l",
                trace_id=trace_id,
                seed=seed + int(trace_id[0]),
                num_jobs=num_jobs,
                scheduler_options=options,
            ))
    return cells


def group_size_cells(
    trace_ids: Sequence[str] = _ABLATION_TRACES,
    num_jobs: Optional[int] = 400,
    seed: int = 0,
) -> List[RunSpec]:
    """Cells of Fig. 12: 2/3/4-job Muri-L groups vs AntMan, at t=0."""
    cells = []
    for trace_id in trace_ids:
        run_seed = seed + int(trace_id[0])
        cells.append(RunSpec(
            experiment="fig12",
            label="AntMan",
            scheduler="antman",
            trace_id=trace_id,
            seed=run_seed,
            num_jobs=num_jobs,
            at_time_zero=True,
        ))
        for size in (2, 3, 4):
            cells.append(RunSpec(
                experiment="fig12",
                label=f"Muri-L-{size}",
                scheduler="muri-l",
                trace_id=trace_id,
                seed=run_seed,
                num_jobs=num_jobs,
                at_time_zero=True,
                scheduler_options={"max_group_size": size},
            ))
    return cells


def job_type_cells(
    num_types_values: Sequence[int] = (1, 2, 3, 4),
    num_jobs: Optional[int] = 400,
    seed: int = 0,
    trace_id: str = "1",
) -> List[RunSpec]:
    """Cells of Fig. 13: sweep the number of bottleneck types."""
    cells = []
    for num_types in num_types_values:
        models = tuple(models_for_bottlenecks(num_types=num_types))
        for label, scheduler in (
            ("SRTF", "srtf"), ("Muri-S", "muri-s"),
            ("Tiresias", "tiresias"), ("Muri-L", "muri-l"),
        ):
            cells.append(RunSpec(
                experiment="fig13",
                label=f"{label}@{num_types}",
                scheduler=scheduler,
                trace_id=trace_id,
                seed=seed,
                num_jobs=num_jobs,
                models=models,
            ))
    return cells


def noise_cells(
    noise_levels: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    num_jobs: Optional[int] = 400,
    seed: int = 0,
    trace_id: str = "1",
) -> List[RunSpec]:
    """Cells of Fig. 14: Muri-L under profiling noise levels."""
    return [
        RunSpec(
            experiment="fig14",
            label=f"noise={level:g}",
            scheduler="muri-l",
            trace_id=trace_id,
            seed=seed,
            num_jobs=num_jobs,
            noise_level=level,
        )
        for level in noise_levels
    ]


def robustness_cells(
    seeds: Sequence[int] = tuple(range(10)),
    num_jobs: Optional[int] = 250,
    trace_id: str = "1",
) -> List[RunSpec]:
    """Cells of the multi-seed robustness sweep (Muri-L vs Tiresias)."""
    cells = []
    for seed in seeds:
        for label, scheduler in (("Tiresias", "tiresias"),
                                 ("Muri-L", "muri-l")):
            cells.append(RunSpec(
                experiment="robustness",
                label=f"{label}@{seed}",
                scheduler=scheduler,
                trace_id=trace_id,
                seed=seed,
                num_jobs=num_jobs,
            ))
    return cells


def elastic_cells(
    trace_ids: Sequence[str] = ("1", "2"),
    num_jobs: Optional[int] = 400,
    seed: int = 0,
    elastic_fraction: float = 0.5,
) -> List[RunSpec]:
    """Cells of the elastic arm: Elastic-Muri vs fixed Muri-S.

    Per trace, three cells on the *same* saturated scalable workload
    (the same seed elects the same jobs and fits the same Amdahl
    curves):

    * ``Muri-S (rigid)`` — the fixed-allocation baseline; scalability
      profiles are attached but never exercised, so this equals plain
      Muri-S on the rigid workload (the degeneracy guarantee).
    * ``Elastic-Muri-S`` — renegotiating every tick.
    * ``Elastic-Muri-S k=4`` — renegotiating every 4th tick, the
      cheap-renegotiation ablation.

    Plus a light-load pair (at most 160 jobs) per trace, where spare
    capacity exists for scale-out: the regime in which goodput-adaptive
    reallocation improves *average JCT*, not just makespan.
    """
    cells = []
    for trace_id in trace_ids:
        run_seed = seed + int(trace_id[0])
        common = dict(
            experiment="elastic",
            trace_id=trace_id,
            seed=run_seed,
            elastic_fraction=elastic_fraction,
        )
        cells.append(RunSpec(
            label="Muri-S (rigid)", scheduler="muri-s",
            num_jobs=num_jobs, **common
        ))
        cells.append(RunSpec(
            label="Elastic-Muri-S", scheduler="elastic-muri",
            num_jobs=num_jobs, **common
        ))
        cells.append(RunSpec(
            label="Elastic-Muri-S k=4",
            scheduler="elastic-muri",
            scheduler_options={"renegotiation_interval": 4},
            num_jobs=num_jobs, **common,
        ))
        light_jobs = min(num_jobs, 160) if num_jobs else 160
        cells.append(RunSpec(
            label="Muri-S (rigid, light)", scheduler="muri-s",
            num_jobs=light_jobs, **common
        ))
        cells.append(RunSpec(
            label="Elastic-Muri-S (light)", scheduler="elastic-muri",
            num_jobs=light_jobs, **common
        ))
    return cells


def replay_cells(
    num_jobs: Optional[int] = 2_000,
    seed: int = 0,
    batch_steps: Sequence[float] = (0.0, 300.0, 1800.0),
) -> List[RunSpec]:
    """Cells of the replay arm: admission-round length vs JCT.

    Per scheduler, one cell per ``batch_step_seconds``: ``0.0`` is the
    continuous mode (bit-identical to ``simulator.run()`` — the sweep
    carries its own differential anchor), the others quantize
    admission to rounds, trading scheduler invocations for queueing
    delay.  The workload is the replay arm's constant-load synthetic
    trace (``trace_id="replay"``), not a Philly preset.
    """
    cells = []
    for label, scheduler in (("FIFO", "fifo"), ("Muri-S", "muri-s")):
        for batch_step in batch_steps:
            cells.append(RunSpec(
                experiment="replay",
                label=f"{label} B={batch_step:g}s",
                scheduler=scheduler,
                trace_id="replay",
                seed=seed,
                num_jobs=num_jobs,
                machines=32,
                gpus_per_machine=8,
                replay_batch_step=batch_step,
            ))
    return cells


def hetero_cells(
    num_jobs: Optional[int] = 400,
    seed: int = 0,
    type_names: Sequence[str] = ("k80", "a100"),
    prefer_fraction: float = 0.6,
    philly_csv: Optional[str] = None,
) -> List[RunSpec]:
    """Cells of the heterogeneous arm: placement policy vs makespan.

    One mixed-generation cluster and one pinned/preferred workload,
    three scheduling arms over it: FIFO, Muri-S with the default
    descending placer, and Muri-S with the Gavel-style
    :class:`~repro.cluster.placement.ThroughputAwarePlacer` — the grid
    behind ``BENCH_hetero.json``'s improvement claim, as resumable
    sweep cells.

    With ``philly_csv`` the cells replay that ingested CSV end to end
    (adapter skip accounting included) instead of the synthetic
    preset; such cells carry a filesystem path in their run id, which
    is why ``hetero`` never joins the committed ``"all"`` grid.
    """
    common = dict(
        experiment="hetero",
        trace_id="1",
        seed=seed,
        num_jobs=num_jobs,
        hetero_types=tuple(type_names),
        prefer_fraction=prefer_fraction,
        trace_path=philly_csv,
    )
    return [
        RunSpec(label="FIFO", scheduler="fifo", **common),
        RunSpec(label="Muri-S", scheduler="muri-s", **common),
        RunSpec(
            label="Muri-S + aware", scheduler="muri-s",
            placement="aware", **common,
        ),
    ]


#: Artifact names ``experiment_cells`` accepts (``"all"`` is their union,
#: except ``"replay"`` and ``"hetero"`` — see ``experiment_cells``).
SWEEPABLE_EXPERIMENTS = (
    "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "robustness",
    "elastic", "replay", "hetero",
)


def experiment_cells(
    artifact: str,
    num_jobs: Optional[int] = 400,
    seed: int = 0,
    philly_csv: Optional[str] = None,
) -> List[RunSpec]:
    """Cells for one sweepable artifact, or ``"all"`` for their union.

    The robustness artifact ignores ``seed`` (it *is* a seed sweep)
    and caps its per-run size at 250 jobs, matching the benchmark.
    ``philly_csv`` applies to the ``hetero`` artifact only: it routes
    the cells through the CSV ingestion adapter instead of the
    synthetic preset.

    Raises:
        ValueError: For unknown artifact names.
    """
    builders = {
        "fig9": lambda: simulation_cells(True, num_jobs=num_jobs, seed=seed),
        "fig10": lambda: simulation_cells(False, num_jobs=num_jobs, seed=seed),
        "fig11": lambda: ablation_cells(num_jobs=num_jobs, seed=seed),
        "fig12": lambda: group_size_cells(num_jobs=num_jobs, seed=seed),
        "fig13": lambda: job_type_cells(num_jobs=num_jobs, seed=seed),
        "fig14": lambda: noise_cells(num_jobs=num_jobs, seed=seed),
        "robustness": lambda: robustness_cells(
            num_jobs=min(num_jobs, 250) if num_jobs else 250
        ),
        "elastic": lambda: elastic_cells(num_jobs=num_jobs, seed=seed),
        "replay": lambda: replay_cells(num_jobs=num_jobs, seed=seed),
        "hetero": lambda: hetero_cells(
            num_jobs=num_jobs, seed=seed, philly_csv=philly_csv
        ),
    }
    if artifact == "all":
        # "replay" and "hetero" are opt-in: their cells are not paper
        # artifacts, and growing the "all" grid would shift the
        # committed sweep baselines the metrics gate diffs against
        # ("hetero" may also carry a machine-local CSV path).
        cells = []
        for name in SWEEPABLE_EXPERIMENTS:
            if name in ("replay", "hetero"):
                continue
            cells.extend(builders[name]())
        return cells
    if artifact not in builders:
        raise ValueError(
            f"unknown sweep artifact {artifact!r}; expected one of "
            f"{SWEEPABLE_EXPERIMENTS + ('all',)}"
        )
    return builders[artifact]()
