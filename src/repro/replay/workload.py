"""Seeded synthetic traces sized for production-scale replay.

The paper's trace presets shape realistic burstiness and lognormal
durations, but their long job tails make 100k-job runs dominated by a
handful of multi-day stragglers rather than by event throughput.
:func:`synthetic_trace` instead targets the *replay harness itself*:
short uniform durations and an arrival window that grows with the job
count (``jobs_per_day`` fixed), so offered load — and therefore the
number of concurrently running groups each simulator step scans — is
constant at any size.  Replay wall time then scales linearly in jobs,
which is what makes the 100k-job bench and CI acceptance runs
tractable.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from repro.trace.records import Trace, TraceRecord

__all__ = ["synthetic_trace"]

#: Arrival density: a 100k-job trace spans 20 simulated days.
_SECONDS_PER_DAY = 86_400.0


def synthetic_trace(
    num_jobs: int,
    seed: int = 0,
    jobs_per_day: float = 5_000.0,
    duration_range: Tuple[float, float] = (60.0, 600.0),
    gpu_choices: Sequence[int] = (1, 1, 1, 2, 2, 4, 8),
    name: Optional[str] = None,
) -> Trace:
    """A seeded constant-load trace for replay benchmarks.

    Args:
        num_jobs: Number of records.
        seed: RNG seed; the trace is fully determined by
            ``(num_jobs, seed)`` and the shape arguments.
        jobs_per_day: Arrival density; the window is
            ``num_jobs / jobs_per_day`` days.
        duration_range: Uniform job-duration bounds in seconds.
        gpu_choices: GPU counts drawn uniformly (repeats weight small
            jobs, as the Philly mix does).
        name: Trace label; defaults to ``replay-<num_jobs>``.

    Returns:
        Records sorted by ``(submit_time, job_id)``, ready for
        :func:`~repro.trace.build_jobs`.

    Raises:
        ValueError: On a non-positive size, density, or duration.
    """
    if num_jobs < 1:
        raise ValueError("num_jobs must be >= 1")
    if jobs_per_day <= 0:
        raise ValueError("jobs_per_day must be > 0")
    low, high = duration_range
    if low <= 0 or high < low:
        raise ValueError("duration_range must be 0 < low <= high")
    window = num_jobs / jobs_per_day * _SECONDS_PER_DAY
    rng = random.Random(seed)
    choices = list(gpu_choices)
    records = [
        TraceRecord(
            job_id=index,
            submit_time=round(rng.uniform(0.0, window), 1),
            duration=round(rng.uniform(low, high), 1),
            num_gpus=rng.choice(choices),
        )
        for index in range(num_jobs)
    ]
    records.sort(key=lambda record: (record.submit_time, record.job_id))
    records = [
        TraceRecord(
            job_id=index,
            submit_time=record.submit_time,
            duration=record.duration,
            num_gpus=record.num_gpus,
        )
        for index, record in enumerate(records)
    ]
    return Trace(
        name=name or f"replay-{num_jobs}", records=tuple(records)
    )
