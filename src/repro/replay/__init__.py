"""Batch event-driven trace replay (see ``docs/replay.md``).

A Firmament-style harness that drains a time-ordered arrival queue
into the PR-5 online simulator lifecycle in rounds of
``batch_step_seconds``, so 100k+-job multi-day traces replay through
one uniform event loop across every scheduler arm.  At
``batch_step_seconds == 0`` the harness is bit-identical to
``ClusterSimulator.run()``.
"""

from repro.replay.harness import ReplayStats, replay_trace
from repro.replay.workload import synthetic_trace

__all__ = ["ReplayStats", "replay_trace", "synthetic_trace"]
