"""Firmament-style batch event-driven trace replay.

Large-trace comparisons are only fair when every scheduler arm sees
*identical event semantics* — the Firmament replay harness
(``run_with_events.py``) establishes the shape: arrivals drain from a
time-ordered queue into the simulator in batch rounds of
``batch_step_seconds``, with a safety valve on the round count.
:func:`replay_trace` wraps the PR-5 ``begin``/``inject``/``step``/
``finalize`` simulator lifecycle the same way, so Muri, elastic-Muri,
and every baseline replay a 100k+-job multi-day trace through one
uniform event loop.

Semantics:

* ``batch_step_seconds == 0`` — continuous admission: each arrival is
  injected before the simulator clock reaches its submit time, firing
  exactly then.  This path is **bit-identical** to the batch
  ``ClusterSimulator.run()`` over the same specs (the replay
  differential test pins it).
* ``batch_step_seconds > 0`` — batch admission: an arrival is
  withheld until the simulator clock crosses the first multiple of
  ``batch_step_seconds`` at or after its submit time, so submissions
  inside one round become visible together.  An *idle* simulator
  fast-forwards instead of spinning: the next round is released
  immediately and admission resumes at true submit times.

Progress is observable through ``replay.*`` tracer events
(``replay.start``, ``replay.round``, ``replay.end``) on the
simulator's tracer, and fault storms ride on the simulator's own
:class:`~repro.sim.faults.FaultInjector` — the harness adds no
separate failure model.
"""

from __future__ import annotations

import heapq
import math
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.jobs.job import JobSpec
from repro.observe.events import EventCategory
from repro.sim.metrics import SimulationResult, percentile
from repro.sim.simulator import ClusterSimulator, SimulationError

__all__ = ["ReplayStats", "replay_trace"]

#: Same tolerance the simulator uses for event-time comparisons.
_EPS = 1e-9


@dataclass
class ReplayStats:
    """Observability summary of one :func:`replay_trace` run.

    Attributes:
        rounds: Harness loop iterations executed.
        injected_jobs: Specs admitted into the simulator.
        finished_jobs: Jobs that completed by finalization.
        sim_steps: Simulator steps driven.
        wall_clock: Harness wall-clock seconds, admission included.
        step_seconds_p50: Median wall-clock latency of one simulator
            step.
        step_seconds_p99: 99th-percentile step latency.
    """

    rounds: int = 0
    injected_jobs: int = 0
    finished_jobs: int = 0
    sim_steps: int = 0
    wall_clock: float = 0.0
    step_seconds_p50: float = 0.0
    step_seconds_p99: float = 0.0
    _step_samples: List[float] = field(default_factory=list, repr=False)

    def finalize_step_stats(self) -> None:
        """Fold the collected step samples into the p50/p99 fields.

        Degenerate sample sets never raise: a replay whose rounds all
        fast-forwarded (pure admission, no simulator step) has no
        samples and keeps the 0.0 defaults, and a single sample is
        both its own median and its own tail.
        """
        if not self._step_samples:
            self.step_seconds_p50 = 0.0
            self.step_seconds_p99 = 0.0
            return
        if len(self._step_samples) == 1:
            only = self._step_samples[0]
            self.step_seconds_p50 = only
            self.step_seconds_p99 = only
            return
        samples = sorted(self._step_samples)
        self.step_seconds_p50 = percentile(samples, 50, presorted=True)
        self.step_seconds_p99 = percentile(samples, 99, presorted=True)

    def to_dict(self) -> Dict[str, float]:
        """JSON-friendly summary (CLI and bench suite)."""
        return {
            "rounds": self.rounds,
            "injected_jobs": self.injected_jobs,
            "finished_jobs": self.finished_jobs,
            "sim_steps": self.sim_steps,
            "wall_clock": self.wall_clock,
            "step_seconds_p50": self.step_seconds_p50,
            "step_seconds_p99": self.step_seconds_p99,
        }


def _round_boundary(submit_time: float, batch_step_seconds: float) -> float:
    """First batch-round boundary at or after one submit time."""
    return math.ceil(submit_time / batch_step_seconds) * batch_step_seconds


def replay_trace(
    simulator: ClusterSimulator,
    specs: Sequence[JobSpec],
    trace_name: str = "replay",
    batch_step_seconds: float = 300.0,
    max_rounds: Optional[int] = None,
) -> Tuple[SimulationResult, ReplayStats]:
    """Replay a workload through the batch event-driven harness.

    Args:
        simulator: A fresh :class:`ClusterSimulator`; its scheduler,
            cluster, tracer, and fault injector all apply unchanged.
        specs: The workload; admission order is
            ``(submit_time, input index)``, matching the batch path.
        trace_name: Label for the :class:`SimulationResult`.
        batch_step_seconds: Admission round length; 0 for continuous
            (bit-identical to ``run()``) admission.
        max_rounds: Firmament-style safety valve on harness loop
            iterations; None derives ``500 * len(specs) + 100_000``
            (the simulator's own step-budget formula).

    Returns:
        ``(result, stats)``.

    Raises:
        ValueError: On negative ``batch_step_seconds`` or empty specs.
        SimulationError: When the round valve or the simulator's step
            budget trips.
    """
    if batch_step_seconds < 0:
        raise ValueError("batch_step_seconds must be >= 0")
    if not specs:
        raise ValueError("cannot replay an empty workload")
    if max_rounds is None:
        max_rounds = 500 * len(specs) + 100_000

    started = _time.monotonic()
    arrivals: List[Tuple[float, int, JobSpec]] = [
        (spec.submit_time, index, spec) for index, spec in enumerate(specs)
    ]
    heapq.heapify(arrivals)

    stats = ReplayStats()
    state = simulator.begin([], trace_name, allow_empty=True)
    tracer = simulator.tracer
    tracing = tracer is not None and tracer.enabled
    if tracing:
        tracer.emit(
            EventCategory.SIM,
            "replay.start",
            state.now,
            trace=trace_name,
            jobs=len(specs),
            batch_step_seconds=batch_step_seconds,
        )

    while arrivals or state.unfinished:
        if stats.rounds >= max_rounds:
            raise SimulationError(
                f"replay round valve tripped after {stats.rounds} rounds "
                f"with {state.unfinished} jobs unfinished"
            )
        stats.rounds += 1
        injected = 0
        if batch_step_seconds == 0:
            # Continuous admission: the event queue must always hold
            # the next arrival before a step, because a step advances
            # to whatever horizon its own reschedule produces — which
            # can overshoot an arrival that is not queued yet.  The
            # arrival still fires exactly at its submit time (the
            # clock has not reached it), so this is bit-identical to
            # seeding every arrival up front as ``run()`` does.
            if arrivals:
                first_submit = arrivals[0][0]
                while arrivals and arrivals[0][0] <= first_submit + _EPS:
                    _, _, spec = heapq.heappop(arrivals)
                    simulator.inject(state, spec)
                    injected += 1
        else:
            # Batch admission: release arrivals whose round boundary
            # the clock has crossed; an idle simulator fast-forwards
            # by releasing the next round immediately.
            while arrivals and (
                _round_boundary(arrivals[0][0], batch_step_seconds)
                <= state.now + _EPS
            ):
                _, _, spec = heapq.heappop(arrivals)
                simulator.inject(state, spec)
                injected += 1
            if (
                arrivals
                and injected == 0
                and simulator.next_event_time(state) is None
            ):
                release_until = _round_boundary(
                    arrivals[0][0], batch_step_seconds
                )
                while arrivals and arrivals[0][0] <= release_until + _EPS:
                    _, _, spec = heapq.heappop(arrivals)
                    simulator.inject(state, spec)
                    injected += 1
        stats.injected_jobs += injected
        if tracing and injected:
            tracer.emit(
                EventCategory.SIM,
                "replay.round",
                state.now,
                round=stats.rounds,
                injected=injected,
                remaining=len(arrivals),
                unfinished=state.unfinished,
            )

        if state.unfinished or simulator.next_event_time(state) is not None:
            step_started = _time.monotonic()
            simulator.step(state)
            stats._step_samples.append(_time.monotonic() - step_started)
            stats.sim_steps += 1

    result = simulator.finalize(state)
    stats.finished_jobs = len(result.jcts)
    stats.wall_clock = _time.monotonic() - started
    stats.finalize_step_stats()
    if tracing:
        tracer.emit(
            EventCategory.SIM,
            "replay.end",
            state.now,
            rounds=stats.rounds,
            injected=stats.injected_jobs,
            finished=stats.finished_jobs,
            steps=stats.sim_steps,
            wall_clock=stats.wall_clock,
        )
    return result, stats
