"""Per-GPU-count scalability profiles for elastic jobs.

A :class:`ScalabilityProfile` is the goodput curve of one job: for
every GPU count the job can run at, the per-iteration stage durations
of one worker at that count.  It is the information an elastic
scheduler (Pollux-style goodput-adaptive reallocation, arXiv
2008.12260) needs to trade GPUs between jobs at each scheduling
interval — see ``repro.elastic`` and ``docs/elastic.md``.

The default is *flat*: a job without a scalability profile (or with a
single-point one) supports exactly its requested GPU count, so
renegotiation can never change it and every existing workload behaves
bit-identically under the elastic arm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.jobs.stage import StageProfile

__all__ = ["ScalabilityProfile"]


@dataclass(frozen=True)
class ScalabilityProfile:
    """A job's stage profiles per supported GPU count (goodput curve).

    Attributes:
        points: ``(gpu_count, profile)`` pairs, one per supported GPU
            count.  Normalized to ascending GPU count at construction;
            counts must be positive and unique, and every profile must
            span the same number of resources.
    """

    points: Tuple[Tuple[int, StageProfile], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a scalability profile needs at least one point")
        normalized = tuple(
            sorted(
                ((int(gpus), profile) for gpus, profile in self.points),
                key=lambda point: point[0],
            )
        )
        counts = [gpus for gpus, _ in normalized]
        if any(gpus < 1 for gpus in counts):
            raise ValueError(f"GPU counts must be >= 1, got {counts}")
        if len(set(counts)) != len(counts):
            raise ValueError(f"duplicate GPU counts in {counts}")
        widths = {profile.num_resources for _, profile in normalized}
        if len(widths) != 1:
            raise ValueError(
                f"profiles mix resource counts {sorted(widths)}"
            )
        object.__setattr__(self, "points", normalized)
        object.__setattr__(
            self, "_by_count", {gpus: profile for gpus, profile in normalized}
        )

    # -- constructors ------------------------------------------------------

    @classmethod
    def flat(cls, num_gpus: int, profile: StageProfile) -> "ScalabilityProfile":
        """The degenerate single-point curve: one supported GPU count.

        A flat profile can never be resized, so a job carrying one is
        indistinguishable from a job with no scalability profile at
        all — the degeneracy guarantee of the elastic arm rests on it.
        """
        return cls(((num_gpus, profile),))

    @classmethod
    def from_mapping(
        cls, profiles: Mapping[int, StageProfile]
    ) -> "ScalabilityProfile":
        """Build from a ``{gpu_count: profile}`` mapping."""
        return cls(tuple(profiles.items()))

    @classmethod
    def from_speedups(
        cls,
        base_gpus: int,
        base_profile: StageProfile,
        speedups: Mapping[int, float],
    ) -> "ScalabilityProfile":
        """Build a curve from per-count speedups relative to a base.

        A speedup of ``s`` at count ``g`` means one iteration at ``g``
        GPUs takes ``1/s`` of the base iteration time; every stage is
        scaled proportionally.  The base count itself is always
        included (speedup 1); sub-linear curves (``s < g / base``)
        model the synchronization overhead that makes blind scale-out
        unprofitable.

        Raises:
            ValueError: On non-positive speedups.
        """
        points = {base_gpus: base_profile}
        for gpus, speedup in speedups.items():
            if speedup <= 0:
                raise ValueError(
                    f"speedup at {gpus} GPUs must be > 0, got {speedup}"
                )
            if int(gpus) == base_gpus:
                continue
            points[int(gpus)] = base_profile.scaled(1.0 / speedup)
        return cls.from_mapping(points)

    # -- accessors ---------------------------------------------------------

    @property
    def gpu_counts(self) -> Tuple[int, ...]:
        """Supported GPU counts, ascending."""
        return tuple(gpus for gpus, _ in self.points)

    @property
    def min_gpus(self) -> int:
        """Smallest supported GPU count."""
        return self.points[0][0]

    @property
    def max_gpus(self) -> int:
        """Largest supported GPU count."""
        return self.points[-1][0]

    @property
    def is_flat(self) -> bool:
        """True when only one GPU count is supported (never resizable)."""
        return len(self.points) == 1

    def supports(self, num_gpus: int) -> bool:
        """Whether the job can run at ``num_gpus`` GPUs."""
        return num_gpus in self._by_count  # type: ignore[attr-defined]

    def profile_for(self, num_gpus: int) -> StageProfile:
        """The stage profile at ``num_gpus`` GPUs.

        Raises:
            ValueError: For unsupported counts.
        """
        try:
            return self._by_count[num_gpus]  # type: ignore[attr-defined]
        except KeyError:
            raise ValueError(
                f"unsupported GPU count {num_gpus}; profile supports "
                f"{list(self.gpu_counts)}"
            ) from None

    def iteration_time(self, num_gpus: int) -> float:
        """Solo per-iteration time at ``num_gpus`` GPUs."""
        return self.profile_for(num_gpus).iteration_time

    def throughput(self, num_gpus: int) -> float:
        """Iterations per second at ``num_gpus`` GPUs (the goodput)."""
        return 1.0 / self.iteration_time(num_gpus)

    def speedup(self, num_gpus: int) -> float:
        """Throughput at ``num_gpus`` relative to the smallest count."""
        return self.iteration_time(self.min_gpus) / self.iteration_time(num_gpus)

    def next_step(self, num_gpus: int) -> Optional[int]:
        """The next supported count above ``num_gpus``, or None."""
        for gpus in self.gpu_counts:
            if gpus > num_gpus:
                return gpus
        return None

    def prev_step(self, num_gpus: int) -> Optional[int]:
        """The next supported count below ``num_gpus``, or None."""
        for gpus in reversed(self.gpu_counts):
            if gpus < num_gpus:
                return gpus
        return None

    def counts_up_to(self, limit: int) -> Tuple[int, ...]:
        """Supported counts not exceeding ``limit``, ascending."""
        return tuple(gpus for gpus in self.gpu_counts if gpus <= limit)
