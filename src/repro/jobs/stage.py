"""Per-iteration stage profiles.

A :class:`StageProfile` records how long one training iteration of a
job spends on each resource type.  It is the unit of information that
flows from the profiler into the interleaving-efficiency model
(Eq. 1-4 of the paper) and the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.jobs.resources import NUM_RESOURCES, RESOURCE_ORDER, Resource

__all__ = ["Stage", "StageProfile"]


@dataclass(frozen=True)
class Stage:
    """One stage of a training iteration.

    Attributes:
        resource: The resource type this stage saturates.
        duration: Time in seconds the stage takes when running alone.
    """

    resource: Resource
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"stage duration must be >= 0, got {self.duration}")


@dataclass(frozen=True)
class StageProfile:
    """Durations of one iteration's stages, indexed by resource.

    The profile is stored densely: every resource has a duration,
    defaulting to zero for resources a job does not use.  Profiles are
    normally four entries long (the paper's storage/CPU/GPU/network),
    but any positive length is accepted so two-resource examples like
    the paper's Fig. 4 can be modelled directly.

    Attributes:
        durations: Seconds per resource, in resource-index order.
    """

    durations: Tuple[float, ...] = field(default=(0.0,) * NUM_RESOURCES)

    def __post_init__(self) -> None:
        if not self.durations:
            raise ValueError("a stage profile needs at least one resource")
        for d in self.durations:
            if d < 0:
                raise ValueError(f"stage durations must be >= 0, got {d}")
        if all(d == 0 for d in self.durations):
            raise ValueError("a stage profile must use at least one resource")
        # Profiles are immutable, so the totals the efficiency model
        # reads on every edge-weight evaluation are computed once here
        # instead of being re-summed per call.
        object.__setattr__(self, "_iteration_time", sum(self.durations))

    @property
    def num_resources(self) -> int:
        """Number of resource slots in this profile."""
        return len(self.durations)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_mapping(cls, durations: Mapping[Resource, float]) -> "StageProfile":
        """Build a profile from a sparse ``{resource: seconds}`` mapping."""
        dense = [0.0] * NUM_RESOURCES
        for resource, duration in durations.items():
            dense[Resource(resource)] = float(duration)
        return cls(tuple(dense))

    @classmethod
    def from_stages(cls, stages: Iterable[Stage]) -> "StageProfile":
        """Build a profile by summing stage durations per resource."""
        dense = [0.0] * NUM_RESOURCES
        for stage in stages:
            dense[stage.resource] += stage.duration
        return cls(tuple(dense))

    @classmethod
    def from_fractions(
        cls, iteration_time: float, fractions: Mapping[Resource, float]
    ) -> "StageProfile":
        """Build a profile from an iteration time and stage fractions.

        Fractions are normalized to sum to one before being applied, so
        profiles quoted like the paper's Table 1 (whose raw percentages
        may not sum to 100% because of intra-job overlap and idle gaps)
        become consistent sequential-stage durations.
        """
        if iteration_time <= 0:
            raise ValueError("iteration_time must be > 0")
        total = sum(fractions.values())
        if total <= 0:
            raise ValueError("fractions must have a positive sum")
        return cls.from_mapping(
            {
                resource: iteration_time * fraction / total
                for resource, fraction in fractions.items()
            }
        )

    # -- accessors ----------------------------------------------------------

    def duration(self, resource: Resource) -> float:
        """Seconds of one iteration spent on ``resource``."""
        return self.durations[resource]

    def __getitem__(self, resource: Resource) -> float:
        return self.durations[Resource(resource)]

    def __iter__(self) -> Iterator[Stage]:
        """Iterate non-empty stages in canonical data-path order."""
        for index, duration in enumerate(self.durations):
            if duration > 0:
                yield Stage(Resource(index), duration)

    @property
    def iteration_time(self) -> float:
        """Solo iteration time: the sum of all stage durations.

        Running alone, the stages of one iteration execute back to
        back, so the iteration period equals the stage sum (Eq. 3 of
        the paper with a single job).  Cached at construction.
        """
        return self._iteration_time  # type: ignore[attr-defined]

    def durations_key(self, quantum: float = 0.0) -> Tuple[float, ...]:
        """A hashable cache key for this profile's durations.

        With ``quantum == 0`` the key is the exact duration tuple.  A
        positive ``quantum`` snaps every duration to that grid, so
        profiles that differ only by measurement noise (e.g. the
        perturbations of :mod:`repro.profiler.noise`) collapse onto the
        same key and share cached grouping decisions.
        """
        if quantum > 0.0:
            return tuple(round(d / quantum) * quantum for d in self.durations)
        return self.durations

    @property
    def bottleneck(self) -> Resource:
        """The resource with the largest stage duration."""
        index = max(range(len(self.durations)), key=lambda i: self.durations[i])
        return Resource(index)

    def fraction(self, resource: Resource) -> float:
        """Fraction of the solo iteration time spent on ``resource``."""
        return self.durations[resource] / self.iteration_time

    def fractions(self) -> Dict[Resource, float]:
        """Per-resource fractions of solo iteration time."""
        return {
            Resource(i): self.fraction(Resource(i))
            for i in range(len(self.durations))
        }

    # -- transforms ----------------------------------------------------------

    def scaled(self, factor: float) -> "StageProfile":
        """Return a copy with all stage durations multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be > 0")
        return StageProfile(tuple(d * factor for d in self.durations))

    def with_duration(self, resource: Resource, duration: float) -> "StageProfile":
        """Return a copy with one stage duration replaced."""
        dense = list(self.durations)
        dense[Resource(resource)] = float(duration)
        return StageProfile(tuple(dense))

    def rounded(self, ndigits: int = 6) -> "StageProfile":
        """Return a copy with durations rounded (useful in reports)."""
        return StageProfile(tuple(round(d, ndigits) for d in self.durations))
