"""Job and resource model: the vocabulary of the Muri reproduction."""

from repro.jobs.job import Job, JobSpec, JobStatus
from repro.jobs.memory import (
    V100_MEMORY_GB,
    MemoryFootprint,
    group_peak_memory,
)
from repro.jobs.pipeline import (
    ModelParallelJob,
    PipelineWorker,
    make_model_parallel_job,
)
from repro.jobs.resources import (
    NUM_RESOURCES,
    RESOURCE_ORDER,
    STAGE_NAMES,
    Resource,
)
from repro.jobs.scalability import ScalabilityProfile
from repro.jobs.stage import Stage, StageProfile

__all__ = [
    "Job",
    "JobSpec",
    "JobStatus",
    "ScalabilityProfile",
    "Resource",
    "RESOURCE_ORDER",
    "NUM_RESOURCES",
    "STAGE_NAMES",
    "Stage",
    "StageProfile",
    "ModelParallelJob",
    "PipelineWorker",
    "make_model_parallel_job",
    "MemoryFootprint",
    "group_peak_memory",
    "V100_MEMORY_GB",
]
