"""Model-parallel (pipeline) training jobs — the paper's section 7.

Muri's prototype supports data-parallel training; the paper sketches
how model parallelism fits: each pipeline worker's iteration is itself
staged —

* the **first** worker loads data (storage) and preprocesses (CPU),
  computes its shard (GPU), and sends activations downstream (network);
* a **middle** worker receives activations (network), computes (GPU),
  and sends (network) — the full-duplex NIC lets receive and send
  overlap, so their network time folds to the larger of the two;
* the **last** worker receives (network), computes (GPU), and
  synchronizes gradients (network).

The pipeline advances in lock step, so the job's steady-state period
is its *slowest* worker's stage sum ("the speed of a job depends on
its slowest worker"), and that worker's profile is what the scheduler
should interleave against — Muri "adjusts the interleaving efficiency
for the Blossom-based scheduling algorithm" by using it.

:func:`make_model_parallel_job` builds the per-worker profiles and a
schedulable :class:`~repro.jobs.job.JobSpec` whose profile is the
bottleneck worker's, occupying one GPU per pipeline stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.jobs.job import JobSpec
from repro.jobs.resources import Resource
from repro.jobs.stage import StageProfile

__all__ = ["PipelineWorker", "ModelParallelJob", "make_model_parallel_job"]


@dataclass(frozen=True)
class PipelineWorker:
    """One stage-worker of a model-parallel job.

    Attributes:
        index: Position in the pipeline (0 = first).
        profile: The worker's per-iteration stage profile.
        role: "first", "middle", or "last".
    """

    index: int
    profile: StageProfile
    role: str


@dataclass(frozen=True)
class ModelParallelJob:
    """A pipeline-parallel job: per-worker profiles plus the spec.

    Attributes:
        spec: The schedulable job (one GPU per worker; profile = the
            bottleneck worker's, per section 7's adjustment).
        workers: The per-worker profiles, pipeline order.
    """

    spec: JobSpec
    workers: Tuple[PipelineWorker, ...]

    @property
    def num_stages(self) -> int:
        return len(self.workers)

    @property
    def bottleneck_worker(self) -> PipelineWorker:
        """The worker bounding the pipeline's steady-state period."""
        return max(self.workers, key=lambda w: w.profile.iteration_time)

    @property
    def pipeline_period(self) -> float:
        """Steady-state seconds per iteration of the whole pipeline."""
        return self.bottleneck_worker.profile.iteration_time

    def worker_utilizations(self) -> List[float]:
        """Each worker's busy fraction at steady state.

        Non-bottleneck workers idle while waiting for the slowest one —
        the intra-job inefficiency that makes these jobs attractive
        interleaving partners.
        """
        period = self.pipeline_period
        return [w.profile.iteration_time / period for w in self.workers]


def make_model_parallel_job(
    num_stages: int,
    compute_time: float,
    activation_time: float,
    load_time: float = 0.0,
    preprocess_time: float = 0.0,
    sync_time: float = 0.0,
    num_iterations: int = 1,
    submit_time: float = 0.0,
    model: str = "pipeline",
    name: Optional[str] = None,
    balanced: bool = True,
) -> ModelParallelJob:
    """Build a model-parallel job from pipeline parameters.

    Args:
        num_stages: Pipeline depth (one GPU per stage).
        compute_time: Total GPU seconds per iteration across the model;
            split evenly over stages when ``balanced``, else weighted
            toward the first stages (embedding-heavy models).
        activation_time: Seconds to transfer activations between
            adjacent workers (send and receive each take this long;
            full duplex folds a middle worker's send+receive into
            ``activation_time``).
        load_time: First worker's data-loading (storage) seconds.
        preprocess_time: First worker's preprocessing (CPU) seconds.
        sync_time: Last worker's gradient-synchronization seconds.
        num_iterations: Training iterations.
        submit_time: Arrival time.
        model: Model label.
        name: Optional job name.
        balanced: Even compute split across stages.

    Returns:
        The :class:`ModelParallelJob` (spec + per-worker profiles).

    Raises:
        ValueError: For a pipeline shallower than two stages.
    """
    if num_stages < 2:
        raise ValueError("a model-parallel job needs at least 2 stages")
    if compute_time <= 0:
        raise ValueError("compute_time must be > 0")
    if activation_time < 0:
        raise ValueError("activation_time must be >= 0")

    if balanced:
        shares = [compute_time / num_stages] * num_stages
    else:
        # Front-loaded split: stage i gets weight (num_stages - i).
        weights = list(range(num_stages, 0, -1))
        total = sum(weights)
        shares = [compute_time * w / total for w in weights]

    workers: List[PipelineWorker] = []
    for index in range(num_stages):
        if index == 0:
            role = "first"
            profile = StageProfile.from_mapping({
                Resource.STORAGE: load_time,
                Resource.CPU: preprocess_time,
                Resource.GPU: shares[index],
                Resource.NETWORK: activation_time,   # send downstream
            })
        elif index == num_stages - 1:
            role = "last"
            profile = StageProfile.from_mapping({
                Resource.GPU: shares[index],
                # Receive upstream + gradient sync; full duplex lets the
                # receive overlap the sync, so the larger one dominates.
                Resource.NETWORK: max(activation_time, sync_time),
            })
        else:
            role = "middle"
            profile = StageProfile.from_mapping({
                Resource.GPU: shares[index],
                # Full-duplex NIC: receive and send overlap.
                Resource.NETWORK: activation_time,
            })
        workers.append(PipelineWorker(index=index, profile=profile, role=role))

    bottleneck = max(workers, key=lambda w: w.profile.iteration_time)
    spec = JobSpec(
        profile=bottleneck.profile,
        num_gpus=num_stages,
        submit_time=submit_time,
        num_iterations=num_iterations,
        model=model,
        name=name,
    )
    return ModelParallelJob(spec=spec, workers=tuple(workers))
