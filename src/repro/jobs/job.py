"""Job specifications and runtime job state.

A :class:`JobSpec` is the immutable description a user submits: which
model it trains, its per-iteration stage profile, how many GPUs it
wants, when it arrives, and how many iterations it runs.  A
:class:`Job` wraps a spec with the mutable state the scheduler and
simulator track (progress, attained service, timestamps).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.jobs.memory import MemoryFootprint
from repro.jobs.resources import Resource
from repro.jobs.scalability import ScalabilityProfile
from repro.jobs.stage import StageProfile

__all__ = ["JobSpec", "Job", "JobStatus"]

_job_counter = itertools.count()


class JobStatus(Enum):
    """Lifecycle of a job inside the scheduler."""

    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of a submitted DL training job.

    Attributes:
        job_id: Unique identifier.  Auto-assigned when not provided.
        name: Human-readable name (defaults to ``job-<id>``).
        model: Name of the model being trained (model-zoo key or
            free-form label).
        profile: True per-iteration stage durations of one worker.
            The scheduler normally sees a *profiled* (possibly noisy)
            copy of this, not the truth; see ``repro.profiler``.
        num_gpus: Number of GPUs (workers) the job requires.
        submit_time: Arrival time in seconds.
        num_iterations: Total training iterations to run.
        memory: Optional per-GPU memory footprint; enables the
            grouper's GPU-memory feasibility check (section 2.2).
        scalability: Optional per-GPU-count goodput curve; None (the
            default) means the job is rigid — it only ever runs at
            ``num_gpus``.  When present, it must support ``num_gpus``
            and agree with ``profile`` there, and an elastic scheduler
            may resize the job to any other supported count (see
            ``repro.elastic``).
        gpu_affinity: Optional GPU-generation name this job is bound
            to on a heterogeneous cluster; None (the default) runs
            anywhere.  A pinned job's ``profile`` is expected to be
            pre-scaled for that generation (see ``repro.hetero``).
        affinity_mode: ``"pin"`` (the default) makes the affinity
            hard — placement only considers machines of that
            generation; ``"prefer"`` tries them first and falls back
            to the whole cluster.  Ignored when ``gpu_affinity`` is
            None.
    """

    profile: StageProfile
    num_gpus: int = 1
    submit_time: float = 0.0
    num_iterations: int = 1
    model: str = "custom"
    name: Optional[str] = None
    job_id: Optional[int] = None
    memory: Optional[MemoryFootprint] = None
    scalability: Optional[ScalabilityProfile] = None
    gpu_affinity: Optional[str] = None
    affinity_mode: str = "pin"

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {self.num_gpus}")
        if self.affinity_mode not in ("pin", "prefer"):
            raise ValueError(
                f"affinity_mode must be 'pin' or 'prefer', "
                f"got {self.affinity_mode!r}"
            )
        if self.scalability is not None:
            if not self.scalability.supports(self.num_gpus):
                raise ValueError(
                    f"scalability profile does not support the requested "
                    f"{self.num_gpus} GPUs (supports "
                    f"{list(self.scalability.gpu_counts)})"
                )
            curve = self.scalability.profile_for(self.num_gpus)
            if curve.durations != self.profile.durations:
                raise ValueError(
                    "scalability profile disagrees with `profile` at the "
                    f"requested {self.num_gpus} GPUs"
                )
        if self.num_iterations < 1:
            raise ValueError(
                f"num_iterations must be >= 1, got {self.num_iterations}"
            )
        if self.submit_time < 0:
            raise ValueError(f"submit_time must be >= 0, got {self.submit_time}")
        if self.job_id is None:
            object.__setattr__(self, "job_id", next(_job_counter))
        if self.name is None:
            object.__setattr__(self, "name", f"job-{self.job_id}")

    @property
    def iteration_time(self) -> float:
        """Solo per-iteration time (stage-duration sum) of one worker."""
        return self.profile.iteration_time

    @property
    def total_service_time(self) -> float:
        """Solo running time of the whole job, in seconds."""
        return self.num_iterations * self.iteration_time

    @property
    def gpu_service(self) -> float:
        """GPU-seconds of service: solo runtime times GPU count.

        This is the "size" notion that SRSF uses (remaining time
        multiplied by the number of GPUs).
        """
        return self.total_service_time * self.num_gpus

    @property
    def bottleneck(self) -> Resource:
        """The resource this job is bottlenecked on."""
        return self.profile.bottleneck


@dataclass
class Job:
    """Mutable runtime state of a job tracked by the scheduler.

    Attributes:
        spec: The immutable job description.
        status: Current lifecycle state.
        remaining_iterations: Iterations left; fractional values are
            allowed because the simulator advances in wall-clock time.
        attained_service: Wall-clock seconds the job has been running
            (per worker); drives LAS-family priorities.
        start_time: First time the job started running, or None.
        finish_time: Completion time, or None while unfinished.
        preemptions: Number of times the job was stopped and later
            resumed by the scheduler.
        restart_penalty_remaining: Seconds of restart overhead still to
            pay before the job makes progress again.
        allocated_gpus: Current GPU count of an elastically resized
            job, or None while the job runs at its requested size.
            Only :meth:`resize` should set it; progress
            (``remaining_iterations``, ``attained_service``) is never
            touched by a resize.
        resizes: Number of times the job was elastically resized.
    """

    spec: JobSpec
    status: JobStatus = JobStatus.PENDING
    remaining_iterations: float = field(init=False)
    attained_service: float = 0.0
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    preemptions: int = 0
    restart_penalty_remaining: float = 0.0
    allocated_gpus: Optional[int] = None
    resizes: int = 0

    def __post_init__(self) -> None:
        self.remaining_iterations = float(self.spec.num_iterations)

    # -- identity convenience ------------------------------------------------

    @property
    def job_id(self) -> int:
        return self.spec.job_id  # type: ignore[return-value]

    @property
    def name(self) -> str:
        return self.spec.name  # type: ignore[return-value]

    @property
    def num_gpus(self) -> int:
        """Current GPU count: the elastic allocation when resized,
        otherwise the spec's requested count."""
        if self.allocated_gpus is not None:
            return self.allocated_gpus
        return self.spec.num_gpus

    @property
    def profile(self) -> StageProfile:
        """Stage profile at the current GPU count.

        A resized elastic job reads its scalability curve; everything
        else reads the spec's profile directly (bit-identical to the
        pre-elastic behaviour).
        """
        if (
            self.allocated_gpus is not None
            and self.spec.scalability is not None
        ):
            return self.spec.scalability.profile_for(self.allocated_gpus)
        return self.spec.profile

    # -- elasticity ------------------------------------------------------------

    def resize(self, num_gpus: int) -> int:
        """Change the job's GPU count, conserving progress.

        Only the allocation (and therefore the active stage profile)
        changes; ``remaining_iterations`` and ``attained_service`` are
        untouched — the conservation guarantee the
        ``resize_progress_conserved`` invariant enforces.

        Args:
            num_gpus: Target GPU count; must be supported by the
                spec's scalability profile.

        Returns:
            The previous GPU count.

        Raises:
            ValueError: When the job is rigid (no scalability profile),
                finished, or the count is unsupported.
        """
        if self.status == JobStatus.FINISHED:
            raise ValueError(f"{self.name} already finished")
        scalability = self.spec.scalability
        if scalability is None:
            if num_gpus != self.spec.num_gpus:
                raise ValueError(
                    f"{self.name} is rigid (no scalability profile)"
                )
            return self.num_gpus
        if not scalability.supports(num_gpus):
            raise ValueError(
                f"{self.name} cannot run at {num_gpus} GPUs (supports "
                f"{list(scalability.gpu_counts)})"
            )
        previous = self.num_gpus
        if num_gpus != previous:
            self.allocated_gpus = num_gpus
            self.resizes += 1
        return previous

    # -- progress --------------------------------------------------------------

    @property
    def is_finished(self) -> bool:
        return self.status == JobStatus.FINISHED

    @property
    def remaining_service_time(self) -> float:
        """Solo seconds of work left (ignores interleaving slowdown).

        Uses the *current* profile, so a resized elastic job is sized
        by its post-resize iteration time; for rigid jobs this is the
        spec's iteration time exactly.
        """
        return self.remaining_iterations * self.profile.iteration_time

    @property
    def remaining_gpu_service(self) -> float:
        """Remaining work in GPU-seconds, the SRSF size metric."""
        return self.remaining_service_time * self.num_gpus

    @property
    def attained_gpu_service(self) -> float:
        """Attained service in GPU-seconds, the 2D-LAS metric."""
        return self.attained_service * self.num_gpus

    def advance(self, iterations: float, wall_time: float) -> None:
        """Record training progress.

        Args:
            iterations: Iterations completed in this span (may be
                fractional).
            wall_time: Wall-clock seconds spent running in this span.
        """
        if iterations < 0 or wall_time < 0:
            raise ValueError("progress must be non-negative")
        self.remaining_iterations = max(0.0, self.remaining_iterations - iterations)
        self.attained_service += wall_time

    def mark_started(self, now: float) -> None:
        """Transition to RUNNING, tracking first-start and preemptions."""
        if self.status == JobStatus.FINISHED:
            raise ValueError(f"{self.name} already finished")
        if self.start_time is None:
            self.start_time = now
        elif self.status == JobStatus.PENDING:
            self.preemptions += 1
        self.status = JobStatus.RUNNING

    def mark_stopped(self) -> None:
        """Transition back to PENDING (preemption)."""
        if self.status == JobStatus.RUNNING:
            self.status = JobStatus.PENDING

    def mark_finished(self, now: float) -> None:
        """Transition to FINISHED at time ``now``."""
        self.status = JobStatus.FINISHED
        self.finish_time = now
        self.remaining_iterations = 0.0

    def completion_time(self) -> float:
        """Job completion time (JCT): finish minus submission.

        Raises:
            ValueError: If the job has not finished.
        """
        if self.finish_time is None:
            raise ValueError(f"{self.name} has not finished")
        return self.finish_time - self.spec.submit_time

    def pending_time(self, now: float) -> float:
        """Total time since submission not yet spent running."""
        reference = self.finish_time if self.finish_time is not None else now
        return max(0.0, reference - self.spec.submit_time - self.attained_service)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Job({self.name}, model={self.spec.model}, gpus={self.num_gpus}, "
            f"status={self.status.value}, remaining={self.remaining_iterations:.1f})"
        )
