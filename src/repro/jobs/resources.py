"""Resource types used by DL training stages.

The paper (section 1) identifies four resource types that a deep
learning training iteration cycles through:

* **storage IO** — reading training samples (data loading stage),
* **CPU** — preprocessing and RL environment simulation,
* **GPU** — forward and backward propagation,
* **network IO** — gradient synchronization between workers.

The canonical stage order within one iteration follows the data path:
STORAGE -> CPU -> GPU -> NETWORK.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Tuple

__all__ = ["Resource", "RESOURCE_ORDER", "NUM_RESOURCES", "STAGE_NAMES"]


class Resource(IntEnum):
    """One of the four resource types a training stage saturates."""

    STORAGE = 0
    CPU = 1
    GPU = 2
    NETWORK = 3

    @property
    def stage_name(self) -> str:
        """Human-readable name of the stage that uses this resource."""
        return STAGE_NAMES[self]

    @classmethod
    def from_name(cls, name: str) -> "Resource":
        """Parse a resource from a case-insensitive name.

        Accepts both resource names ("gpu") and stage names
        ("propagate").
        """
        key = name.strip().upper()
        if key in cls.__members__:
            return cls[key]
        for resource, stage in STAGE_NAMES.items():
            if stage.upper() == key:
                return resource
        raise ValueError(f"unknown resource or stage name: {name!r}")


#: Stages in data-path order: load -> preprocess -> propagate -> sync.
RESOURCE_ORDER: Tuple[Resource, ...] = (
    Resource.STORAGE,
    Resource.CPU,
    Resource.GPU,
    Resource.NETWORK,
)

NUM_RESOURCES = len(RESOURCE_ORDER)

#: The name the paper gives to the stage dominated by each resource.
STAGE_NAMES = {
    Resource.STORAGE: "load_data",
    Resource.CPU: "preprocess",
    Resource.GPU: "propagate",
    Resource.NETWORK: "synchronize",
}
