"""GPU memory accounting for interleaved groups.

Section 2.2's feasibility argument: "multi-resource interleaving does
not significantly increase GPU memory usage, because intermediate data
consume most GPU memory and multi-resource interleaving interleaves
the occurrence of these data" — grouping four jobs raised peak memory
by under 10% over GPT-2 alone on the paper's V100s.

The model here: a job holds its **weights** (parameters, optimizer
state) resident for its whole lifetime, while its **activations**
(intermediate tensors) exist only during its propagate stage.  Because
a coordinated group runs at most one member's propagate stage at a
time, the group's peak is::

    sum(weights) + max(activations) + residual * (other activations)

where ``residual`` covers prefetched batches and not-yet-freed buffers
(zero would be perfectly staggered stages).  Uncoordinated sharing
(AntMan-style) overlaps propagate stages freely, so its peak is the
plain sum of per-job peaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["MemoryFootprint", "group_peak_memory", "V100_MEMORY_GB"]

#: Memory of the paper's NVIDIA Tesla V100 GPUs.
V100_MEMORY_GB = 16.0


@dataclass(frozen=True)
class MemoryFootprint:
    """Per-GPU memory demand of one job.

    Attributes:
        weights_gb: Parameters + gradients + optimizer state, resident
            throughout training.
        activations_gb: Peak intermediate tensors during the propagate
            stage.
    """

    weights_gb: float
    activations_gb: float

    def __post_init__(self) -> None:
        if self.weights_gb < 0 or self.activations_gb < 0:
            raise ValueError("memory sizes must be >= 0")

    @property
    def solo_peak_gb(self) -> float:
        """Peak memory of the job running alone."""
        return self.weights_gb + self.activations_gb


def group_peak_memory(
    footprints: Sequence[MemoryFootprint],
    coordinated: bool = True,
    residual: float = 0.10,
) -> float:
    """Peak per-GPU memory of a group of co-located jobs.

    Args:
        footprints: Member footprints.
        coordinated: True for Muri-style interleaving (propagate stages
            staggered by barriers), False for uncoordinated sharing
            (stages overlap arbitrarily).
        residual: Fraction of each *non-active* member's activations
            still resident while another member propagates (prefetch
            buffers, lazily freed tensors).

    Returns:
        Peak gigabytes on each GPU of the group's set.

    Raises:
        ValueError: For an empty group or a residual outside [0, 1].
    """
    if not footprints:
        raise ValueError("a group needs at least one member")
    if not 0 <= residual <= 1:
        raise ValueError("residual must be in [0, 1]")

    weights = sum(f.weights_gb for f in footprints)
    if not coordinated:
        return weights + sum(f.activations_gb for f in footprints)
    activations = sorted((f.activations_gb for f in footprints), reverse=True)
    largest = activations[0]
    others = sum(activations[1:])
    return weights + largest + residual * others
