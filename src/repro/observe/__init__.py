"""Structured tracing and decision provenance for the simulator stack.

``repro.observe`` answers the question the aggregate metrics cannot:
*why* did the scheduler do that?  It has three pieces:

* :class:`~repro.observe.tracer.Tracer` — a zero-overhead-when-disabled
  event collector with typed events (job lifecycle, scheduling rounds,
  group formation, cache hits) and nestable wall-clock timing spans
  around the hot paths (matching, ordering, placement);
* :class:`~repro.observe.provenance.ProvenanceStore` — per-job records
  of every grouping decision: the candidate partners considered, the
  efficiency scores, and which Algorithm 1 round produced the group,
  surfaced by ``repro explain <job-id>``;
* :mod:`~repro.observe.export` — Chrome-trace/Perfetto JSON for
  timelines, JSONL for machine consumption, and a terminal summary.

Attach one tracer to the whole stack::

    from repro import ClusterSimulator, Tracer, make_scheduler

    tracer = Tracer()
    scheduler = make_scheduler("muri-s", tracer=tracer)
    result = ClusterSimulator(scheduler, tracer=tracer).run(specs)
    print(tracer.provenance.explain(job_id=3))
"""

from repro.observe.events import EventCategory, TraceEvent
from repro.observe.export import (
    format_explain,
    to_chrome_trace,
    to_jsonl,
    trace_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.observe.provenance import (
    CandidateConsidered,
    GroupDecision,
    GroupingRecord,
    JobProvenance,
    OutcomeRecord,
    ProvenanceStore,
)
from repro.observe.tracer import NULL_SPAN, Span, Tracer, maybe_span

__all__ = [
    "EventCategory",
    "TraceEvent",
    "Tracer",
    "Span",
    "NULL_SPAN",
    "maybe_span",
    "ProvenanceStore",
    "JobProvenance",
    "GroupingRecord",
    "GroupDecision",
    "OutcomeRecord",
    "CandidateConsidered",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "trace_summary",
    "format_explain",
]
