"""Typed trace events.

Every observation the tracer collects is a :class:`TraceEvent`: a
category (what subsystem it came from), a name (what happened), the
simulation time it refers to, the wall-clock time it was recorded at,
and free-form ``args``.  Spans are events with a non-None ``duration``
(wall-clock seconds) and a ``depth`` recording their nesting level.

Events are plain data on purpose: exporters (Chrome trace, JSONL) and
tests consume them without needing the tracer that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

__all__ = ["EventCategory", "TraceEvent"]


class EventCategory(Enum):
    """What subsystem a trace event came from."""

    #: Job lifecycle: arrival, start, preemption, fault, finish.
    JOB = "job"
    #: Scheduler invocations and their decision summaries.
    SCHED = "sched"
    #: Interleaving-group formation, breakup, placement outcomes.
    GROUP = "group"
    #: Cache behaviour: decision/weight cache hits, sparsifier probes.
    CACHE = "cache"
    #: Wall-clock timing spans around hot paths.
    SPAN = "span"
    #: Simulation-level bookkeeping (run start/end, event queue).
    SIM = "sim"
    #: Online scheduling service: submissions, rejections, cancels,
    #: drain transitions.
    SERVICE = "service"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded observation.

    Attributes:
        category: Subsystem the event belongs to.
        name: Dotted event name, e.g. ``"group.formed"``.
        sim_time: Simulation time (seconds) the event refers to.
        wall_time: Wall-clock seconds since the tracer was created.
        duration: Wall-clock seconds covered; None for instant events,
            set for spans.
        depth: Span nesting depth (0 for top-level spans and instants).
        args: Event-specific payload (JSON-compatible values).
    """

    category: EventCategory
    name: str
    sim_time: float
    wall_time: float
    duration: Optional[float] = None
    depth: int = 0
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_span(self) -> bool:
        """True when the event records a timed span, not an instant."""
        return self.duration is not None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (used by the JSONL export)."""
        payload: Dict[str, Any] = {
            "category": self.category.value,
            "name": self.name,
            "sim_time": self.sim_time,
            "wall_time": self.wall_time,
        }
        if self.duration is not None:
            payload["duration"] = self.duration
            payload["depth"] = self.depth
        if self.args:
            payload["args"] = dict(self.args)
        return payload
