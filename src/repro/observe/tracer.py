"""The tracer: typed events, counters, and nestable timing spans.

Design constraints, in order:

1. **Zero overhead when absent.**  Every instrumentation site in the
   simulator/scheduler stack is guarded by ``if tracer is not None``
   (the default), so the un-traced hot path pays nothing.
2. **Near-zero overhead when disabled.**  A ``Tracer(enabled=False)``
   short-circuits ``emit``/``count`` on the first branch and hands out
   a shared no-op span, so a tracer can be threaded through
   unconditionally and switched off per run.
3. **Bounded memory.**  At most ``max_events`` events are stored;
   overflow increments :attr:`Tracer.dropped_events` instead of
   growing without bound on long simulations.

Wall-clock timestamps come from :func:`time.perf_counter` relative to
the tracer's creation, so spans are comparable across one run.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.observe.events import EventCategory, TraceEvent
from repro.observe.provenance import ProvenanceStore

__all__ = ["Tracer", "Span", "NULL_SPAN", "maybe_span"]


class Span:
    """A wall-clock timing span; use as a context manager.

    Created via :meth:`Tracer.span`.  On exit it records one SPAN event
    whose ``duration`` is the elapsed wall-clock time and whose
    ``depth`` is the nesting level at entry.
    """

    __slots__ = ("_tracer", "name", "sim_time", "args", "_start", "_depth")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        sim_time: float,
        args: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.sim_time = sim_time
        self.args = args
        self._start = 0.0
        self._depth = 0

    def __enter__(self) -> "Span":
        """Start timing; nesting depth is captured here."""
        tracer = self._tracer
        self._depth = tracer._span_depth
        tracer._span_depth += 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Stop timing and record the span event."""
        elapsed = time.perf_counter() - self._start
        tracer = self._tracer
        tracer._span_depth -= 1
        tracer._record(
            TraceEvent(
                category=EventCategory.SPAN,
                name=self.name,
                sim_time=self.sim_time,
                wall_time=self._start - tracer._epoch,
                duration=elapsed,
                depth=self._depth,
                args=self.args,
            )
        )


class _NullSpan:
    """Shared no-op span handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        """No-op."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """No-op."""


#: The process-wide no-op span (safe to reuse: it has no state).
NULL_SPAN = _NullSpan()


def maybe_span(tracer: Optional["Tracer"], name: str, sim_time: float = 0.0, **args):
    """A span on ``tracer`` when tracing is active, else :data:`NULL_SPAN`.

    The convenience guard for instrumentation sites that hold an
    ``Optional[Tracer]``::

        with maybe_span(self.tracer, "grouping.match", now, bucket=gpus):
            ...
    """
    if tracer is None or not tracer.enabled:
        return NULL_SPAN
    return tracer.span(name, sim_time, **args)


class Tracer:
    """Collects typed events, counters, spans, and decision provenance.

    Args:
        enabled: When False every recording call is a cheap no-op; the
            tracer can still be threaded through the whole stack.
        max_events: Event-storage cap; overflowing events are counted
            in :attr:`dropped_events` instead of stored.
        max_groupings_per_job: Provenance history cap per job (see
            :class:`~repro.observe.provenance.ProvenanceStore`).
    """

    def __init__(
        self,
        enabled: bool = True,
        max_events: int = 1_000_000,
        max_groupings_per_job: int = 32,
    ) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.enabled = enabled
        self.max_events = max_events
        self.dropped_events = 0
        #: When False, producers skip the most detailed provenance
        #: (per-job candidate edges) while still filing grouping and
        #: outcome records.  Verification layers turn this off to keep
        #: armed-check overhead low.
        self.candidate_provenance = True
        self.provenance = ProvenanceStore(max_groupings_per_job)
        self._events: List[TraceEvent] = []
        self._counters: Dict[str, int] = {}
        self._span_depth = 0
        self._epoch = time.perf_counter()

    # -- recording ---------------------------------------------------------

    def emit(
        self,
        category: EventCategory,
        name: str,
        sim_time: float = 0.0,
        **args: Any,
    ) -> None:
        """Record one instant event (no-op when disabled)."""
        if not self.enabled:
            return
        self._record(
            TraceEvent(
                category=category,
                name=name,
                sim_time=sim_time,
                wall_time=time.perf_counter() - self._epoch,
                args=args,
            )
        )

    def span(self, name: str, sim_time: float = 0.0, **args: Any):
        """A context manager timing a wall-clock span.

        Returns :data:`NULL_SPAN` when disabled, so the ``with`` block
        costs two no-op calls and nothing is recorded.
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, sim_time, args)

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a named counter (cheap enough for per-edge hot paths)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + amount

    def inspect(self, point: str, sim_time: float = 0.0, **state: Any) -> None:
        """Structural hook: expose live objects at a named check point.

        Unlike :meth:`emit`, which records serializable *event* data,
        ``inspect`` hands subclasses the actual in-flight objects
        (proposed :class:`~repro.core.group.JobGroup` plans, the
        cluster) at well-known points of the simulator/scheduler stack.
        The base tracer ignores the call — it exists so verification
        layers (``repro.verify``) can attach runtime invariant checks
        through the same ``tracer=`` parameter every component already
        threads, without new plumbing.  Call sites guard on
        ``tracer.enabled`` like any other instrumentation.

        Args:
            point: Check-point name (e.g. ``"sim.plan"``,
                ``"sched.order"``, ``"sim.cluster"``).
            sim_time: Simulation time at the check point.
            **state: Live objects the check point exposes.
        """

    def _record(self, event: TraceEvent) -> None:
        if len(self._events) >= self.max_events:
            self.dropped_events += 1
            return
        self._events.append(event)

    # -- queries ----------------------------------------------------------

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """Every stored event, in recording order."""
        return tuple(self._events)

    @property
    def counters(self) -> Dict[str, int]:
        """A copy of the counter table."""
        return dict(self._counters)

    def __len__(self) -> int:
        return len(self._events)

    def events_in(self, category: EventCategory) -> List[TraceEvent]:
        """Stored events of one category, in order."""
        return [e for e in self._events if e.category is category]

    def events_named(self, name: str) -> List[TraceEvent]:
        """Stored events with an exact name, in order."""
        return [e for e in self._events if e.name == name]

    def job_events(self, job_id: int) -> List[TraceEvent]:
        """Events whose args reference ``job_id`` (``job`` or ``members``)."""
        out = []
        for event in self._events:
            if event.args.get("job") == job_id:
                out.append(event)
            elif job_id in (event.args.get("members") or ()):
                out.append(event)
        return out

    def clear(self) -> None:
        """Drop all events, counters, spans, and provenance."""
        self._events.clear()
        self._counters.clear()
        self.dropped_events = 0
        self._span_depth = 0
        self.provenance = ProvenanceStore(
            self.provenance.max_groupings_per_job
        )
