"""Decision provenance: why each job was grouped the way it was.

The grouping pipeline produces a :class:`GroupDecision` per final group
when tracing is on — the members, the believed efficiency, the
Algorithm 1 round that formed the group, and the candidate merges that
were evaluated along the way.  The scheduler stamps those with the
simulation time and files one :class:`GroupingRecord` per member job in
the :class:`ProvenanceStore`; the simulator adds placement outcomes
(started, preempted, unplaced) and lifecycle outcomes (finished,
faulted).  ``repro explain <job-id>`` renders the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CandidateConsidered",
    "GroupDecision",
    "GroupingRecord",
    "OutcomeRecord",
    "JobProvenance",
    "ProvenanceStore",
]


@dataclass(frozen=True)
class CandidateConsidered:
    """One merge candidate evaluated for a job during matching.

    Attributes:
        partners: Job ids of the other node in the candidate merge.
        efficiency: Believed interleaving efficiency of the merge.
        matched: True when the matching selected this candidate.
    """

    partners: Tuple[int, ...]
    efficiency: float
    matched: bool = False


@dataclass(frozen=True)
class GroupDecision:
    """One final group as the grouper decided it (no time stamp yet).

    Attributes:
        members: Job ids of the group, priority order.
        efficiency: Believed interleaving efficiency of the group
            (1.0 for solo groups).
        round_formed: Matching round (1-based) whose merge completed
            the group; 0 for groups that never merged (solo or seeded).
        seeded: True when the group entered the graph pre-merged
            because it was already running.
        candidates: Candidate merges evaluated per member job id.
    """

    members: Tuple[int, ...]
    efficiency: float
    round_formed: int
    seeded: bool
    candidates: Dict[int, Tuple[CandidateConsidered, ...]] = field(
        default_factory=dict
    )


@dataclass(frozen=True)
class GroupingRecord:
    """One grouping decision as it affected one job.

    Attributes:
        sim_time: Simulation time of the scheduler invocation.
        reason: Why the scheduler ran ("tick" or "completion").
        members: Job ids of the group this job landed in.
        efficiency: Believed interleaving efficiency of that group.
        round_formed: Algorithm 1 round that produced the group
            (0 = never merged: solo or carried over as a seed).
        seeded: True when the group was carried over from the previous
            interval rather than re-formed.
        candidates: Candidate merges evaluated for this job, best
            first (capped; may be empty for solo/seeded groups).
    """

    sim_time: float
    reason: str
    members: Tuple[int, ...]
    efficiency: float
    round_formed: int
    seeded: bool
    candidates: Tuple[CandidateConsidered, ...] = ()

    def partners_of(self, job_id: int) -> Tuple[int, ...]:
        """Group members other than ``job_id``."""
        return tuple(m for m in self.members if m != job_id)


@dataclass(frozen=True)
class OutcomeRecord:
    """What actually happened to a job at a point in simulated time.

    Attributes:
        sim_time: When it happened.
        outcome: One of "started", "preempted", "unplaced",
            "finished", "faulted".
        detail: Optional free-form context (e.g. the group members).
    """

    sim_time: float
    outcome: str
    detail: str = ""


@dataclass
class JobProvenance:
    """Everything recorded about one job.

    Attributes:
        job_id: The job.
        groupings: Grouping decisions affecting the job, in time order
            (possibly capped: the first record is always kept, older
            middle records are dropped before newer ones).
        outcomes: Placement/lifecycle outcomes, in time order.
    """

    job_id: int
    groupings: List[GroupingRecord] = field(default_factory=list)
    outcomes: List[OutcomeRecord] = field(default_factory=list)

    def latest_grouping(self) -> Optional[GroupingRecord]:
        """The most recent grouping decision, or None."""
        return self.groupings[-1] if self.groupings else None

    def last_group_with_partners(self) -> Optional[GroupingRecord]:
        """The most recent decision that put the job in a shared group."""
        for record in reversed(self.groupings):
            if len(record.members) > 1:
                return record
        return None


class ProvenanceStore:
    """Per-job provenance records collected during a simulation.

    Args:
        max_groupings_per_job: Cap on stored grouping records per job.
            The first record is always kept; beyond the cap the oldest
            *middle* record is evicted, preserving both how the job
            entered the system and its most recent history.
    """

    def __init__(self, max_groupings_per_job: int = 32) -> None:
        if max_groupings_per_job < 2:
            raise ValueError("max_groupings_per_job must be >= 2")
        self.max_groupings_per_job = max_groupings_per_job
        self._jobs: Dict[int, JobProvenance] = {}

    # -- ingestion ---------------------------------------------------------

    def record_grouping(self, job_id: int, record: GroupingRecord) -> None:
        """File one grouping record under ``job_id`` (capped)."""
        provenance = self._jobs.setdefault(job_id, JobProvenance(job_id))
        groupings = provenance.groupings
        groupings.append(record)
        if len(groupings) > self.max_groupings_per_job:
            del groupings[1]

    def record_outcome(self, job_id: int, record: OutcomeRecord) -> None:
        """File one outcome record under ``job_id``."""
        self._jobs.setdefault(job_id, JobProvenance(job_id)).outcomes.append(
            record
        )

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._jobs

    def job_ids(self) -> List[int]:
        """Every job id with at least one record, sorted."""
        return sorted(self._jobs)

    def explain(self, job_id: int) -> JobProvenance:
        """The full provenance of one job.

        Raises:
            KeyError: When nothing was recorded for ``job_id``.
        """
        if job_id not in self._jobs:
            raise KeyError(
                f"no provenance recorded for job {job_id}; known jobs: "
                f"{self.job_ids()[:10]}"
            )
        return self._jobs[job_id]

    def get(self, job_id: int) -> Optional[JobProvenance]:
        """Like :meth:`explain` but returns None when unknown."""
        return self._jobs.get(job_id)
