"""Exporters: Chrome-trace JSON, JSONL, and terminal renderings.

Three consumers, three formats:

* :func:`write_chrome_trace` — the Trace Event Format understood by
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.  Instant
  events are laid out on the *simulation* clock (one process, one
  thread per category, plus counter tracks for queue length and free
  GPUs); timing spans are laid out on the *wall* clock in a second
  process so hot-path latencies are not distorted by simulated time.
* :func:`write_jsonl` — one JSON object per event, for machine
  consumption (``jq``, pandas, downstream pipelines).
* :func:`trace_summary` / :func:`format_explain` — terminal text: the
  run-level digest printed by ``repro simulate --trace-out`` and the
  per-job provenance printed by ``repro explain``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.observe.events import EventCategory, TraceEvent
from repro.observe.tracer import Tracer

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "trace_summary",
    "format_explain",
]

#: Microseconds per second (trace-event timestamps are in us).
_US = 1_000_000.0

#: Chrome-trace pid for events on the simulation clock.
_PID_SIM = 1
#: Chrome-trace pid for wall-clock hot-path spans.
_PID_WALL = 2

#: Stable thread ids per category inside the simulation process.
_CATEGORY_TIDS = {
    EventCategory.SIM: 1,
    EventCategory.SCHED: 2,
    EventCategory.GROUP: 3,
    EventCategory.JOB: 4,
    EventCategory.CACHE: 5,
}


def _json_safe(value: Any) -> Any:
    """Coerce event args to JSON-compatible values."""
    if isinstance(value, (tuple, list, set, frozenset)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The tracer's events as a Trace Event Format document.

    Returns a dict ready for ``json.dump``; load the result in
    Perfetto or ``chrome://tracing`` to browse the timeline.
    """
    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID_SIM,
            "tid": 0,
            "args": {"name": "simulation (sim time)"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID_WALL,
            "tid": 0,
            "args": {"name": "hot paths (wall time)"},
        },
    ]
    for category, tid in _CATEGORY_TIDS.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID_SIM,
                "tid": tid,
                "args": {"name": category.value},
            }
        )
    trace_events.append(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID_WALL,
            "tid": 1,
            "args": {"name": "spans"},
        }
    )

    for event in tracer.events:
        args = {k: _json_safe(v) for k, v in event.args.items()}
        if event.is_span:
            trace_events.append(
                {
                    "name": event.name,
                    "cat": event.category.value,
                    "ph": "X",
                    "ts": event.wall_time * _US,
                    "dur": (event.duration or 0.0) * _US,
                    "pid": _PID_WALL,
                    "tid": 1,
                    "args": args,
                }
            )
            continue
        tid = _CATEGORY_TIDS.get(event.category, 9)
        trace_events.append(
            {
                "name": event.name,
                "cat": event.category.value,
                "ph": "i",
                "s": "t",
                "ts": event.sim_time * _US,
                "pid": _PID_SIM,
                "tid": tid,
                "args": args,
            }
        )
        if event.name == "sched.decision":
            for counter in ("queue_length", "free_gpus"):
                if counter in event.args:
                    trace_events.append(
                        {
                            "name": counter,
                            "ph": "C",
                            "ts": event.sim_time * _US,
                            "pid": _PID_SIM,
                            "tid": 0,
                            "args": {counter: event.args[counter]},
                        }
                    )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.observe",
            "dropped_events": tracer.dropped_events,
            "counters": tracer.counters,
        },
    }


def write_chrome_trace(tracer: Tracer, path: Union[str, Path]) -> None:
    """Write :func:`to_chrome_trace` output as JSON to ``path``."""
    Path(path).write_text(json.dumps(to_chrome_trace(tracer)))


def to_jsonl(tracer: Tracer) -> Iterator[str]:
    """One JSON document per event, in recording order."""
    for event in tracer.events:
        payload = event.to_dict()
        if "args" in payload:
            payload["args"] = _json_safe(payload["args"])
        yield json.dumps(payload)


def write_jsonl(tracer: Tracer, path: Union[str, Path]) -> None:
    """Write the event stream as JSON Lines to ``path``."""
    with Path(path).open("w") as handle:
        for line in to_jsonl(tracer):
            handle.write(line + "\n")


def trace_summary(tracer: Tracer) -> str:
    """A terminal digest: event volumes, hottest spans, cache counters."""
    lines: List[str] = []
    by_category: Dict[str, int] = {}
    span_totals: Dict[str, List[float]] = {}
    for event in tracer.events:
        by_category[event.category.value] = (
            by_category.get(event.category.value, 0) + 1
        )
        if event.is_span:
            bucket = span_totals.setdefault(event.name, [0.0, 0.0])
            bucket[0] += 1
            bucket[1] += event.duration or 0.0

    lines.append(
        f"trace: {len(tracer)} events"
        + (f" ({tracer.dropped_events} dropped)" if tracer.dropped_events else "")
    )
    if by_category:
        lines.append(
            "  by category: "
            + ", ".join(
                f"{name}={count}" for name, count in sorted(by_category.items())
            )
        )
    if span_totals:
        lines.append("  hottest spans (wall time):")
        ranked = sorted(
            span_totals.items(), key=lambda item: -item[1][1]
        )[:8]
        for name, (count, total) in ranked:
            lines.append(
                f"    {name:<24s} {int(count):>6d} calls  {total * 1e3:10.1f} ms"
            )
    counters = tracer.counters
    if counters:
        lines.append("  counters:")
        for name in sorted(counters):
            lines.append(f"    {name:<32s} {counters[name]:>10d}")
    if len(tracer.provenance):
        lines.append(
            f"  provenance: {len(tracer.provenance)} jobs with grouping records"
        )
    return "\n".join(lines)


def _format_grouping_line(record, job_id: int) -> List[str]:
    partners = record.partners_of(job_id)
    if partners:
        what = (
            f"grouped with {list(partners)} "
            f"gamma={record.efficiency:.3f} round={record.round_formed}"
            + ("  (seeded: carried over)" if record.seeded else "")
        )
    else:
        what = "ran solo (no interleaving partner chosen)"
    lines = [f"  t={record.sim_time:>9.1f}s  [{record.reason:<10s}] {what}"]
    if record.candidates:
        shown = ", ".join(
            f"{list(c.partners)} @ {c.efficiency:.3f}"
            + ("*" if c.matched else "")
            for c in record.candidates
        )
        lines.append(f"              candidates considered: {shown}")
    return lines


def format_explain(
    tracer: Tracer,
    job_id: int,
    result: Optional[Any] = None,
) -> str:
    """Render one job's decision provenance as terminal text.

    Args:
        tracer: The tracer a simulation ran with.
        job_id: The job to explain.
        result: Optional ``SimulationResult`` for submit/finish/JCT
            context (duck-typed: only ``submit_times``/``finish_times``
            /``jcts`` dicts are read).

    Returns:
        A multi-line report: lifecycle summary, every recorded grouping
        decision (partners, efficiency score, Algorithm 1 round,
        candidates considered), and placement/lifecycle outcomes.
    """
    lines: List[str] = [f"job {job_id} — decision provenance"]
    if result is not None:
        submit = result.submit_times.get(job_id)
        finish = result.finish_times.get(job_id)
        jct = result.jcts.get(job_id)
        parts = []
        if submit is not None:
            parts.append(f"submitted t={submit:.1f}s")
        if finish is not None:
            parts.append(f"finished t={finish:.1f}s")
        if jct is not None:
            parts.append(f"JCT {jct:.1f}s")
        if parts:
            lines.append("  " + "   ".join(parts))

    provenance = tracer.provenance.get(job_id)
    if provenance is None:
        lines.append(
            "  no provenance recorded — was the simulation run with this "
            "tracer attached to a grouping scheduler (e.g. muri-s/muri-l)?"
        )
        return "\n".join(lines)

    if provenance.groupings:
        lines.append(f"grouping decisions ({len(provenance.groupings)}):")
        for record in provenance.groupings:
            lines.extend(_format_grouping_line(record, job_id))
    else:
        lines.append("grouping decisions: none recorded")

    if provenance.outcomes:
        lines.append(f"outcomes ({len(provenance.outcomes)}):")
        for outcome in provenance.outcomes:
            detail = f"  {outcome.detail}" if outcome.detail else ""
            lines.append(
                f"  t={outcome.sim_time:>9.1f}s  {outcome.outcome}{detail}"
            )
    return "\n".join(lines)
