"""Loader for the real Microsoft Philly trace format.

The paper evaluates on the public Philly traces
(https://github.com/msr-fiddle/philly-traces, from Jeon et al.,
ATC '19).  The dataset cannot be redistributed here, but users who
download it can drive every experiment in this repository from the
real data instead of our synthetic equivalents.

``cluster_job_log`` is a JSON array; each entry describes one job::

    {
      "jobid": "application_14199...",
      "vc": "ee9e8c",                      # virtual cluster id
      "submitted_time": "2017-10-03 17:13:54",
      "attempts": [
        {"start_time": "...", "end_time": "...",
         "detail": [{"ip": "m1", "gpus": ["gpu0", ...]}, ...]},
        ...
      ],
      "status": "Pass" | "Killed" | "Failed"
    }

:func:`load_philly_json` turns that into a :class:`~repro.trace.records.Trace`:

* submit time = seconds since the earliest submission in the slice;
* duration = summed attempt running time (the paper uses the trace's
  duration directly);
* GPU count = peak GPUs across attempts, rounded up to a power of two
  (the paper's "common practice" normalization);
* the paper splits by virtual-cluster id — pass ``virtual_cluster``.
"""

from __future__ import annotations

import json
import math
from datetime import datetime
from pathlib import Path
from typing import List, Optional, Union

from repro.trace.records import Trace, TraceRecord

__all__ = ["load_philly_json", "parse_philly_time", "round_up_power_of_two"]

_TIME_FORMAT = "%Y-%m-%d %H:%M:%S"


def parse_philly_time(value: str) -> Optional[datetime]:
    """Parse a Philly timestamp; None for missing/placeholder values."""
    if not value or value.startswith("None"):
        return None
    try:
        return datetime.strptime(value.strip(), _TIME_FORMAT)
    except ValueError:
        return None


def round_up_power_of_two(value: int) -> int:
    """Round a positive integer up to the next power of two."""
    if value < 1:
        raise ValueError("value must be >= 1")
    return 1 << (value - 1).bit_length()


def _attempt_gpus(attempt: dict) -> int:
    return sum(len(d.get("gpus", [])) for d in attempt.get("detail", []))


def _attempt_duration(attempt: dict) -> float:
    start = parse_philly_time(attempt.get("start_time", ""))
    end = parse_philly_time(attempt.get("end_time", ""))
    if start is None or end is None or end <= start:
        return 0.0
    return (end - start).total_seconds()


def load_philly_json(
    path: Union[str, Path],
    virtual_cluster: Optional[str] = None,
    include_failed: bool = False,
    min_duration: float = 30.0,
    name: Optional[str] = None,
) -> Trace:
    """Load a Philly ``cluster_job_log`` file as a :class:`Trace`.

    Args:
        path: Path to the JSON file (array of job entries).
        virtual_cluster: Keep only this ``vc`` (the paper splits the
            trace by virtual cluster id); None keeps every job.
        include_failed: Keep jobs whose final status is not "Pass".
            The paper's scheduler replays completed work, so failed
            jobs are dropped by default.
        min_duration: Drop jobs that ran for less than this many
            seconds (profiling blips).
        name: Trace label; defaults to the file stem plus the vc.

    Returns:
        A trace with submit times rebased to the slice's first
        submission.

    Raises:
        ValueError: If no jobs survive the filters.
    """
    entries = json.loads(Path(path).read_text())
    kept: List[dict] = []
    for entry in entries:
        if virtual_cluster is not None and entry.get("vc") != virtual_cluster:
            continue
        if not include_failed and entry.get("status") != "Pass":
            continue
        submitted = parse_philly_time(entry.get("submitted_time", ""))
        if submitted is None:
            continue
        duration = sum(
            _attempt_duration(a) for a in entry.get("attempts", [])
        )
        if duration < min_duration:
            continue
        gpus = max(
            (_attempt_gpus(a) for a in entry.get("attempts", [])),
            default=0,
        )
        if gpus < 1:
            continue
        kept.append({
            "submitted": submitted,
            "duration": duration,
            "gpus": round_up_power_of_two(gpus),
        })

    if not kept:
        raise ValueError(
            f"no usable jobs in {path}"
            + (f" for vc={virtual_cluster!r}" if virtual_cluster else "")
        )

    base = min(item["submitted"] for item in kept)
    records = [
        TraceRecord(
            job_id=index,
            submit_time=(item["submitted"] - base).total_seconds(),
            duration=item["duration"],
            num_gpus=item["gpus"],
        )
        for index, item in enumerate(kept)
    ]
    label = name or (
        Path(path).stem + (f"-{virtual_cluster}" if virtual_cluster else "")
    )
    return Trace(name=label, records=tuple(records))
