"""CSV ingestion adapter for the public Philly trace schema.

The flattened CSV export of the Philly ``cluster_job_log`` (one row
per *attempt*; jobs with several attempts repeat the job columns)::

    job_id,vc,status,submitted_time,attempt_start_time,attempt_end_time,num_gpus
    application_001,ee9e8c,Pass,2017-10-03 17:13:54,2017-10-03 17:20:00,2017-10-03 19:20:00,4

:func:`load_philly_csv` normalizes that into a
:class:`~repro.trace.records.Trace` alongside the JSON loader, with
identical semantics — final-status filtering, summed attempt
durations, peak GPUs rounded up to a power of two, submit times
rebased to the slice's earliest submission — plus *structured
skip/error accounting*: real trace dumps contain malformed rows,
out-of-order timestamps, and open attempt windows, and silently
dropping them makes replay results unreproducible.  Every dropped row
and job is counted by reason in the returned :class:`IngestReport`.

:func:`write_philly_csv` is the inverse for synthetic traces: it
serializes a :class:`Trace` into the same schema so 100k-job replay
runs can exercise the full ingestion path end to end (see
``repro replay --via-csv``).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.trace.philly_loader import parse_philly_time, round_up_power_of_two
from repro.trace.records import Trace, TraceRecord

__all__ = [
    "CSV_FIELDS",
    "IngestError",
    "IngestReport",
    "load_philly_csv",
    "write_philly_csv",
]

#: Required header columns of the flattened Philly CSV schema.
CSV_FIELDS: Tuple[str, ...] = (
    "job_id",
    "vc",
    "status",
    "submitted_time",
    "attempt_start_time",
    "attempt_end_time",
    "num_gpus",
)

#: Timestamp format shared with the JSON loader.
_TIME_FORMAT = "%Y-%m-%d %H:%M:%S"

#: Detail cap: reports keep counting past it but stop storing rows.
_MAX_ERROR_DETAILS = 64


@dataclass(frozen=True)
class IngestError:
    """One dropped row (or job), with provenance.

    Attributes:
        line: 1-based line number in the CSV file (header is line 1);
            0 for job-level drops that aggregate several rows.
        job_id: The raw ``job_id`` cell, when one was readable.
        reason: Machine-readable reason code (a key of
            :attr:`IngestReport.skipped`).
    """

    line: int
    job_id: Optional[str]
    reason: str


@dataclass
class IngestReport:
    """Structured accounting of one :func:`load_philly_csv` run.

    Attributes:
        rows_read: Data rows consumed (header excluded).
        jobs_seen: Distinct job ids encountered.
        jobs_loaded: Jobs that became trace records.
        skipped: ``reason -> count`` over every dropped row and job.
            Row-level reasons: ``missing_field``, ``bad_gpus``
            (unparseable or negative), ``zero_gpus`` (an explicit 0 —
            a CPU-only attempt, common in the public Philly dump),
            ``bad_attempt_window``.  Job-level reasons:
            ``filtered_vc``, ``filtered_status``, ``bad_submit_time``,
            ``too_short``, ``no_gpus``.
        errors: Detail for the first :data:`_MAX_ERROR_DETAILS`
            drops, in file order.
    """

    rows_read: int = 0
    jobs_seen: int = 0
    jobs_loaded: int = 0
    skipped: Dict[str, int] = field(default_factory=dict)
    errors: List[IngestError] = field(default_factory=list)

    def record(self, reason: str, line: int, job_id: Optional[str]) -> None:
        """Count one drop, keeping bounded detail."""
        self.skipped[reason] = self.skipped.get(reason, 0) + 1
        if len(self.errors) < _MAX_ERROR_DETAILS:
            self.errors.append(IngestError(line, job_id, reason))

    @property
    def total_skipped(self) -> int:
        """Total drops across every reason."""
        return sum(self.skipped.values())

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (used by the CLI and tests)."""
        return {
            "rows_read": self.rows_read,
            "jobs_seen": self.jobs_seen,
            "jobs_loaded": self.jobs_loaded,
            "skipped": dict(sorted(self.skipped.items())),
            "errors": [
                {"line": e.line, "job_id": e.job_id, "reason": e.reason}
                for e in self.errors
            ],
        }


@dataclass
class _JobRows:
    """Accumulated attempt rows of one job id, in file order."""

    first_line: int
    vc: Optional[str] = None
    status: Optional[str] = None
    submitted_raw: str = ""
    duration: float = 0.0
    peak_gpus: int = 0


def _attempt_window(start_raw: str, end_raw: str) -> Optional[float]:
    """Seconds of one attempt, or None when the window is unusable.

    Open windows (either bound missing or a ``None`` placeholder) and
    inverted windows (end before start — the out-of-order timestamps
    real dumps contain) are both unusable.
    """
    start = parse_philly_time(start_raw)
    end = parse_philly_time(end_raw)
    if start is None or end is None or end <= start:
        return None
    return (end - start).total_seconds()


def load_philly_csv(
    path: Union[str, Path],
    virtual_cluster: Optional[str] = None,
    include_failed: bool = False,
    min_duration: float = 30.0,
    name: Optional[str] = None,
) -> Tuple[Trace, IngestReport]:
    """Load a flattened Philly CSV as a :class:`Trace` plus a report.

    Args:
        path: Path to the CSV file (header row required).
        virtual_cluster: Keep only this ``vc``; None keeps every job.
        include_failed: Keep jobs whose final status is not "Pass".
        min_duration: Drop jobs whose summed attempt time is below
            this many seconds.
        name: Trace label; defaults to the file stem plus the vc.

    Returns:
        ``(trace, report)``; the report counts every dropped row and
        job by reason.

    Raises:
        ValueError: On a missing/invalid header, or when no jobs
            survive the filters (the report's counters explain why).
    """
    report = IngestReport()
    jobs: Dict[str, _JobRows] = {}

    with Path(path).open(newline="") as handle:
        reader = csv.DictReader(handle)
        header = reader.fieldnames or []
        missing = [col for col in CSV_FIELDS if col not in header]
        if missing:
            raise ValueError(
                f"{path} is missing required columns {missing}; "
                f"expected {list(CSV_FIELDS)}"
            )
        for row in reader:
            line = reader.line_num
            report.rows_read += 1
            job_id = (row.get("job_id") or "").strip()
            if not job_id:
                report.record("missing_field", line, None)
                continue
            if job_id not in jobs:
                jobs[job_id] = _JobRows(first_line=line)
            acc = jobs[job_id]
            # Job columns: first non-empty value wins, so repeated
            # attempt rows cannot silently rewrite a job's identity.
            if not acc.vc:
                acc.vc = (row.get("vc") or "").strip() or None
            if not acc.status:
                acc.status = (row.get("status") or "").strip() or None
            if not acc.submitted_raw:
                acc.submitted_raw = (row.get("submitted_time") or "").strip()

            gpus_raw = (row.get("num_gpus") or "").strip()
            try:
                gpus = int(gpus_raw)
            except ValueError:
                report.record("bad_gpus", line, job_id)
                continue
            if gpus == 0:
                # CPU-only attempts are a distinct population in the
                # public dump: call them out instead of lumping them
                # with malformed rows (and never round 0 up to 1 GPU).
                report.record("zero_gpus", line, job_id)
                continue
            if gpus < 0:
                report.record("bad_gpus", line, job_id)
                continue
            window = _attempt_window(
                (row.get("attempt_start_time") or "").strip(),
                (row.get("attempt_end_time") or "").strip(),
            )
            if window is None:
                report.record("bad_attempt_window", line, job_id)
                continue
            acc.duration += window
            acc.peak_gpus = max(acc.peak_gpus, gpus)

    report.jobs_seen = len(jobs)
    kept: List[Tuple[datetime, float, int]] = []
    for job_id, acc in jobs.items():
        if virtual_cluster is not None and acc.vc != virtual_cluster:
            report.record("filtered_vc", acc.first_line, job_id)
            continue
        if not include_failed and acc.status != "Pass":
            report.record("filtered_status", acc.first_line, job_id)
            continue
        submitted = parse_philly_time(acc.submitted_raw)
        if submitted is None:
            report.record("bad_submit_time", acc.first_line, job_id)
            continue
        if acc.peak_gpus < 1:
            report.record("no_gpus", acc.first_line, job_id)
            continue
        if acc.duration < min_duration:
            report.record("too_short", acc.first_line, job_id)
            continue
        kept.append((submitted, acc.duration, acc.peak_gpus))

    if not kept:
        raise ValueError(
            f"no usable jobs in {path}"
            + (f" for vc={virtual_cluster!r}" if virtual_cluster else "")
            + f" (skipped: {dict(sorted(report.skipped.items()))})"
        )

    base = min(submitted for submitted, _, _ in kept)
    records = [
        TraceRecord(
            job_id=index,
            submit_time=(submitted - base).total_seconds(),
            duration=duration,
            num_gpus=round_up_power_of_two(gpus),
        )
        for index, (submitted, duration, gpus) in enumerate(kept)
    ]
    report.jobs_loaded = len(records)
    label = name or (
        Path(path).stem + (f"-{virtual_cluster}" if virtual_cluster else "")
    )
    return Trace(name=label, records=tuple(records)), report


def write_philly_csv(
    trace: Trace,
    path: Union[str, Path],
    vc: str = "vc0",
    base_time: Optional[datetime] = None,
) -> int:
    """Serialize a trace into the flattened Philly CSV schema.

    Each record becomes one single-attempt ``Pass`` row whose attempt
    window spans exactly the record's duration, so
    ``load_philly_csv(write_philly_csv(t))`` reconstructs ``t`` up to
    power-of-two GPU rounding and the ``min_duration`` floor.

    Args:
        trace: The trace to serialize.
        path: Destination CSV path (overwritten).
        vc: Virtual-cluster label stamped on every row.
        base_time: Absolute wall-clock anchor of ``submit_time == 0``;
            defaults to the Philly collection epoch (2017-10-01).

    Returns:
        Number of data rows written.
    """
    anchor = base_time if base_time is not None else datetime(2017, 10, 1)
    destination = Path(path)
    with destination.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_FIELDS)
        for record in trace.records:
            submitted = anchor + timedelta(seconds=record.submit_time)
            start = submitted
            end = start + timedelta(seconds=record.duration)
            writer.writerow([
                f"job_{record.job_id}",
                vc,
                "Pass",
                submitted.strftime(_TIME_FORMAT),
                start.strftime(_TIME_FORMAT),
                end.strftime(_TIME_FORMAT),
                record.num_gpus,
            ])
    return len(trace.records)
