"""Workload traces: records, synthesis, and job materialization."""

from repro.trace.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
    zero_arrivals,
)
from repro.trace.philly import (
    PAPER_TRACE_IDS,
    PhillyTraceGenerator,
    TRACE_PRESETS,
    TracePreset,
    generate_trace,
)
from repro.trace.philly_csv import (
    IngestError,
    IngestReport,
    load_philly_csv,
    write_philly_csv,
)
from repro.trace.philly_loader import load_philly_json
from repro.trace.records import Trace, TraceRecord
from repro.trace.workload import assign_models, build_jobs

__all__ = [
    "Trace",
    "TraceRecord",
    "TracePreset",
    "TRACE_PRESETS",
    "PAPER_TRACE_IDS",
    "PhillyTraceGenerator",
    "generate_trace",
    "load_philly_json",
    "load_philly_csv",
    "write_philly_csv",
    "IngestError",
    "IngestReport",
    "assign_models",
    "build_jobs",
    "poisson_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
    "zero_arrivals",
]
