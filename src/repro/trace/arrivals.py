"""Arrival processes for synthetic traces.

Philly-style production traces show bursty, diurnally modulated
arrivals.  These generators produce submission-time sequences for the
trace synthesizer; all randomness flows through an explicit
``random.Random`` so traces are reproducible from a seed.
"""

from __future__ import annotations

import math
import random
from typing import List

__all__ = [
    "poisson_arrivals",
    "diurnal_arrivals",
    "bursty_arrivals",
    "zero_arrivals",
]


def poisson_arrivals(
    rng: random.Random, num_jobs: int, mean_interarrival: float
) -> List[float]:
    """Homogeneous Poisson process: exponential inter-arrival times."""
    if mean_interarrival <= 0:
        raise ValueError("mean_interarrival must be > 0")
    times: List[float] = []
    now = 0.0
    for _ in range(num_jobs):
        now += rng.expovariate(1.0 / mean_interarrival)
        times.append(now)
    return times


def diurnal_arrivals(
    rng: random.Random,
    num_jobs: int,
    mean_interarrival: float,
    period: float = 86400.0,
    depth: float = 0.6,
) -> List[float]:
    """Poisson process with a sinusoidal day/night rate modulation.

    Args:
        rng: Source of randomness.
        num_jobs: Jobs to generate.
        mean_interarrival: Average spacing at the mean rate.
        period: Modulation period in seconds (one day by default).
        depth: Modulation depth in [0, 1); the instantaneous rate is
            ``base * (1 + depth * sin(2 pi t / period))``, thinned.
    """
    if not 0 <= depth < 1:
        raise ValueError("depth must be in [0, 1)")
    # Thinning: draw at the peak rate, accept proportionally.
    peak_interarrival = mean_interarrival / (1.0 + depth)
    times: List[float] = []
    now = 0.0
    while len(times) < num_jobs:
        now += rng.expovariate(1.0 / peak_interarrival)
        rate_factor = (1.0 + depth * math.sin(2 * math.pi * now / period)) / (
            1.0 + depth
        )
        if rng.random() < rate_factor:
            times.append(now)
    return times


def bursty_arrivals(
    rng: random.Random,
    num_jobs: int,
    mean_interarrival: float,
    burst_fraction: float = 0.3,
    burst_size: int = 8,
) -> List[float]:
    """Poisson arrivals where some jobs land in near-simultaneous bursts.

    Models users submitting hyper-parameter sweeps: a burst drops
    ``burst_size`` jobs within a few seconds of one another.
    """
    if not 0 <= burst_fraction <= 1:
        raise ValueError("burst_fraction must be in [0, 1]")
    times: List[float] = []
    now = 0.0
    while len(times) < num_jobs:
        now += rng.expovariate(1.0 / mean_interarrival)
        if rng.random() < burst_fraction:
            for _ in range(min(burst_size, num_jobs - len(times))):
                times.append(now + rng.uniform(0.0, 5.0))
        else:
            times.append(now)
    times.sort()
    return times[:num_jobs]


def zero_arrivals(num_jobs: int) -> List[float]:
    """Every job submitted at t = 0 (the paper's prime-trace variants)."""
    return [0.0] * num_jobs
