"""Synthetic Philly-like trace generation.

The paper evaluates on four virtual-cluster slices of the public
Microsoft Philly traces (992-5755 jobs each).  The raw traces are not
redistributable, so this module synthesizes traces with the same
published statistical shape:

* heavy-tailed (log-normal) job durations spanning minutes to days;
* power-of-two GPU counts dominated by single-GPU jobs (the Philly
  analysis paper reports >80% of jobs use <= 1 machine, most 1 GPU);
* bursty arrivals (hyper-parameter sweeps submit many jobs at once).

Four presets mirror the characters the paper attributes to its traces,
most notably trace 3: lightly loaded, with several very long jobs
submitted near the beginning (the reason Muri shows no makespan
speedup there).

All generation is seeded; the same preset + seed + size yields an
identical trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.trace.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
    zero_arrivals,
)
from repro.trace.records import Trace, TraceRecord

__all__ = [
    "TracePreset",
    "PhillyTraceGenerator",
    "TRACE_PRESETS",
    "generate_trace",
    "PAPER_TRACE_IDS",
]

#: Trace ids used throughout the paper's figures.
PAPER_TRACE_IDS = ("1", "2", "3", "4")


@dataclass(frozen=True)
class TracePreset:
    """Statistical shape of one synthetic trace.

    Attributes:
        name: Preset label ("trace-1" .. "trace-4").
        num_jobs: Default job count (paper-scale).
        mean_interarrival: Mean seconds between submissions, expressed
            per 1000 jobs of paper scale; it is automatically loosened
            when a smaller trace is requested so the offered load stays
            comparable.
        duration_median: Median job duration in seconds.
        duration_sigma: Log-normal sigma of durations (heavier tail
            for larger sigma).
        duration_cap: Upper clip for durations.
        gpu_distribution: ``{num_gpus: probability}``.
        arrivals: "poisson", "bursty", or "diurnal".
        long_head_jobs: Number of extra-long jobs forced into the first
            5% of submissions (trace 3's defining quirk).
        long_head_duration: Duration of those long head jobs.
        target_load: Offered load (GPU-demand over capacity x span)
            relative to ``reference_gpus``.  Submission times are
            rescaled to hit this exactly, so a scaled-down trace keeps
            the preset's congestion level.
        reference_gpus: Cluster size the load targets (the paper's 64).
    """

    name: str
    num_jobs: int
    mean_interarrival: float
    duration_median: float
    duration_sigma: float
    duration_cap: float
    gpu_distribution: Dict[int, float]
    arrivals: str = "bursty"
    long_head_jobs: int = 0
    long_head_duration: float = 0.0
    target_load: Optional[float] = None
    reference_gpus: int = 64


_COMMON_GPUS = {1: 0.62, 2: 0.14, 4: 0.12, 8: 0.08, 16: 0.03, 32: 0.01}

#: The four evaluation traces.  Job counts straddle the paper's
#: 992-5755 range; loads differ so scheduler gaps differ per trace as
#: in Figs. 9-10.
TRACE_PRESETS: Dict[str, TracePreset] = {
    "1": TracePreset(
        name="trace-1",
        num_jobs=992,
        mean_interarrival=40.0,
        duration_median=900.0,
        duration_sigma=1.2,
        duration_cap=6 * 3600.0,
        gpu_distribution=dict(_COMMON_GPUS),
        arrivals="bursty",
        target_load=3.0,
    ),
    "2": TracePreset(
        name="trace-2",
        num_jobs=2463,
        mean_interarrival=18.0,
        duration_median=700.0,
        duration_sigma=1.4,
        duration_cap=8 * 3600.0,
        gpu_distribution={1: 0.50, 2: 0.18, 4: 0.16, 8: 0.10, 16: 0.04, 32: 0.02},
        arrivals="bursty",
        target_load=3.0,
    ),
    "3": TracePreset(
        name="trace-3",
        num_jobs=1277,
        mean_interarrival=120.0,
        duration_median=500.0,
        duration_sigma=1.1,
        duration_cap=4 * 3600.0,
        gpu_distribution=dict(_COMMON_GPUS),
        arrivals="poisson",
        long_head_jobs=6,
        long_head_duration=12 * 3600.0,
        target_load=0.55,
    ),
    "4": TracePreset(
        name="trace-4",
        num_jobs=5755,
        mean_interarrival=10.0,
        duration_median=400.0,
        duration_sigma=1.5,
        duration_cap=6 * 3600.0,
        gpu_distribution={1: 0.70, 2: 0.12, 4: 0.10, 8: 0.06, 16: 0.015, 32: 0.005},
        arrivals="diurnal",
        target_load=3.5,
    ),
}


class PhillyTraceGenerator:
    """Seeded generator for Philly-like synthetic traces."""

    def __init__(self, preset: TracePreset, seed: int = 0) -> None:
        self.preset = preset
        self.seed = seed

    def generate(self, num_jobs: Optional[int] = None) -> Trace:
        """Synthesize a trace.

        Args:
            num_jobs: Override the preset's job count (benchmarks use
                scaled-down traces for runtime).  The arrival rate is
                kept proportionate so the offered load matches the
                preset regardless of size.
        """
        preset = self.preset
        n = num_jobs if num_jobs is not None else preset.num_jobs
        if n < 1:
            raise ValueError("num_jobs must be >= 1")
        # zlib.crc32 is stable across processes (str hashes are salted).
        import zlib

        seed_material = f"{self.seed}/{preset.name}/{n}".encode()
        rng = random.Random(zlib.crc32(seed_material))

        submit_times = self._arrival_times(rng, n)
        durations = [self._duration(rng) for _ in range(n)]
        gpus = [self._gpus(rng) for _ in range(n)]

        # Trace-3 quirk: plant long jobs near the head of the trace.
        head = max(1, n // 20)
        planted = min(preset.long_head_jobs, head)
        for slot in range(planted):
            index = rng.randrange(head)
            durations[index] = preset.long_head_duration * rng.uniform(0.8, 1.2)

        # Rescale submissions so the offered load matches the preset
        # regardless of trace size or arrival-process quirks.
        if preset.target_load is not None and n > 1:
            span = max(submit_times) or 1.0
            work = sum(d * g for d, g in zip(durations, gpus))
            current_load = work / (span * preset.reference_gpus)
            scale = current_load / preset.target_load
            submit_times = [t * scale for t in submit_times]

        records = [
            TraceRecord(
                job_id=i,
                submit_time=submit_times[i],
                duration=durations[i],
                num_gpus=gpus[i],
            )
            for i in range(n)
        ]
        return Trace(name=preset.name, records=tuple(records))

    # -- internals ---------------------------------------------------------

    def _arrival_times(self, rng: random.Random, n: int) -> List[float]:
        preset = self.preset
        # Absolute rate does not matter: target_load rescaling pins the
        # offered load afterwards.  The process only shapes burstiness.
        interarrival = preset.mean_interarrival
        if preset.arrivals == "poisson":
            return poisson_arrivals(rng, n, interarrival)
        if preset.arrivals == "bursty":
            return bursty_arrivals(rng, n, interarrival)
        if preset.arrivals == "diurnal":
            return diurnal_arrivals(rng, n, interarrival)
        raise ValueError(f"unknown arrival process {preset.arrivals!r}")

    def _duration(self, rng: random.Random) -> float:
        import math

        mu = math.log(self.preset.duration_median)
        value = rng.lognormvariate(mu, self.preset.duration_sigma)
        return min(max(value, 30.0), self.preset.duration_cap)

    def _gpus(self, rng: random.Random) -> int:
        roll = rng.random()
        cumulative = 0.0
        for count, probability in sorted(self.preset.gpu_distribution.items()):
            cumulative += probability
            if roll < cumulative:
                return count
        return max(self.preset.gpu_distribution)


def generate_trace(
    trace_id: str,
    num_jobs: Optional[int] = None,
    seed: int = 0,
    at_time_zero: bool = False,
) -> Trace:
    """Convenience front-end: synthesize one of the paper's traces.

    Args:
        trace_id: "1".."4", optionally with a trailing apostrophe
            ("1'") or "-prime" suffix for the all-at-zero variant.
        num_jobs: Optional size override.
        seed: Generator seed.
        at_time_zero: Force the prime variant.
    """
    key = trace_id.strip()
    prime = at_time_zero
    if key.endswith("'"):
        key = key[:-1]
        prime = True
    if key.endswith("-prime"):
        key = key[: -len("-prime")]
        prime = True
    if key not in TRACE_PRESETS:
        raise KeyError(
            f"unknown trace id {trace_id!r}; valid: {', '.join(TRACE_PRESETS)}"
        )
    trace = PhillyTraceGenerator(TRACE_PRESETS[key], seed=seed).generate(num_jobs)
    return trace.at_time_zero() if prime else trace
