"""Trace records: the (submit time, duration, GPU count) tuples that
drive every evaluation.

The paper uses the public Microsoft Philly traces, which expose exactly
these three fields per job — the DL model is *not* part of the trace
and is assigned randomly from the evaluation mix (section 6.1).  A
:class:`Trace` here is that same shape, plus helpers for the paper's
trace manipulations: the "prime" variants with all submissions at time
zero and the busiest-interval selection used for testbed runs.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One job as it appears in a cluster trace.

    Attributes:
        job_id: Stable identifier within the trace.
        submit_time: Arrival time in seconds from trace start.
        duration: Solo running time in seconds.
        num_gpus: GPUs requested (a power of two in practice).
        model: Optional model name; None means "assign one randomly"
            exactly as the paper does for Philly jobs.
    """

    job_id: int
    submit_time: float
    duration: float
    num_gpus: int
    model: Optional[str] = None

    def __post_init__(self) -> None:
        if self.submit_time < 0:
            raise ValueError("submit_time must be >= 0")
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")


@dataclass(frozen=True)
class Trace:
    """An immutable sequence of trace records plus a name.

    Attributes:
        name: Trace label (e.g. "trace-1", "trace-1-prime").
        records: Job records sorted by submission time.
    """

    name: str
    records: tuple

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.records, key=lambda r: (r.submit_time, r.job_id))
        )
        object.__setattr__(self, "records", ordered)

    # -- basic container behaviour -----------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self.records[index]

    # -- summary -----------------------------------------------------------

    @property
    def total_gpu_seconds(self) -> float:
        """Aggregate demand: sum of duration x GPUs over all jobs."""
        return sum(r.duration * r.num_gpus for r in self.records)

    @property
    def makespan_lower_bound(self) -> float:
        """Span from first submission to last solo completion if the
        cluster were infinitely large."""
        if not self.records:
            return 0.0
        return max(r.submit_time + r.duration for r in self.records) - min(
            r.submit_time for r in self.records
        )

    def load_factor(self, total_gpus: int) -> float:
        """Offered load relative to cluster capacity over the trace span."""
        span = max(
            (r.submit_time for r in self.records), default=0.0
        ) or 1.0
        return self.total_gpu_seconds / (max(span, 1.0) * total_gpus)

    # -- paper transformations ----------------------------------------------

    def at_time_zero(self) -> "Trace":
        """The paper's "prime" variant: every job submitted at t = 0.

        Used in Figs. 9, 10 (traces 1'-4') and throughout Fig. 12 to
        raise contention.
        """
        return Trace(
            name=f"{self.name}-prime",
            records=tuple(
                replace(r, submit_time=0.0) for r in self.records
            ),
        )

    def busiest_interval(self, num_jobs: int) -> "Trace":
        """The densest submission window containing ``num_jobs`` jobs.

        The paper selects "the busiest interval that contains 400 jobs"
        for testbed experiments.  Submission times are rebased so the
        window starts at zero.
        """
        if num_jobs >= len(self.records):
            return self
        if num_jobs < 1:
            raise ValueError("num_jobs must be >= 1")
        submits = [r.submit_time for r in self.records]
        best_start = 0
        best_span = float("inf")
        for start in range(len(submits) - num_jobs + 1):
            span = submits[start + num_jobs - 1] - submits[start]
            if span < best_span:
                best_span = span
                best_start = start
        window = self.records[best_start:best_start + num_jobs]
        base = window[0].submit_time
        return Trace(
            name=f"{self.name}-busiest{num_jobs}",
            records=tuple(
                replace(r, submit_time=r.submit_time - base) for r in window
            ),
        )

    def head(self, num_jobs: int) -> "Trace":
        """The first ``num_jobs`` submissions."""
        return Trace(
            name=f"{self.name}-head{num_jobs}",
            records=self.records[:num_jobs],
        )

    def scaled_durations(self, factor: float) -> "Trace":
        """Uniformly scale every job's duration (load knob)."""
        if factor <= 0:
            raise ValueError("factor must be > 0")
        return Trace(
            name=f"{self.name}-x{factor:g}",
            records=tuple(
                replace(r, duration=r.duration * factor) for r in self.records
            ),
        )

    # -- persistence -----------------------------------------------------------

    _CSV_FIELDS = ("job_id", "submit_time", "duration", "num_gpus", "model")

    def to_csv(self, path: Union[str, Path]) -> None:
        """Write the trace as CSV with a header row."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self._CSV_FIELDS)
            for r in self.records:
                writer.writerow(
                    [r.job_id, r.submit_time, r.duration, r.num_gpus, r.model or ""]
                )

    @classmethod
    def from_csv(cls, path: Union[str, Path], name: Optional[str] = None) -> "Trace":
        """Read a trace written by :meth:`to_csv`."""
        records: List[TraceRecord] = []
        with open(path, newline="") as handle:
            for row in csv.DictReader(handle):
                records.append(
                    TraceRecord(
                        job_id=int(row["job_id"]),
                        submit_time=float(row["submit_time"]),
                        duration=float(row["duration"]),
                        num_gpus=int(row["num_gpus"]),
                        model=row.get("model") or None,
                    )
                )
        return cls(name=name or Path(path).stem, records=tuple(records))

    def to_json(self, path: Union[str, Path]) -> None:
        """Write the trace as a JSON document."""
        payload = {
            "name": self.name,
            "records": [
                {
                    "job_id": r.job_id,
                    "submit_time": r.submit_time,
                    "duration": r.duration,
                    "num_gpus": r.num_gpus,
                    "model": r.model,
                }
                for r in self.records
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace written by :meth:`to_json`."""
        payload = json.loads(Path(path).read_text())
        return cls(
            name=payload["name"],
            records=tuple(
                TraceRecord(**record) for record in payload["records"]
            ),
        )

    @classmethod
    def from_records(
        cls, name: str, records: Iterable[TraceRecord]
    ) -> "Trace":
        """Build a named trace from any iterable of records."""
        return cls(name=name, records=tuple(records))
