"""Turning traces into schedulable jobs.

A trace supplies (submit time, duration, GPU count); the model behind
each job is assigned randomly from the evaluation mix, exactly as the
paper does for Philly jobs whose model is unknown (section 6.1).  The
number of training iterations is derived from the trace duration and
the model's per-iteration time.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.jobs.job import JobSpec
from repro.models.zoo import DEFAULT_MODELS, get_model
from repro.trace.records import Trace

__all__ = ["build_jobs", "assign_models"]


def assign_models(
    trace: Trace,
    models: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[str]:
    """Choose a model name for every record in the trace.

    Records that already carry a model keep it; the rest draw uniformly
    from ``models`` with a seeded RNG.
    """
    pool = list(models) if models is not None else list(DEFAULT_MODELS)
    if not pool:
        raise ValueError("the model pool must not be empty")
    rng = random.Random(seed)
    return [record.model or rng.choice(pool) for record in trace]


def build_jobs(
    trace: Trace,
    models: Optional[Sequence[str]] = None,
    seed: int = 0,
    network_scaling: float = 0.0,
) -> List[JobSpec]:
    """Materialize a trace into :class:`JobSpec` objects.

    Args:
        trace: The driving trace.
        models: Model pool to draw from (defaults to the Table 3 mix).
        seed: RNG seed for model assignment.
        network_scaling: Optional growth of the synchronization stage
            with worker count (see
            :meth:`repro.models.ModelProfile.stage_profile`).

    Returns:
        One spec per record.  ``num_iterations`` is
        ``duration / iteration_time`` (at least one), so the job's solo
        running time approximates the trace duration, the paper's
        construction.
    """
    assigned = assign_models(trace, models, seed)
    specs: List[JobSpec] = []
    for record, model_name in zip(trace, assigned):
        model = get_model(model_name)
        profile = model.stage_profile(record.num_gpus, network_scaling)
        iterations = max(1, round(record.duration / profile.iteration_time))
        specs.append(
            JobSpec(
                profile=profile,
                num_gpus=record.num_gpus,
                submit_time=record.submit_time,
                num_iterations=iterations,
                model=model.name,
                name=f"{trace.name}-job{record.job_id}",
                job_id=record.job_id,
                memory=model.memory,
            )
        )
    return specs
