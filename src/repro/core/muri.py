"""The Muri scheduler: multi-resource interleaving for DL training.

Muri (section 4.2, "Optimizing for average JCT"):

1. sort the queue by priority — SRSF when durations are known
   (Muri-S), 2D-LAS when unknown (Muri-L);
2. dequeue enough jobs from the head that, grouped ``k``-fold, they can
   fully utilize the cluster (Algorithm 1's first ``n`` jobs);
3. run the Blossom-based multi-round grouping algorithm on measured
   profiles to form interleaving groups within GPU-count buckets;
4. run the groups, highest priority first, until capacity is filled.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.core.group import JobGroup
from repro.core.grouping import MultiRoundGrouper
from repro.core.priorities import PriorityPolicy, get_policy
from repro.jobs.job import Job
from repro.jobs.resources import NUM_RESOURCES
from repro.observe.events import EventCategory
from repro.observe.provenance import GroupingRecord
from repro.observe.tracer import Tracer, maybe_span
from repro.profiler.profiler import ResourceProfiler
from repro.schedulers.base import Scheduler, group_key

__all__ = ["MuriScheduler"]


class MuriScheduler(Scheduler):
    """Muri-S / Muri-L scheduler.

    Args:
        policy: Queue priority — "srsf" gives Muri-S (durations known),
            "las2d" gives Muri-L (durations unknown).  Any policy from
            ``repro.core.priorities`` is accepted.
        profiler: Source of measured stage profiles.  None means
            perfect knowledge (profiles read straight from specs).
        max_group_size: Jobs per interleaving group (Fig. 12 sweeps
            2-4; the paper's default is k = 4 resource types).
        matcher: "blossom" (default), "greedy" ("w/o Blossom"
            ablation), or "exact".
        ordering: Stage ordering executed — "best" (default) or
            "worst" (Fig. 11 ablation).
        min_efficiency: Matching edges below this efficiency are not
            created, leaving badly paired jobs solo.
        gpu_memory_gb: Optional per-GPU memory capacity for the
            grouper's feasibility check (section 2.2).
        gpu_memory_by_type: Optional ``generation name -> memory_gb``
            per-type capacities for the grouper: affine groups are
            checked against their landing generation's capacity
            instead of the flat cap (see
            :class:`~repro.core.grouping.MultiRoundGrouper`).
        sparsify_threshold: Bucket size at which the grouper switches
            to a bounded-degree candidate graph ("Decision latency and
            scaling" in docs/simulation_model.md); None disables it.
        max_degree: Candidate edges kept per node when sparsifying.
        cache_quantum: Duration grid for the grouper's decision cache
            keys; a positive value keeps cache hits alive under
            profiling noise.
        event_regroup: When True, completion events re-run the full
            grouping pass instead of serving the stale overflow cache
            from the last tick.  The full pass stays cheap because the
            grouper's per-bucket decision cache only re-matches the
            GPU-count buckets the event actually changed, so every
            decision is identical to a cold re-solve — the online
            service's incremental mode (verified by
            :class:`repro.verify.IncrementalOracle`).  Consecutive
            events that do not change the dequeued batch, priorities,
            running groups or capacity additionally hit a whole-plan
            memo and skip the grouping pass outright (the batched
            warm-regroup path).
        workers: Process-pool width for the grouper's per-bucket
            matchings; ``1`` (default) is fully serial.  See
            :class:`~repro.core.grouping.MultiRoundGrouper`.
        tracer: Optional :class:`~repro.observe.Tracer`.  When enabled,
            decide() calls are timed, group formations are emitted as
            events, and every grouping decision is filed per member job
            in the tracer's :class:`~repro.observe.ProvenanceStore`
            (the data behind ``repro explain``).
    """

    def __init__(
        self,
        policy: str = "srsf",
        profiler: Optional[ResourceProfiler] = None,
        max_group_size: int = NUM_RESOURCES,
        matcher: str = "blossom",
        ordering: str = "best",
        min_efficiency: float = 0.0,
        gpu_memory_gb: Optional[float] = None,
        gpu_memory_by_type: Optional[Dict[str, float]] = None,
        sparsify_threshold: Optional[int] = 128,
        max_degree: int = 8,
        cache_quantum: float = 0.0,
        event_regroup: bool = False,
        workers: int = 1,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.policy: PriorityPolicy = (
            get_policy(policy) if isinstance(policy, str) else policy
        )
        self.policy_name = policy if isinstance(policy, str) else "custom"
        self.profiler = profiler
        self.max_group_size = max_group_size
        self.event_regroup = event_regroup
        self.tracer = tracer
        self._plan_memo: Optional[tuple] = None
        self.grouper = MultiRoundGrouper(
            max_group_size=max_group_size,
            matcher=matcher,
            ordering=ordering,
            min_efficiency=min_efficiency,
            gpu_memory_gb=gpu_memory_gb,
            gpu_memory_by_type=gpu_memory_by_type,
            sparsify_threshold=sparsify_threshold,
            max_degree=max_degree,
            cache_quantum=cache_quantum,
            workers=workers,
            tracer=tracer,
        )
        self.duration_aware = self.policy_name in ("srsf", "srtf", "sjf")
        suffix = "S" if self.duration_aware else "L"
        self.name = f"Muri-{suffix}"
        if matcher != "blossom":
            self.name += f" ({matcher})"
        if ordering != "best":
            self.name += f" ({ordering} ordering)"
        if max_group_size != NUM_RESOURCES:
            self.name += f" [{max_group_size}-job]"

    def configure(
        self,
        tracer: Optional[Tracer] = None,
        event_regroup: Optional[bool] = None,
        workers: Optional[int] = None,
    ) -> "MuriScheduler":
        """Apply the uniform options, threading them into the grouper.

        The grouper's process pool is created lazily on first parallel
        dispatch, so adjusting ``workers`` here (before any decide())
        is equivalent to having passed it to the constructor.

        Args:
            tracer: Tracer for decide() spans, group events, and
                per-job provenance; also attached to the grouper.
            event_regroup: Toggle the full-pass-on-event mode.
            workers: Grouper process-pool width.

        Returns:
            ``self``.
        """
        if tracer is not None:
            self.tracer = tracer
            self.grouper.tracer = tracer
        if event_regroup is not None:
            self.event_regroup = event_regroup
        if workers is not None:
            self.grouper.workers = workers
        return self

    # -- scheduling -----------------------------------------------------------

    def decide(
        self,
        now: float,
        jobs: Sequence[Job],
        running: Dict[FrozenSet[int], JobGroup],
        total_gpus: int,
        reason: str = "tick",
    ) -> List[JobGroup]:
        with maybe_span(
            self.tracer, "sched.decide", now,
            scheduler=self.name, jobs=len(jobs), reason=reason,
        ):
            plan = self._decide_inner(now, jobs, running, total_gpus, reason)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.inspect(
                "sched.order",
                now,
                plan=plan,
                running=list(running),
                policy=self.policy,
            )
        return plan

    def _decide_inner(
        self,
        now: float,
        jobs: Sequence[Job],
        running: Dict[FrozenSet[int], JobGroup],
        total_gpus: int,
        reason: str,
    ) -> List[JobGroup]:
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        if reason == "completion" and not self.event_regroup:
            plan = self._backfill_from_cache(jobs, running, total_gpus)
            if plan is not None:
                if tracing:
                    tracer.emit(
                        EventCategory.SCHED,
                        "sched.backfill",
                        now,
                        groups=len(plan),
                        cached_left=len(self._cached_overflow),
                    )
                return plan

        if tracing and reason != "tick":
            # Event-driven full regroup (arrival/completion): cheap
            # because unchanged GPU-count buckets hit the grouper's
            # decision cache.
            tracer.count(f"sched.regroup.{reason}")

        priority = {
            job.job_id: (self.policy(job, now), job.spec.submit_time, job.job_id)
            for job in jobs
        }
        ordered = sorted(jobs, key=lambda job: priority[job.job_id])

        batch = self._dequeue_batch(ordered, total_gpus)
        believed = [self._believed_profile(job) for job in batch]

        # Batched warm-regroup: under event_regroup, consecutive events
        # frequently leave the dequeued batch, priorities, running
        # groups and capacity untouched (e.g. a completion past the
        # batch budget).  The whole plan is then a pure function of
        # inputs already in hand, so serve the memoized plan and skip
        # the grouping pass outright.
        memo_key = None
        if self.event_regroup:
            memo_key = self._plan_signature(
                batch, believed, priority, running, total_gpus
            )
            memo = self._plan_memo
            if memo is not None and memo[0] == memo_key:
                if tracing:
                    tracer.count("sched.plan_memo.hit")
                    # Same decisions as the memoized solve; re-file them
                    # so per-event provenance stays complete.
                    self._record_provenance(now, reason)
                self._cached_overflow = list(memo[2])
                return list(memo[1])
            if tracing:
                tracer.count("sched.plan_memo.miss")

        result = self.grouper.group(
            batch,
            believed,
            capacity=total_gpus,
            preformed=[tuple(key) for key in running],
            now=now,
        )
        if tracing:
            self._record_provenance(now, reason)

        # Highest-priority member first; fill the cluster, backfilling
        # smaller groups past ones that do not fit.
        groups = sorted(
            result.groups,
            key=lambda group: min(priority[j.job_id] for j in group.jobs),
        )
        plan = []
        free = total_gpus
        overflow: List[JobGroup] = []
        for group in groups:
            if group.num_gpus <= free:
                plan.append(group)
                free -= group.num_gpus
            else:
                overflow.append(group)
        # Groups that did not fit become the between-tick backfill
        # reservoir: the prototype recomputes grouping only every
        # scheduling interval, so completions are served from this plan.
        self._cached_overflow = overflow
        if memo_key is not None:
            self._plan_memo = (memo_key, list(plan), list(overflow))
        return plan

    def _plan_signature(
        self,
        batch: Sequence[Job],
        believed: Sequence,
        priority: Dict[str, tuple],
        running: Dict[FrozenSet[int], JobGroup],
        total_gpus: int,
    ) -> tuple:
        """Hashable fingerprint of everything the plan depends on.

        The plan is a deterministic function of the dequeued batch (ids,
        believed profiles, GPU demands), the priority tuples that order
        it, the running groups seeding the grouper, and the capacity.
        Two calls with equal signatures therefore produce identical
        plans, which is what lets the memo skip the grouping pass.
        """
        return (
            total_gpus,
            tuple(tuple(sorted(key)) for key in running),
            tuple(
                (
                    job.job_id,
                    priority[job.job_id],
                    profile.durations,
                    job.num_gpus,
                )
                for job, profile in zip(batch, believed)
            ),
        )

    def _backfill_from_cache(
        self,
        jobs: Sequence[Job],
        running: Dict[FrozenSet[int], JobGroup],
        total_gpus: int,
    ) -> Optional[List[JobGroup]]:
        """Serve a completion event from the last tick's leftover groups.

        Keeps every running group in place and appends cached groups
        whose members are all still pending.  Returns None when there
        is no cache, forcing a full regroup.
        """
        cached = getattr(self, "_cached_overflow", None)
        if cached is None:
            return None
        alive = {job.job_id for job in jobs}
        running_ids = {
            job_id for key in running for job_id in key
        }
        plan = list(running.values())
        free = total_gpus - sum(group.num_gpus for group in plan)
        started = 0
        remaining_cache: List[JobGroup] = []
        for group in cached:
            members = [job.job_id for job in group.jobs]
            startable = all(
                job_id in alive and job_id not in running_ids
                for job_id in members
            )
            if not startable:
                continue
            if group.num_gpus <= free:
                plan.append(group)
                free -= group.num_gpus
                started += 1
            else:
                remaining_cache.append(group)
        self._cached_overflow = remaining_cache
        pending_exists = len(alive) > len(running_ids)
        if started == 0 and free > 0 and pending_exists:
            # The cache is dry but capacity and pending jobs remain:
            # fall through to a full regroup rather than idling until
            # the next tick.
            return None
        return plan

    def _record_provenance(self, now: float, reason: str) -> None:
        """File the grouper's last decisions in the tracer (tracing only).

        One :class:`GroupingRecord` per member job, plus a
        ``group.formed`` event for every multi-job group.
        """
        tracer = self.tracer
        decisions = self.grouper.last_decisions
        if tracer is None or decisions is None:
            return
        for decision in decisions:
            if len(decision.members) > 1:
                tracer.emit(
                    EventCategory.GROUP,
                    "group.formed",
                    now,
                    members=list(decision.members),
                    efficiency=decision.efficiency,
                    round=decision.round_formed,
                    seeded=decision.seeded,
                )
            for job_id in decision.members:
                tracer.provenance.record_grouping(
                    job_id,
                    GroupingRecord(
                        sim_time=now,
                        reason=reason,
                        members=decision.members,
                        efficiency=decision.efficiency,
                        round_formed=decision.round_formed,
                        seeded=decision.seeded,
                        candidates=decision.candidates.get(job_id, ()),
                    ),
                )

    def notify_resize(self, job_id: int, old_gpus: int, new_gpus: int) -> None:
        """Invalidate every cache a resized job could have poisoned.

        A resize changes a job's GPU bucket *and* its believed profile,
        so three caches go stale at once:

        * the whole-plan memo — its signature embeds the old size;
        * the overflow backfill reservoir — a cached group holding the
          job carries pre-resize believed profiles and offsets while
          its live ``num_gpus`` already reads the new size;
        * the grouper's per-bucket decision cache — both the old and
          the new GPU-count buckets changed membership.

        The per-bucket cache keys would miss naturally (they embed the
        node duration keys), but dropping the affected buckets
        explicitly keeps the invalidation robust to future key
        coarsening (``cache_quantum``) and is what the cold-vs-warm
        resize oracle in :mod:`repro.verify.elastic` certifies.
        """
        self._plan_memo = None
        cached = getattr(self, "_cached_overflow", None)
        if cached:
            self._cached_overflow = [
                group for group in cached
                if all(job.job_id != job_id for job in group.jobs)
            ]
        self.grouper.invalidate_gpu_buckets((old_gpus, new_gpus))

    def reset_caches(self) -> None:
        """Drop every decision-affecting cache (overflow reservoir and
        the grouper's weight/ordering/decision caches).

        Differential oracles call this to turn a warm scheduler into a
        cold one without rebuilding it.
        """
        self._cached_overflow: List[JobGroup] = []
        self._plan_memo = None
        self.grouper.reset_caches()

    def close(self) -> None:
        """Release the grouper's worker pool (no-op when serial)."""
        self.grouper.close()

    # -- internals ---------------------------------------------------------------

    def _dequeue_batch(self, ordered: Sequence[Job], total_gpus: int) -> List[Job]:
        """Take the first n jobs that can fully group and fill the cluster.

        With ``k``-way interleaving, the cluster can host up to
        ``k * total_gpus`` GPU-demand worth of jobs, so the batch stops
        once cumulative demand reaches that budget (Algorithm 1,
        lines 3-5).
        """
        budget = self.max_group_size * total_gpus
        batch: List[Job] = []
        demand = 0
        for job in ordered:
            if demand + job.num_gpus > budget:
                break
            batch.append(job)
            demand += job.num_gpus
        return batch

    def _believed_profile(self, job: Job):
        if self.profiler is None:
            return job.profile
        return self.profiler.profile(job.spec)
