"""Stage orderings for interleaved job groups (Eq. 3 / Fig. 6).

When a group of jobs shares one set of resources, every job cycles
through the resources in data-path order, but each job is given a
*phase offset*: job ``i`` with offset ``o_i`` executes resource
``(o_i + s) mod k`` during time slot ``s``.  A synchronization barrier
separates consecutive slots, so a slot lasts as long as the slowest
stage scheduled in it and no two jobs ever use the same resource at
the same time (offsets within a group are distinct).

The group's iteration period is Eq. 3 of the paper, generalized to an
arbitrary offset assignment::

    T = sum_{s=0}^{k-1}  max_i  t_i^{(o_i + s) mod k}

Different offset assignments ("orderings", Fig. 6) yield different
periods; Muri enumerates them all and picks the best.  The worst
ordering is kept around for the Fig. 11 ablation.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.jobs.resources import NUM_RESOURCES
from repro.jobs.stage import StageProfile

__all__ = [
    "group_iteration_time",
    "enumerate_offset_assignments",
    "best_ordering",
    "worst_ordering",
    "identity_ordering",
    "slot_durations",
    "extreme_period_for_rows",
    "best_period_for_rows",
    "batched_best_periods",
]

Offsets = Tuple[int, ...]


def slot_durations(
    profiles: Sequence[StageProfile],
    offsets: Offsets,
    num_resources: int = NUM_RESOURCES,
) -> List[float]:
    """Duration of each barrier-delimited time slot under ``offsets``.

    Slot ``s`` runs job ``i``'s stage on resource ``(o_i + s) % k``;
    the slot lasts as long as its slowest stage.
    """
    _validate(profiles, offsets, num_resources)
    slots = []
    for s in range(num_resources):
        slots.append(
            max(
                profile.durations[(offset + s) % num_resources]
                for profile, offset in zip(profiles, offsets)
            )
        )
    return slots


def group_iteration_time(
    profiles: Sequence[StageProfile],
    offsets: Offsets,
    num_resources: int = NUM_RESOURCES,
) -> float:
    """Interleaved iteration period T of a group (generalized Eq. 3)."""
    return sum(slot_durations(profiles, offsets, num_resources))


def enumerate_offset_assignments(
    num_jobs: int,
    num_resources: int = NUM_RESOURCES,
) -> Iterator[Offsets]:
    """Yield all distinct offset assignments for a group.

    The first job's offset is pinned to zero (rotating every offset by
    a constant does not change any slot), and offsets are distinct so
    no two jobs ever contend for one resource inside a slot.
    """
    if num_jobs < 1:
        raise ValueError("num_jobs must be >= 1")
    if num_jobs > num_resources:
        raise ValueError(
            f"cannot interleave {num_jobs} jobs over {num_resources} "
            "resources without same-slot contention"
        )
    remaining = range(1, num_resources)
    for rest in permutations(remaining, num_jobs - 1):
        yield (0,) + rest


@lru_cache(maxsize=None)
def _assignment_table(
    num_jobs: int, num_resources: int
) -> Tuple[Tuple[Offsets, ...], np.ndarray]:
    """All offset assignments, as tuples and as an index array."""
    assignments = tuple(
        enumerate_offset_assignments(num_jobs, num_resources)
    )
    array = np.array(assignments, dtype=np.intp)
    array.setflags(write=False)
    return assignments, array


@lru_cache(maxsize=65536)
def _rolled_rows(durations: Tuple[float, ...], num_resources: int) -> np.ndarray:
    """Table ``R[o][s] = durations[(o + s) % k]`` for one profile."""
    k = num_resources
    table = np.array(
        [[durations[(o + s) % k] for s in range(k)] for o in range(k)],
        dtype=float,
    )
    table.setflags(write=False)
    return table


def extreme_period_for_rows(
    rows: Sequence[Tuple[float, ...]],
    num_resources: int = NUM_RESOURCES,
    pick_worst: bool = False,
) -> Tuple[Offsets, float]:
    """Best (or worst) iteration period for raw duration tuples.

    The vectorized core of :func:`best_ordering`: all ``(k-1)!`` offset
    assignments are evaluated in one batch from cached per-profile
    slot-max tables.  Slot maxima and the left-to-right slot sum are
    computed exactly as the scalar enumeration would, so the returned
    period is bit-identical to the generator-based implementation this
    replaces.
    """
    k = num_resources
    assignments, index = _assignment_table(len(rows), k)
    tables = np.stack([_rolled_rows(tuple(row), k) for row in rows])
    # slots[p, i, s]: job i's stage duration in slot s under assignment p.
    slots = tables[np.arange(len(rows)), index]
    slot_max = slots.max(axis=1)
    periods = slot_max[:, 0]
    for s in range(1, k):
        periods = periods + slot_max[:, s]
    best = int(periods.argmax() if pick_worst else periods.argmin())
    return assignments[best], float(periods[best])


def best_period_for_rows(
    rows: Sequence[Tuple[float, ...]],
    num_resources: int = NUM_RESOURCES,
) -> Tuple[Offsets, float]:
    """Offsets minimizing the period, straight from duration tuples."""
    return extreme_period_for_rows(rows, num_resources, pick_worst=False)


def batched_best_periods(
    groups: Sequence[Sequence[Tuple[float, ...]]],
    num_resources: int = NUM_RESOURCES,
) -> List[float]:
    """Minimal iteration periods for many row-groups in one numpy batch.

    The grouping stage evaluates thousands of candidate pair weights
    per matching round; calling :func:`best_period_for_rows` once per
    candidate leaves most of the time in per-call numpy dispatch.  This
    kernel stacks every group's cached slot-max tables into one
    ``(groups, jobs, k, k)`` array and evaluates all offset
    assignments for all groups in a single vectorized pass.

    Args:
        groups: Candidate groups of raw duration tuples; every group
            must contain the same number of rows (callers batch by
            group size).
        num_resources: Number of resource types k.

    Returns:
        One minimal period per group, bit-identical to
        ``best_period_for_rows(rows)[1]`` for each group: the slot
        maxima, left-to-right slot sums, and first-minimum assignment
        choice all reproduce the scalar kernel exactly.
    """
    if not groups:
        return []
    k = num_resources
    m = len(groups[0])
    _assignments, index = _assignment_table(m, k)
    tables = [None] * (len(groups) * m)
    pos = 0
    for rows in groups:
        if len(rows) != m:
            raise ValueError("all groups in a batch must share one size")
        for row in rows:
            tables[pos] = _rolled_rows(tuple(row), k)
            pos += 1
    stacked = np.stack(tables).reshape(len(groups), m, k, k)
    # slots[g, p, i, s]: group g, assignment p, job i's duration in
    # slot s — the batched analogue of extreme_period_for_rows.
    slots = stacked[:, np.arange(m)[None, :], index, :]
    slot_max = slots.max(axis=2)
    periods = slot_max[:, :, 0]
    for s in range(1, k):
        periods = periods + slot_max[:, :, s]
    best = periods.argmin(axis=1)
    return [float(periods[g, p]) for g, p in enumerate(best)]


def _extreme_ordering(
    profiles: Sequence[StageProfile],
    num_resources: int,
    pick_worst: bool,
) -> Tuple[Offsets, float]:
    for profile in profiles:
        if profile.num_resources < num_resources:
            raise ValueError(
                f"profile has {profile.num_resources} resources, "
                f"need at least {num_resources}"
            )
    rows = tuple(profile.durations for profile in profiles)
    return extreme_period_for_rows(rows, num_resources, pick_worst)


def best_ordering(
    profiles: Sequence[StageProfile],
    num_resources: int = NUM_RESOURCES,
) -> Tuple[Offsets, float]:
    """Offsets minimizing the group iteration period, and that period.

    The enumeration is tiny in practice — at most ``(k-1)!`` candidates
    for a full group of ``k`` jobs with ``k`` resource types (six for
    the paper's four resources), as the paper notes in section 4.2.
    """
    return _extreme_ordering(profiles, num_resources, pick_worst=False)


def worst_ordering(
    profiles: Sequence[StageProfile],
    num_resources: int = NUM_RESOURCES,
) -> Tuple[Offsets, float]:
    """Offsets maximizing the period (the Fig. 11 ablation arm)."""
    return _extreme_ordering(profiles, num_resources, pick_worst=True)


def identity_ordering(
    profiles: Sequence[StageProfile],
    num_resources: int = NUM_RESOURCES,
) -> Tuple[Offsets, float]:
    """The naive assignment o_i = i (Eq. 3 exactly as printed)."""
    offsets = tuple(range(len(profiles)))
    return offsets, group_iteration_time(profiles, offsets, num_resources)


def _validate(
    profiles: Sequence[StageProfile],
    offsets: Iterable[int],
    num_resources: int,
) -> None:
    offsets = tuple(offsets)
    if len(offsets) != len(profiles):
        raise ValueError("need one offset per job")
    if not profiles:
        raise ValueError("a group must contain at least one job")
    if len(set(o % num_resources for o in offsets)) != len(offsets):
        raise ValueError(f"offsets must be distinct modulo k, got {offsets}")
    for profile in profiles:
        if profile.num_resources < num_resources:
            raise ValueError(
                f"profile has {profile.num_resources} resources, "
                f"need at least {num_resources}"
            )
