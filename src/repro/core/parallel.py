"""Process-pool execution of independent per-bucket matchings.

Algorithm 1 never groups jobs across GPU-count buckets, so the
per-bucket matchings of one grouping round are embarrassingly
parallel.  :class:`BucketPool` dispatches them over a persistent
:class:`concurrent.futures.ProcessPoolExecutor`, applying the same
resilience pattern as :class:`repro.sweep.runner.SweepRunner`: a
worker crash (``BrokenProcessPool``) tears the pool down, rebuilds it
once, and re-dispatches the unfinished buckets; buckets that still
fail are surfaced as ``None`` so the caller can fall back to the
bit-identical serial path instead of losing a scheduling decision.

Determinism: each bucket's matching depends only on its own payload —
the member profiles, cache keys and grouper knobs — so a bucket
matched in a worker returns exactly the pairs the parent would have
computed serially.  The parent merges results in ``bucket_order``, so
parallel and serial grouping plans are identical by construction
(enforced by :func:`repro.verify.compare_parallel_serial`).

Workers keep one grouper instance alive per configuration, so the
weight/ordering caches stay warm across consecutive dispatches just
like the serial grouper's do.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["BucketPool", "bucket_payload"]

#: One serialized bucket: per node ``(rows, keys, memories)`` where
#: ``rows`` are the member profiles' duration tuples, ``keys`` their
#: cache keys and ``memories`` the per-member memory footprints (or
#: None when the feasibility check is off).
BucketPayload = List[Tuple[tuple, tuple, Optional[tuple]]]


def bucket_payload(nodes: Sequence[Any], with_memory: bool) -> BucketPayload:
    """Serialize a bucket's nodes for worker-side reconstruction."""
    payload: BucketPayload = []
    for node in nodes:
        rows = tuple(profile.durations for profile in node.profiles)
        keys = tuple(node.keys)
        memories = (
            tuple(job.spec.memory for job in node.jobs) if with_memory else None
        )
        payload.append((rows, keys, memories))
    return payload


class _WorkerSpec:
    """Stub job spec carrying only the memory footprint."""

    __slots__ = ("memory",)

    def __init__(self, memory: Any) -> None:
        self.memory = memory


class _WorkerJob:
    """Stub job: exactly the surface ``_match_bucket`` touches."""

    __slots__ = ("spec",)

    def __init__(self, memory: Any) -> None:
        self.spec = _WorkerSpec(memory)


#: Worker-side grouper reuse: ``(config_key, grouper)`` of the last
#: configuration seen, so weight/ordering caches survive dispatches.
_WORKER_STATE: List[Any] = [None, None]


def _match_bucket_worker(
    config: Dict[str, Any], payload: BucketPayload
) -> Dict[str, Any]:
    """Process-pool entry point: match one bucket, never raise.

    Deterministic exceptions come back as ``status="error"`` payloads;
    the parent re-runs the bucket serially, which reproduces the same
    exception where the caller can see it.  Only process death
    surfaces as a pool failure.
    """
    try:
        from repro.core.grouping import MultiRoundGrouper, _Node
        from repro.jobs.stage import StageProfile

        config_key = tuple(sorted(config.items(), key=lambda kv: kv[0]))
        if _WORKER_STATE[0] != config_key:
            _WORKER_STATE[0] = config_key
            _WORKER_STATE[1] = MultiRoundGrouper(**config)
        grouper = _WORKER_STATE[1]
        nodes = []
        for rows, keys, memories in payload:
            if memories is None:
                jobs = [_WorkerJob(None) for _ in rows]
            else:
                jobs = [_WorkerJob(memory) for memory in memories]
            nodes.append(
                _Node(
                    jobs,
                    [StageProfile(tuple(row)) for row in rows],
                    list(keys),
                )
            )
        return {"status": "ok", "matched": grouper._match_bucket(nodes)}
    except BaseException:
        return {"status": "error", "error": traceback.format_exc()}


class BucketPool:
    """A persistent process pool for per-bucket matchings.

    Args:
        workers: Number of worker processes (>= 2; ``workers=1`` is the
            serial path and never constructs a pool).
        max_rebuilds: How many times a broken pool is rebuilt before
            the remaining buckets are handed back for serial fallback.
    """

    def __init__(self, workers: int, max_rebuilds: int = 1) -> None:
        if workers < 2:
            raise ValueError("BucketPool needs workers >= 2")
        self.workers = workers
        self.max_rebuilds = max_rebuilds
        self._executor: Optional[ProcessPoolExecutor] = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def _rebuild(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
        self._executor = ProcessPoolExecutor(max_workers=self.workers)

    def match_buckets(
        self,
        config: Dict[str, Any],
        payloads: Sequence[BucketPayload],
    ) -> List[Optional[list]]:
        """Match every bucket; ``None`` marks a bucket needing serial fallback.

        Buckets are submitted together and collected in order.  A
        ``BrokenProcessPool`` rebuilds the pool (up to ``max_rebuilds``
        times) and re-dispatches the buckets that were lost with it;
        deterministic worker errors and buckets that outlive the
        rebuild budget come back as ``None``.
        """
        results: List[Optional[list]] = [None] * len(payloads)
        pending = list(range(len(payloads)))
        rebuilds = 0
        while pending:
            executor = self._ensure_executor()
            futures = {
                index: executor.submit(
                    _match_bucket_worker, config, payloads[index]
                )
                for index in pending
            }
            broken = False
            still_pending: List[int] = []
            for index, future in futures.items():
                if broken:
                    still_pending.append(index)
                    continue
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    broken = True
                    still_pending.append(index)
                    continue
                if outcome["status"] == "ok":
                    results[index] = outcome["matched"]
                # status == "error": leave None; the serial fallback
                # reproduces the deterministic exception in the parent.
            if not broken:
                break
            if rebuilds >= self.max_rebuilds:
                break
            rebuilds += 1
            self._rebuild()
            pending = still_pending
        return results

    def close(self) -> None:
        """Shut the worker pool down; the next dispatch recreates it."""
        if self._executor is not None:
            # Blocking shutdown: every future has been collected by the
            # time close() runs, so this returns promptly and avoids
            # leaving a half-torn-down executor behind at interpreter
            # exit.
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
