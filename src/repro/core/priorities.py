"""Job priority policies.

Muri sorts its queue with SRSF when job durations are known (Muri-S)
and with 2D-LAS when they are unknown (Muri-L); the baselines use the
same family of policies.  A *lower* priority value means the job is
served earlier, matching the paper's convention (``p_i = r_i * g_i``
for SRSF, ``p_i = a_i * g_i`` for 2D-LAS).

Each policy is a callable ``(job, now) -> float``.  ``now`` lets
FIFO-style policies rank by waiting time without mutating the job.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.jobs.job import Job

__all__ = [
    "PriorityPolicy",
    "fifo_priority",
    "sjf_priority",
    "srtf_priority",
    "srsf_priority",
    "las_priority",
    "las2d_priority",
    "gittins_priority",
    "get_policy",
    "POLICIES",
]

PriorityPolicy = Callable[[Job, float], float]


def fifo_priority(job: Job, now: float) -> float:
    """First-in-first-out: earlier submissions first."""
    return job.spec.submit_time


def sjf_priority(job: Job, now: float) -> float:
    """Shortest Job First by total solo running time."""
    return job.spec.total_service_time


def srtf_priority(job: Job, now: float) -> float:
    """Shortest Remaining Time First (ignores GPU count)."""
    return job.remaining_service_time


def srsf_priority(job: Job, now: float) -> float:
    """Shortest Remaining Service First: remaining time x GPUs.

    Tiresias's extension of SRTF to multi-GPU DL jobs; Muri-S's queue
    order.
    """
    return job.remaining_gpu_service


def las_priority(job: Job, now: float) -> float:
    """Least Attained Service (ignores GPU count)."""
    return job.attained_service


def las2d_priority(job: Job, now: float) -> float:
    """2D-LAS: attained service x GPUs.

    Tiresias's duration-unaware metric; Muri-L's queue order.
    """
    return job.attained_gpu_service


def gittins_priority(job: Job, now: float) -> float:
    """A Gittins-index-style rank for unknown durations.

    The Gittins index trades off the probability that a job finishes
    within the next service quantum against the service invested.  We
    use the standard DL-scheduling simplification (Tiresias, section
    3.3): rank by attained GPU service but break sharply at service
    milestones, approximated here by the logarithm of attained service
    so jobs with similar attained service share a priority class.
    """
    import math

    attained = job.attained_gpu_service
    if attained <= 0:
        return 0.0
    return float(math.floor(math.log2(attained + 1.0)))


POLICIES: Dict[str, PriorityPolicy] = {
    "fifo": fifo_priority,
    "sjf": sjf_priority,
    "srtf": srtf_priority,
    "srsf": srsf_priority,
    "las": las_priority,
    "las2d": las2d_priority,
    "gittins": gittins_priority,
}


def get_policy(name: str) -> PriorityPolicy:
    """Look up a priority policy by name.

    Raises:
        KeyError: If the name is unknown.
    """
    try:
        return POLICIES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown priority policy {name!r}; available: "
            f"{', '.join(sorted(POLICIES))}"
        ) from None
