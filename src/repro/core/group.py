"""Interleaving groups: the unit Muri schedules and places.

A :class:`JobGroup` bundles jobs that will time-share one set of
resources.  The group stores the profiles the *scheduler believed*
(profiler output, possibly noisy) along with the stage ordering chosen
from them; the simulator's executor later evaluates the group's real
iteration period from the true profiles under that same ordering,
which is how profiling noise degrades performance (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.efficiency import efficiency_for_period
from repro.core.ordering import Offsets, group_iteration_time
from repro.jobs.job import Job
from repro.jobs.resources import NUM_RESOURCES
from repro.jobs.stage import StageProfile

__all__ = ["JobGroup"]


@dataclass(frozen=True)
class JobGroup:
    """A set of jobs interleaved on the same GPUs.

    Attributes:
        jobs: The member jobs.  All members request the same number of
            GPUs (Muri buckets by GPU count; section 4.2).
        believed_profiles: The per-job profiles the grouping decision
            was based on, in the same order as ``jobs``.
        offsets: Phase offsets chosen for the members (distinct mod k).
        num_resources: Number of resource types k.
        coordinated: True for Muri-style barrier-coordinated
            interleaving; False for uncoordinated GPU sharing (AntMan),
            which the executor penalizes with extra contention.
    """

    jobs: Tuple[Job, ...]
    believed_profiles: Tuple[StageProfile, ...]
    offsets: Offsets
    num_resources: int = NUM_RESOURCES
    coordinated: bool = True

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("a group needs at least one job")
        if len(self.jobs) != len(self.believed_profiles):
            raise ValueError("need one believed profile per job")
        if len(self.offsets) != len(self.jobs):
            raise ValueError("need one offset per job")
        gpu_counts = {job.num_gpus for job in self.jobs}
        if len(gpu_counts) != 1:
            raise ValueError(
                f"all jobs in a group must use the same GPU count, got {gpu_counts}"
            )

    # -- static facts -----------------------------------------------------

    @property
    def size(self) -> int:
        """Number of member jobs."""
        return len(self.jobs)

    @property
    def num_gpus(self) -> int:
        """GPUs the group occupies (every member shares the same set)."""
        return self.jobs[0].num_gpus

    @classmethod
    def solo(cls, job: Job, believed_profile: Optional[StageProfile] = None) -> "JobGroup":
        """A degenerate group holding a single un-interleaved job."""
        profile = believed_profile if believed_profile is not None else job.profile
        return cls((job,), (profile,), (0,))

    # -- believed (scheduler-side) metrics ---------------------------------

    @property
    def believed_period(self) -> float:
        """Iteration period T the scheduler expects (Eq. 3)."""
        return group_iteration_time(
            self.believed_profiles, self.offsets, self.num_resources
        )

    @property
    def believed_efficiency(self) -> float:
        """Interleaving efficiency gamma the scheduler expects (Eq. 4)."""
        return efficiency_for_period(
            self.believed_profiles, self.believed_period, self.num_resources
        )

    # -- actual (executor-side) metrics -------------------------------------

    def actual_period(self, contention_factor: float = 1.0) -> float:
        """True iteration period from the members' real profiles.

        Args:
            contention_factor: Multiplicative overhead (>= 1) from
                resource contention between overlapped stages; see
                ``repro.sim.contention``.
        """
        true_profiles = tuple(job.profile for job in self.jobs)
        period = group_iteration_time(true_profiles, self.offsets, self.num_resources)
        return period * contention_factor

    def actual_efficiency(self) -> float:
        """True interleaving efficiency from the members' real profiles."""
        true_profiles = tuple(job.profile for job in self.jobs)
        return efficiency_for_period(
            true_profiles, self.actual_period(), self.num_resources
        )

    def normalized_throughputs(self, contention_factor: float = 1.0) -> Dict[int, float]:
        """Per-job throughput relative to running alone.

        A member finishing one iteration per period ``T`` has
        normalized throughput ``solo_iteration_time / T`` (Table 2's
        "Norm. Tput" row).
        """
        period = self.actual_period(contention_factor)
        return {
            job.job_id: job.profile.iteration_time / period for job in self.jobs
        }

    def busy_time(self, resource: int) -> float:
        """Seconds per period the group keeps ``resource`` busy."""
        return sum(job.profile.durations[resource] for job in self.jobs)

    def peak_memory_gb(self, residual: float = 0.10) -> Optional[float]:
        """Peak per-GPU memory of the interleaved group (section 2.2).

        Members without a declared footprint contribute nothing to the
        peak, so a mixed known/unknown group reports the peak of its
        *known* footprints — a lower bound that still lets memory caps
        bind — instead of silently bypassing the feasibility check.
        Returns None only when no member declares a footprint.
        """
        from repro.jobs.memory import group_peak_memory

        footprints = [
            job.spec.memory
            for job in self.jobs
            if job.spec.memory is not None
        ]
        if not footprints:
            return None
        return group_peak_memory(
            footprints, coordinated=self.coordinated, residual=residual
        )

    def __contains__(self, job: Job) -> bool:
        return any(member.job_id == job.job_id for member in self.jobs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = ", ".join(job.name for job in self.jobs)
        return f"JobGroup([{names}], gpus={self.num_gpus}, offsets={self.offsets})"
