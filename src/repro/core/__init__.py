"""Muri's core: interleaving efficiency, grouping, and the scheduler."""

from repro.core.efficiency import (
    efficiency_for_period,
    group_speedup,
    interleaving_efficiency,
    pair_efficiency,
)
from repro.core.group import JobGroup
from repro.core.grouping import GroupingResult, MultiRoundGrouper
from repro.core.muri import MuriScheduler
from repro.core.ordering import (
    best_ordering,
    enumerate_offset_assignments,
    group_iteration_time,
    identity_ordering,
    slot_durations,
    worst_ordering,
)
from repro.core.priorities import POLICIES, get_policy

__all__ = [
    "interleaving_efficiency",
    "pair_efficiency",
    "efficiency_for_period",
    "group_speedup",
    "JobGroup",
    "MultiRoundGrouper",
    "GroupingResult",
    "MuriScheduler",
    "best_ordering",
    "worst_ordering",
    "identity_ordering",
    "group_iteration_time",
    "slot_durations",
    "enumerate_offset_assignments",
    "POLICIES",
    "get_policy",
]
