"""Multi-round job grouping (Algorithm 1 of the paper).

Grouping ``n`` jobs into groups of up to ``k`` (the number of resource
types) to maximize total interleaving efficiency is maximum weight
k-uniform hypergraph matching — NP-hard for k > 2.  Muri's heuristic
runs matching in rounds:

1. Build a graph whose nodes are (possibly merged) jobs and whose edge
   weights are the interleaving efficiency of merging the two nodes.
2. Find a maximum weight matching with the blossom algorithm.
3. Merge every matched pair into one node and repeat.

``log2(k)`` rounds double the group size each time (2 rounds for the
paper's four resources: singles -> pairs -> quads).  A
``max_group_size`` of 3 (Fig. 12's sweep) is supported by forbidding
merges that would exceed the cap.

Multi-GPU jobs are bucketed by GPU count before grouping so a job is
never interleaved with different partners on different GPUs, avoiding
the cascading synchronization slowdown of Fig. 7.

Two practical refinements the scheduler relies on:

* **Capacity awareness.**  Algorithm 1 dequeues the first ``n`` jobs
  "so that these jobs can form k-job groups that fully utilize the
  cluster".  Sharing has a cost (contention), so merging continues only
  while the nodes' total GPU demand exceeds the cluster capacity —
  merges are applied best-efficiency-first, and the algorithm stops
  the moment everything fits.  Under light load this degenerates to
  exclusive allocation, exactly as a GPU-only scheduler would behave.
* **Seeded nodes.**  Currently running groups enter the graph as
  pre-merged nodes, so an unchanged workload reproduces the same plan
  and jobs are not pointlessly regrouped (and restarted) every
  scheduling interval.

To keep the decision latency at the paper's "1,000 jobs in a few
seconds" scale, the hot path is layered (see "Decision latency and
scaling" in ``docs/simulation_model.md``):

* **Sparse candidate graphs.**  Buckets at or above
  ``sparsify_threshold`` nodes build a bounded-degree candidate graph
  (:mod:`repro.matching.sparsify`) instead of all O(n^2) edges; below
  the threshold the dense build runs and results are bit-identical to
  the dense algorithm.
* **Vectorized weight kernels.**  Edge weights evaluate all offset
  assignments in one batch from cached slot-max tables
  (:func:`repro.core.ordering.best_period_for_rows`).
* **Quantized weight cache.**  With ``cache_quantum > 0`` the weight
  cache keys snap durations to a grid, so profiling noise does not
  destroy the hit rate.
* **Incremental decision cache.**  Each bucket's matching is memoized
  against the bucket's node-key sequence; a queue segment unchanged
  since the previous scheduling round skips matching entirely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.efficiency import efficiency_for_period
from repro.core.group import JobGroup
from repro.core.ordering import (
    batched_best_periods,
    best_ordering,
    best_period_for_rows,
    group_iteration_time,
    identity_ordering,
    worst_ordering,
)
from repro.core.parallel import BucketPool, bucket_payload
from repro.jobs.job import Job
from repro.jobs.resources import NUM_RESOURCES
from repro.jobs.stage import StageProfile
from repro.matching.blossom import matching_pairs
from repro.matching.exact import exact_hypergraph_matching
from repro.matching.greedy import sequential_pair_matching
from repro.matching.sparsify import (
    SparsifyConfig,
    node_signature,
    sparse_candidate_edges,
)
from repro.observe.events import EventCategory
from repro.observe.provenance import CandidateConsidered, GroupDecision
from repro.observe.tracer import Tracer, maybe_span

__all__ = ["MultiRoundGrouper", "GroupingResult"]

_ORDERING_FNS = {
    "best": best_ordering,
    "worst": worst_ordering,
    "identity": identity_ordering,
}

#: A matched pair within one bucket: (weight, left index, right index)
#: with ``left < right`` in the bucket's priority order.
_MatchedPair = Tuple[float, int, int]


@dataclass
class _Node:
    """A (possibly merged) node of the matching graph.

    ``keys`` carries one (possibly quantized) durations key per member
    profile so cache keys never re-derive them from the profiles.
    ``round_formed`` and ``seeded`` are provenance breadcrumbs: the
    matching round whose merge produced this node (0 = never merged)
    and whether it entered the graph pre-merged as a running group.
    """

    jobs: List[Job]
    profiles: List[StageProfile]
    keys: List[Tuple[float, ...]]
    round_formed: int = 0
    seeded: bool = False

    @property
    def size(self) -> int:
        return len(self.jobs)

    @property
    def num_gpus(self) -> int:
        return self.jobs[0].num_gpus

    def merged_with(self, other: "_Node", round_formed: int = 0) -> "_Node":
        return _Node(
            self.jobs + other.jobs,
            self.profiles + other.profiles,
            self.keys + other.keys,
            round_formed=round_formed,
        )


@dataclass(frozen=True)
class GroupingResult:
    """Outcome of one grouping invocation.

    Attributes:
        groups: The chosen interleaving groups.
        total_efficiency: Sum of the believed efficiencies of all
            multi-job groups (the matching objective).
        rounds: Number of matching rounds executed.
        total_gpu_demand: GPUs needed to run every group concurrently.
    """

    groups: Tuple[JobGroup, ...]
    total_efficiency: float
    rounds: int
    total_gpu_demand: int = 0


class MultiRoundGrouper:
    """Muri's Blossom-based multi-round grouping algorithm.

    Args:
        max_group_size: Largest number of jobs per group (the paper
            uses k = number of resource types; Fig. 12 sweeps 2-4).
        num_resources: Number of resource types k.
        matcher: "blossom" (the paper's algorithm), "greedy" (the
            "w/o Blossom" ablation: pack consecutive jobs in priority
            order), or "exact" (exponential hypergraph matching, only
            viable for small inputs).
        ordering: Stage ordering policy used both for edge weights and
            for the final groups: "best", "worst" (Fig. 11 ablation) or
            "identity".
        min_efficiency: Edges below this believed efficiency are not
            added to the graph, leaving poorly matched jobs ungrouped.
        gpu_memory_gb: Optional per-GPU memory capacity.  Merges whose
            interleaved peak memory (section 2.2's model) would exceed
            it are never formed.  Members without a declared footprint
            contribute nothing to the peak (their share is unknown);
            groups where *no* member declares a footprint are exempt.
            Either skip bumps the ``group.memory_check_skipped``
            tracer counter.
        gpu_memory_by_type: Optional ``generation name -> memory_gb``
            per-type capacities.  An affine node (its jobs carry a
            ``gpu_affinity``) is checked against its landing
            generation's capacity instead of the flat
            ``gpu_memory_gb``, so a group that fits an a100 but not a
            k80 forms when it is bound for the a100 pool.  Unaffine
            nodes keep the flat cap.
        sparsify_threshold: Bucket size at which the blossom matcher
            switches from the dense O(n^2) edge build to a
            bounded-degree candidate graph.  ``None`` disables
            sparsification; buckets below the threshold always take
            the dense path, keeping small-queue results bit-identical.
        max_degree: Edges kept per node in the sparse candidate graph.
        probe_limit: Candidate weight evaluations per node in the
            sparse build (defaults to ``3 * max_degree``).
        cache_quantum: Grid (in seconds) the weight/ordering cache keys
            snap durations to.  ``0`` keys on exact durations; a
            positive quantum trades a little decision quality for cache
            hits that survive profiling noise.
        workers: Process-pool width for per-bucket matchings.  GPU-count
            buckets never interact (Algorithm 1 groups within a bucket
            only), so with ``workers > 1`` the blossom matchings of
            large buckets that missed the decision cache are dispatched
            over a :class:`~repro.core.parallel.BucketPool` and merged
            back in bucket order — plans are bit-identical to the
            serial path (``workers=1``), which also remains the
            fallback whenever the pool fails or tracing needs in-process
            provenance.
        tracer: Optional :class:`~repro.observe.Tracer`.  When enabled,
            the grouper times its matching rounds, counts weight /
            decision cache hits, and publishes per-group
            :class:`~repro.observe.GroupDecision` provenance on
            :attr:`last_decisions` after every :meth:`group` call.
    """

    #: Candidate edges kept per job in provenance records.
    PROVENANCE_CANDIDATE_CAP = 6

    #: Buckets smaller than this are always matched in-process — the
    #: IPC round-trip would cost more than the matching itself.
    PARALLEL_MIN_NODES = 16

    def __init__(
        self,
        max_group_size: int = NUM_RESOURCES,
        num_resources: int = NUM_RESOURCES,
        matcher: str = "blossom",
        ordering: str = "best",
        min_efficiency: float = 0.0,
        gpu_memory_gb: Optional[float] = None,
        gpu_memory_by_type: Optional[Dict[str, float]] = None,
        sparsify_threshold: Optional[int] = 128,
        max_degree: int = 8,
        probe_limit: Optional[int] = None,
        cache_quantum: float = 0.0,
        workers: int = 1,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if max_group_size < 1:
            raise ValueError("max_group_size must be >= 1")
        if max_group_size > num_resources:
            raise ValueError(
                "groups larger than the number of resource types would "
                "force same-slot resource contention"
            )
        if matcher not in ("blossom", "greedy", "exact"):
            raise ValueError(f"unknown matcher {matcher!r}")
        if ordering not in _ORDERING_FNS:
            raise ValueError(f"unknown ordering policy {ordering!r}")
        if cache_quantum < 0:
            raise ValueError("cache_quantum must be >= 0")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.max_group_size = max_group_size
        self.num_resources = num_resources
        self.matcher = matcher
        self.ordering = ordering
        self.min_efficiency = min_efficiency
        self.gpu_memory_gb = gpu_memory_gb
        self.gpu_memory_by_type = (
            dict(gpu_memory_by_type) if gpu_memory_by_type else None
        )
        self.sparsify_threshold = sparsify_threshold
        self.cache_quantum = cache_quantum
        self._sparsify_config: Optional[SparsifyConfig] = None
        if sparsify_threshold is not None:
            self._sparsify_config = SparsifyConfig(
                threshold=sparsify_threshold,
                max_degree=max_degree,
                probe_limit=(
                    3 * max_degree if probe_limit is None else probe_limit
                ),
            )
        # Edge weights depend only on the multiset of member profiles;
        # with a small model zoo the same combinations recur constantly,
        # so memoization collapses the O(n^2) weight computations.
        self._weight_cache: Dict[Tuple, float] = {}
        self._ordering_cache: Dict[Tuple, Tuple] = {}
        # Per-bucket matchings of the previous group() call, keyed by
        # the bucket's node-key sequence: an unchanged queue segment
        # between scheduling intervals skips matching entirely.
        self._decision_cache: Dict[Tuple, List[_MatchedPair]] = {}
        self._decision_cache_prev: Dict[Tuple, List[_MatchedPair]] = {}
        self.workers = workers
        self._pool: Optional[BucketPool] = None
        self.tracer = tracer
        #: Whether the in-flight group() call is tracing — hoisted to a
        #: single flag so the weight/ordering inner loops pay zero
        #: tracer overhead when tracing is off.
        self._tracing = False
        #: Provenance of the most recent :meth:`group` call (a tuple of
        #: :class:`~repro.observe.GroupDecision`), or None when the
        #: tracer was absent/disabled for that call.
        self.last_decisions: Optional[Tuple[GroupDecision, ...]] = None
        # Scratch: per-job candidate edges of the in-flight group()
        # call, populated only while tracing.
        self._prov_candidates: Optional[Dict[int, List[CandidateConsidered]]] = None
        self._trace_now = 0.0

    # -- public API -----------------------------------------------------------

    def group(
        self,
        jobs: Sequence[Job],
        believed_profiles: Optional[Sequence[StageProfile]] = None,
        capacity: Optional[int] = None,
        preformed: Optional[Sequence[Sequence[int]]] = None,
        now: float = 0.0,
    ) -> GroupingResult:
        """Group jobs into interleaving groups.

        Jobs are first bucketed by GPU count; grouping happens within a
        bucket only.  The input order is treated as priority order
        (head of the queue first), which the greedy matcher relies on.

        Args:
            jobs: Jobs to group, highest priority first.
            believed_profiles: The profiles to base decisions on, one
                per job.  Defaults to each job's true profile.
            capacity: Cluster GPU capacity.  When given, merging stops
                as soon as the groups' total GPU demand fits — the
                best-efficiency merges are applied first — so jobs are
                not slowed by sharing the cluster does not need.
                None merges as much as possible.
            preformed: Optional seed groups as sequences of job ids
                (typically the currently running groups).  A seed whose
                members are all present enters the graph pre-merged,
                stabilizing plans across scheduling intervals.
            now: Simulation time stamped on trace events (purely
                observational; decisions never depend on it).

        Returns:
            A :class:`GroupingResult` whose groups preserve bucket
            priority order.  With tracing enabled, the matching
            provenance of the call is additionally published on
            :attr:`last_decisions`.
        """
        if believed_profiles is None:
            believed_profiles = [job.profile for job in jobs]
        if len(believed_profiles) != len(jobs):
            raise ValueError("need one believed profile per job")

        tracing = self.tracer is not None and self.tracer.enabled
        self._tracing = tracing
        self.last_decisions = None
        self._prov_candidates = (
            {} if tracing and self.tracer.candidate_provenance else None
        )
        self._trace_now = now

        with maybe_span(
            self.tracer, "grouping.group", now,
            jobs=len(jobs), matcher=self.matcher,
        ):
            result = self._group_inner(
                jobs, believed_profiles, capacity, preformed, tracing
            )
        self._prov_candidates = None
        return result

    def reset_caches(self) -> None:
        """Forget every memoized decision.

        Clears the weight, ordering, and per-bucket decision caches so
        the next :meth:`group` call behaves exactly like a freshly
        constructed grouper.  Differential oracles use this to obtain a
        cold reference solve from a warm instance.
        """
        self._weight_cache.clear()
        self._ordering_cache.clear()
        self._decision_cache = {}
        self._decision_cache_prev = {}

    def invalidate_gpu_buckets(self, gpu_counts) -> int:
        """Drop memoized matchings for the given GPU-count buckets.

        An elastic resize moves a job between GPU-count buckets, so the
        cached per-bucket matchings of both the source and destination
        bucket describe memberships that no longer exist.  The cache
        keys embed each node's duration key and would miss anyway, but
        explicit invalidation keeps correctness independent of key
        granularity (a coarse ``cache_quantum`` must never revive a
        pre-resize matching).  The weight/ordering caches are pure in
        the profile contents and stay.

        Args:
            gpu_counts: Bucket GPU counts to forget (old and new size
                of the resized job, typically).

        Returns:
            Number of cache entries dropped.
        """
        drop = set(gpu_counts)
        dropped = 0
        for cache in (self._decision_cache, self._decision_cache_prev):
            stale = [key for key in cache if key[0] in drop]
            for key in stale:
                del cache[key]
            dropped += len(stale)
        return dropped

    def close(self) -> None:
        """Shut down the per-bucket worker pool, if one was started.

        Safe to call any number of times; the next parallel
        :meth:`group` call lazily recreates the pool.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def _group_inner(
        self,
        jobs: Sequence[Job],
        believed_profiles: Sequence[StageProfile],
        capacity: Optional[int],
        preformed: Optional[Sequence[Sequence[int]]],
        tracing: bool,
    ) -> GroupingResult:
        buckets, bucket_order = self._build_nodes(jobs, believed_profiles, preformed)
        self._decision_cache_prev = self._decision_cache
        self._decision_cache = {}

        if self.matcher == "exact":
            groups: List[JobGroup] = []
            for gpus in bucket_order:
                groups.extend(self._group_exact(buckets[gpus]))
            if tracing:
                self.last_decisions = tuple(
                    self._decision_from_group(group) for group in groups
                )
            return self._result(groups, rounds=1)

        demand = sum(
            node.num_gpus for nodes in buckets.values() for node in nodes
        )
        max_rounds = (
            0
            if self.max_group_size == 1
            else max(1, math.ceil(math.log2(self.max_group_size)))
        )
        executed = 0
        for _ in range(max_rounds):
            if capacity is not None and demand <= capacity:
                break
            candidates = self._candidate_merges(buckets, bucket_order)
            if not candidates:
                break
            executed += 1
            demand = self._apply_merges(
                buckets, candidates, demand, capacity, round_number=executed
            )

        if capacity is not None:
            demand = self._split_slack(buckets, bucket_order, demand, capacity)

        final_nodes = [
            node for gpus in bucket_order for node in buckets[gpus]
        ]
        groups = [self._finalize(node) for node in final_nodes]
        if tracing:
            self.last_decisions = tuple(
                self._decision_for(node, group)
                for node, group in zip(final_nodes, groups)
            )
        return self._result(groups, rounds=executed)

    # -- internals ---------------------------------------------------------------

    def _profile_key(self, profile: StageProfile) -> Tuple[float, ...]:
        return profile.durations_key(self.cache_quantum)

    def _build_nodes(
        self,
        jobs: Sequence[Job],
        believed_profiles: Sequence[StageProfile],
        preformed: Optional[Sequence[Sequence[int]]],
    ) -> Tuple[Dict[int, List[_Node]], List[int]]:
        by_id = {
            job.job_id: (job, profile)
            for job, profile in zip(jobs, believed_profiles)
        }
        seed_of: Dict[int, Tuple[int, ...]] = {}
        for seed in preformed or ():
            members = tuple(seed)
            if len(members) < 2 or len(members) > self.max_group_size:
                continue
            if any(job_id not in by_id for job_id in members):
                continue
            gpu_counts = {by_id[job_id][0].num_gpus for job_id in members}
            if len(gpu_counts) != 1:
                continue
            affinities = {
                (by_id[j][0].spec.gpu_affinity, by_id[j][0].spec.affinity_mode)
                for j in members
            }
            if len(affinities) != 1:
                continue
            if any(job_id in seed_of for job_id in members):
                continue
            for job_id in members:
                seed_of[job_id] = members

        buckets: Dict[int, List[_Node]] = {}
        bucket_order: List[int] = []
        emitted = set()
        for job, profile in zip(jobs, believed_profiles):
            if job.job_id in emitted:
                continue
            members = seed_of.get(job.job_id, (job.job_id,))
            node_jobs = [by_id[job_id][0] for job_id in members]
            node_profiles = [by_id[job_id][1] for job_id in members]
            emitted.update(members)
            gpus = node_jobs[0].num_gpus
            if gpus not in buckets:
                buckets[gpus] = []
                bucket_order.append(gpus)
            buckets[gpus].append(
                _Node(
                    node_jobs,
                    node_profiles,
                    [self._profile_key(p) for p in node_profiles],
                    seeded=len(members) > 1,
                )
            )
        return buckets, bucket_order

    def _node_cache_key(self, node: _Node) -> Tuple:
        """Everything that determines a node's edges in the matching.

        Durations keys fix every weight and size constraint; the memory
        footprints only matter when the feasibility check is active.
        """
        if self._memory_cap(node) is None:
            key: Tuple = tuple(node.keys)
        else:
            key = (
                tuple(node.keys),
                tuple(job.spec.memory for job in node.jobs),
            )
        # Affinity only joins the key when present, so every pre-hetero
        # cache key (and therefore warm-plan hit pattern) is unchanged.
        # The per-type memory cap is a function of the affinity, so the
        # suffix also disambiguates cached decisions across caps.
        spec = node.jobs[0].spec
        if spec.gpu_affinity is not None:
            key = (key, ("affinity", spec.gpu_affinity, spec.affinity_mode))
        return key

    def _candidate_merges(
        self,
        buckets: Dict[int, List[_Node]],
        bucket_order: List[int],
    ) -> List[Tuple[float, int, int, int]]:
        """Matched node pairs across all buckets, one matching each.

        Returns tuples ``(weight, priority_index, gpus, partner_index)``
        where ``priority_index < partner_index`` are positions in
        ``buckets[gpus]`` at call time.  Matchings are memoized per
        bucket against the node-key sequence, so a bucket unchanged
        since the previous ``group()`` call reuses its pairs without
        rebuilding edges or rerunning the matcher.  With ``workers >
        1`` the cache-missing large buckets are matched in parallel
        (:meth:`_match_buckets_parallel`) before the in-order merge.
        """
        candidates: List[Tuple[float, int, int, int]] = []
        entries: List[list] = []
        for gpus in bucket_order:
            nodes = buckets[gpus]
            if len(nodes) < 2:
                continue
            bucket_key = (
                gpus,
                tuple(self._node_cache_key(node) for node in nodes),
            )
            matched = self._decision_cache_prev.get(bucket_key)
            # entry: [gpus, nodes, bucket_key, matched, cache_hit]
            entries.append([gpus, nodes, bucket_key, matched, matched is not None])

        dispatch = self._parallel_dispatch(entries)
        if dispatch:
            parallel_results = self._match_buckets_parallel(
                [entry[1] for entry in dispatch]
            )
            for entry, matched in zip(dispatch, parallel_results):
                entry[3] = matched

        for gpus, nodes, bucket_key, matched, cache_hit in entries:
            if matched is None:
                with maybe_span(
                    self.tracer, "grouping.match", self._trace_now,
                    bucket_gpus=gpus, nodes=len(nodes),
                ):
                    matched = self._match_bucket(nodes)
            self._decision_cache[bucket_key] = matched
            if self._tracing:
                tracer = self.tracer
                kind = "hit" if cache_hit else "miss"
                tracer.count(f"grouping.decision_cache.{kind}")
                tracer.emit(
                    EventCategory.CACHE,
                    f"grouping.decision_cache.{kind}",
                    self._trace_now,
                    bucket_gpus=gpus,
                    nodes=len(nodes),
                    pairs=len(matched),
                )
                if cache_hit:
                    self._note_cached_candidates(nodes, matched)
            for weight, left, right in matched:
                candidates.append((weight, left, gpus, right))
        if self.matcher == "blossom":
            # Best interleaving first; ties broken by priority index.
            candidates.sort(key=lambda c: (-c[0], c[1]))
        else:
            # "w/o Blossom": strict priority order, as the paper's
            # ablation packs jobs in descending priority.
            candidates.sort(key=lambda c: c[1])
        return candidates

    def _parallel_dispatch(self, entries: List[list]) -> List[list]:
        """The cache-missing buckets worth sending to the pool.

        Parallel dispatch needs ``workers > 1``, the blossom matcher
        (greedy is O(n) and exact is capped at 12 nodes), no active
        tracing (matching spans and candidate provenance are collected
        in-process), and at least two sufficiently large miss buckets —
        one bucket has nothing to overlap with.
        """
        if self.workers < 2 or self.matcher != "blossom" or self._tracing:
            return []
        eligible = [
            entry
            for entry in entries
            if entry[3] is None and len(entry[1]) >= self.PARALLEL_MIN_NODES
        ]
        if len(eligible) < 2:
            return []
        # Worker payloads do not carry affinity metadata, so buckets
        # with affine nodes must match serially (which enforces
        # _affinity_compatible) rather than on the pool.
        for entry in eligible:
            for node in entry[1]:
                if node.jobs[0].spec.gpu_affinity is not None:
                    return []
        return eligible

    def _worker_config(self) -> Dict[str, object]:
        """Constructor kwargs reproducing this grouper in a worker."""
        config: Dict[str, object] = {
            "max_group_size": self.max_group_size,
            "num_resources": self.num_resources,
            "matcher": self.matcher,
            "ordering": self.ordering,
            "min_efficiency": self.min_efficiency,
            "gpu_memory_gb": self.gpu_memory_gb,
            "sparsify_threshold": self.sparsify_threshold,
            "cache_quantum": self.cache_quantum,
        }
        if self._sparsify_config is not None:
            config["max_degree"] = self._sparsify_config.max_degree
            config["probe_limit"] = self._sparsify_config.probe_limit
        return config

    def _match_buckets_parallel(
        self, node_lists: List[List[_Node]]
    ) -> List[Optional[List[_MatchedPair]]]:
        """Match several buckets on the worker pool.

        Returns one pair list per bucket, aligned with ``node_lists``;
        ``None`` marks a bucket the pool could not match (broken pool
        beyond its rebuild budget, or a deterministic worker error) —
        the caller re-runs those serially, which is bit-identical and
        reproduces any real exception in the parent process.
        """
        if self._pool is None:
            self._pool = BucketPool(self.workers)
        with_memory = self.gpu_memory_gb is not None
        payloads = [
            bucket_payload(nodes, with_memory) for nodes in node_lists
        ]
        try:
            return self._pool.match_buckets(self._worker_config(), payloads)
        except Exception:
            # Pool machinery failed outright (e.g. no process support):
            # degrade to the serial path rather than lose the decision.
            self.close()
            return [None] * len(node_lists)

    def _match_bucket(self, nodes: List[_Node]) -> List[_MatchedPair]:
        """One matching over a bucket; pairs as (weight, i, j), i < j.

        Large buckets match on a bounded-degree candidate graph; nodes
        the sparse matching strands (all their candidates taken) are
        rematched among themselves until no pair forms, so the final
        cardinality tracks the dense algorithm's.  A bucket below the
        sparsify threshold takes exactly one dense pass, whose maximum
        weight matching leaves no feasible pair behind by construction.
        """
        if self.matcher == "greedy":
            # Only consecutive priority pairs can ever match, so only
            # their edges are evaluated — same result as filtering the
            # dense edge set, built in O(n) weight evaluations.
            matched = []
            for i, j in sequential_pair_matching(range(len(nodes))):
                weight = self._pair_weight(nodes[i], nodes[j])
                if weight is not None:
                    matched.append((weight, i, j))
            return matched

        matched = []
        remaining = list(range(len(nodes)))
        while len(remaining) >= 2:
            sparse = (
                self._sparsify_config is not None
                and len(remaining) >= self._sparsify_config.threshold
            )
            new_pairs = self._match_subset(nodes, remaining, sparse)
            matched.extend(new_pairs)
            if not sparse or not new_pairs:
                break
            taken = set()
            for _weight, left, right in new_pairs:
                taken.add(left)
                taken.add(right)
            remaining = [index for index in remaining if index not in taken]
        return matched

    def _match_subset(
        self,
        nodes: List[_Node],
        indices: List[int],
        sparse: bool,
    ) -> List[_MatchedPair]:
        """Match the sub-bucket ``indices``; pairs in global indices."""
        subset = [nodes[index] for index in indices]
        if sparse:
            config = self._sparsify_config
            signatures = [
                node_signature(
                    self._aggregate_durations(node),
                    config.duration_bin_base,
                )
                for node in subset
            ]
            edges = sparse_candidate_edges(
                signatures,
                lambda a, b: self._pair_weight(subset[a], subset[b]),
                config,
                tracer=self.tracer,
                sim_time=self._trace_now,
                batch_weight_fn=lambda pairs: self._pair_weights_batch(
                    subset, pairs
                ),
            )
        else:
            all_pairs = [
                (a, b)
                for a in range(len(subset))
                for b in range(a + 1, len(subset))
            ]
            weights = self._pair_weights_batch(subset, all_pairs)
            edges = [
                (a, b, weight)
                for (a, b), weight in zip(all_pairs, weights)
                if weight is not None
            ]
        if not edges:
            return []
        weight_of = {(u, v): w for u, v, w in edges}
        pairs = list(matching_pairs(edges))
        if self._prov_candidates is not None:
            matched_local = {(min(u, v), max(u, v)) for u, v in pairs}
            self._note_candidates(subset, edges, matched_local)
        return [
            (
                weight_of[(min(u, v), max(u, v))],
                indices[min(u, v)],
                indices[max(u, v)],
            )
            for u, v in pairs
        ]

    def _pair_weight(self, u: _Node, v: _Node) -> Optional[float]:
        """Edge weight of merging two nodes, or None if infeasible."""
        if u.size + v.size > self.max_group_size:
            return None
        if not self._affinity_compatible(u, v):
            return None
        if not self._memory_feasible(u, v):
            return None
        weight = self._merge_weight(u, v)
        if weight < self.min_efficiency:
            return None
        return weight

    def _pair_weights_batch(
        self,
        subset: List[_Node],
        pairs: Sequence[Tuple[int, int]],
    ) -> List[Optional[float]]:
        """Vectorized :meth:`_pair_weight` over many candidate pairs.

        Feasibility checks and the weight cache are walked pair-by-pair
        in order (so cache hit/miss counters and cache contents match
        the scalar path exactly); the uncached weights are then
        evaluated in one :func:`batched_best_periods` numpy batch per
        merged-group size.  Results are bit-identical to calling
        ``_pair_weight`` per pair: the batched kernel reproduces the
        scalar slot-max/period arithmetic exactly.
        """
        results: List[Optional[float]] = [None] * len(pairs)
        min_efficiency = self.min_efficiency
        tracing = self._tracing
        tracer = self.tracer
        cache = self._weight_cache
        # pending: cache key -> [slots, profiles] for uncached weights.
        pending: Dict[Tuple, list] = {}
        for slot, (a, b) in enumerate(pairs):
            u = subset[a]
            v = subset[b]
            if u.size + v.size > self.max_group_size:
                continue
            if not self._affinity_compatible(u, v):
                continue
            if not self._memory_feasible(u, v):
                continue
            key = tuple(sorted(u.keys + v.keys))
            cached = cache.get(key)
            if cached is not None:
                if tracing:
                    tracer.count("grouping.weight_cache.hit")
                if cached >= min_efficiency:
                    results[slot] = cached
                continue
            entry = pending.get(key)
            if entry is None:
                if tracing:
                    tracer.count("grouping.weight_cache.miss")
                pending[key] = [[slot], u.profiles + v.profiles]
            else:
                # Another pair with the same quantized key: the scalar
                # path would have found it in the cache by now.
                if tracing:
                    tracer.count("grouping.weight_cache.hit")
                entry[0].append(slot)
        if not pending:
            return results
        by_size: Dict[int, List[Tuple]] = {}
        for key, (_slots, profiles) in pending.items():
            by_size.setdefault(len(profiles), []).append(key)
        for _size, keys in by_size.items():
            groups = [
                tuple(p.durations for p in pending[key][1]) for key in keys
            ]
            periods = batched_best_periods(groups, self.num_resources)
            for key, period in zip(keys, periods):
                slots, profiles = pending[key]
                weight = efficiency_for_period(
                    profiles, period, self.num_resources
                )
                cache[key] = weight
                if weight >= min_efficiency:
                    for slot in slots:
                        results[slot] = weight
        return results

    def _aggregate_durations(self, node: _Node) -> List[float]:
        k = self.num_resources
        totals = [0.0] * k
        for profile in node.profiles:
            durations = profile.durations
            for r in range(k):
                totals[r] += durations[r]
        return totals

    def _apply_merges(
        self,
        buckets: Dict[int, List[_Node]],
        candidates: List[Tuple[float, int, int, int]],
        demand: int,
        capacity: Optional[int],
        round_number: int = 0,
    ) -> int:
        """Merge candidate pairs until the demand fits the capacity.

        Pairs are disjoint (they come from one matching per bucket), so
        merges are recorded against original indices — merged node at
        the left position, tombstone at the right — and each bucket
        list is rebuilt once, instead of O(n) list surgery per merge.
        """
        pending: Dict[int, Dict[int, Optional[_Node]]] = {}
        for _weight, left, gpus, right in candidates:
            if capacity is not None and demand <= capacity:
                break
            nodes = buckets[gpus]
            per_bucket = pending.setdefault(gpus, {})
            per_bucket[left] = nodes[left].merged_with(
                nodes[right], round_formed=round_number
            )
            per_bucket[right] = None
            demand -= gpus
        for gpus, per_bucket in pending.items():
            rebuilt = []
            for index, node in enumerate(buckets[gpus]):
                replacement = per_bucket.get(index, node)
                if replacement is not None:
                    rebuilt.append(replacement)
            buckets[gpus] = rebuilt
        return demand

    def _split_slack(
        self,
        buckets: Dict[int, List[_Node]],
        bucket_order: List[int],
        demand: int,
        capacity: int,
    ) -> int:
        """Dissolve sharing the cluster no longer needs (drain phase).

        Sharing always slows the members, so whenever spare GPUs exist
        the worst-efficiency group sheds its last member into its own
        allocation.  This keeps Muri work-conserving: with a short
        queue it degenerates to exclusive allocation, and a group never
        outlives the congestion that justified it.
        """
        while demand < capacity:
            worst: Optional[Tuple[float, int, _Node]] = None
            for gpus in bucket_order:
                if demand + gpus > capacity:
                    continue
                for node in buckets[gpus]:
                    if node.size < 2:
                        continue
                    gamma = self._node_efficiency(node)
                    if worst is None or gamma < worst[0]:
                        worst = (gamma, gpus, node)
            if worst is None:
                break
            _gamma, gpus, node = worst
            split_job = node.jobs.pop()
            split_profile = node.profiles.pop()
            split_key = node.keys.pop()
            buckets[gpus].append(
                _Node([split_job], [split_profile], [split_key])
            )
            demand += gpus
        return demand

    def _affinity_compatible(self, a: _Node, b: _Node) -> bool:
        """May two nodes share GPUs on a heterogeneous cluster?

        Nodes are affinity-homogeneous by construction (singletons
        trivially, merges inductively), so the first job speaks for
        each node.  Unaffine nodes always combine — the homogeneous
        fast path — while affine nodes only combine with identical
        ``(gpu_affinity, affinity_mode)``: a group must be placeable
        on a single generation pool.
        """
        sa = a.jobs[0].spec
        sb = b.jobs[0].spec
        if sa.gpu_affinity is None and sb.gpu_affinity is None:
            return True
        return (
            sa.gpu_affinity == sb.gpu_affinity
            and sa.affinity_mode == sb.affinity_mode
        )

    def _memory_cap(self, node: _Node) -> Optional[float]:
        """Effective per-GPU memory capacity for one node.

        An affine node is bound for its generation's pool, so its cap
        is that generation's capacity when a per-type table is set;
        unaffine nodes (and generations missing from the table) fall
        back to the flat ``gpu_memory_gb``.
        """
        by_type = self.gpu_memory_by_type
        if by_type:
            affinity = node.jobs[0].spec.gpu_affinity
            if affinity is not None:
                cap = by_type.get(affinity)
                if cap is not None:
                    return cap
        return self.gpu_memory_gb

    def _memory_feasible(self, a: _Node, b: _Node) -> bool:
        """Would the merged group fit in GPU memory (section 2.2)?

        Affinity compatibility is checked before memory, so ``a``
        speaks for the merged group's landing cap.  Members without a
        declared footprint are excluded from the peak — their share is
        unknown, and rejecting the merge outright would forbid every
        grouping in partially profiled workloads — but the check still
        binds over the *known* footprints instead of being skipped
        wholesale; both the partial and the wholly-unknown skip bump
        the ``group.memory_check_skipped`` counter.
        """
        cap = self._memory_cap(a)
        if cap is None:
            return True
        from repro.jobs.memory import group_peak_memory

        footprints = [
            job.spec.memory for job in a.jobs + b.jobs
        ]
        known = [f for f in footprints if f is not None]
        if len(known) < len(footprints):
            if self._tracing:
                self.tracer.count("group.memory_check_skipped")
            if not known:
                return True
        return group_peak_memory(known) <= cap

    def _node_efficiency(self, node: _Node) -> float:
        return self._weight_for(node.keys, node.profiles)

    # -- provenance (tracing only) ---------------------------------------------

    #: Per-job scratch-list cap while collecting candidate edges; the
    #: final records keep only PROVENANCE_CANDIDATE_CAP of these.
    _CANDIDATE_SCRATCH_CAP = 64

    def _note_candidates(
        self,
        subset: List[_Node],
        edges: List[Tuple[int, int, float]],
        matched_local: set,
    ) -> None:
        """File every evaluated edge as a candidate for both endpoints."""
        buffer = self._prov_candidates
        for a, b, weight in edges:
            matched = (min(a, b), max(a, b)) in matched_local
            left, right = subset[a], subset[b]
            left_ids = tuple(job.job_id for job in left.jobs)
            right_ids = tuple(job.job_id for job in right.jobs)
            forward = CandidateConsidered(right_ids, weight, matched)
            backward = CandidateConsidered(left_ids, weight, matched)
            for job_id in left_ids:
                per_job = buffer.setdefault(job_id, [])
                if matched or len(per_job) < self._CANDIDATE_SCRATCH_CAP:
                    per_job.append(forward)
            for job_id in right_ids:
                per_job = buffer.setdefault(job_id, [])
                if matched or len(per_job) < self._CANDIDATE_SCRATCH_CAP:
                    per_job.append(backward)

    def _note_cached_candidates(
        self,
        nodes: List[_Node],
        matched: List[_MatchedPair],
    ) -> None:
        """On a decision-cache hit only the chosen pairs are known —
        record those so provenance still shows who matched whom."""
        buffer = self._prov_candidates
        if buffer is None:
            return
        for weight, left, right in matched:
            left_ids = tuple(job.job_id for job in nodes[left].jobs)
            right_ids = tuple(job.job_id for job in nodes[right].jobs)
            for job_id in left_ids:
                buffer.setdefault(job_id, []).append(
                    CandidateConsidered(right_ids, weight, True)
                )
            for job_id in right_ids:
                buffer.setdefault(job_id, []).append(
                    CandidateConsidered(left_ids, weight, True)
                )

    def _job_candidates(self, job_id: int) -> Tuple[CandidateConsidered, ...]:
        """The best candidates recorded for one job, matched ones first."""
        buffer = self._prov_candidates
        if not buffer or job_id not in buffer:
            return ()
        ranked = sorted(
            buffer[job_id],
            key=lambda c: (not c.matched, -c.efficiency),
        )
        return tuple(ranked[: self.PROVENANCE_CANDIDATE_CAP])

    def _decision_for(self, node: _Node, group: JobGroup) -> GroupDecision:
        """The provenance record of one final node/group pair."""
        members = tuple(job.job_id for job in node.jobs)
        return GroupDecision(
            members=members,
            efficiency=group.believed_efficiency if node.size > 1 else 1.0,
            round_formed=node.round_formed,
            seeded=node.seeded,
            candidates={
                job_id: self._job_candidates(job_id) for job_id in members
            },
        )

    def _decision_from_group(self, group: JobGroup) -> GroupDecision:
        """Provenance for the exact matcher, which keeps no node state."""
        members = tuple(job.job_id for job in group.jobs)
        return GroupDecision(
            members=members,
            efficiency=group.believed_efficiency if group.size > 1 else 1.0,
            round_formed=1 if group.size > 1 else 0,
            seeded=False,
        )

    def _result(self, groups: List[JobGroup], rounds: int) -> GroupingResult:
        total_eff = sum(g.believed_efficiency for g in groups if g.size > 1)
        demand = sum(g.num_gpus for g in groups)
        return GroupingResult(tuple(groups), total_eff, rounds, demand)

    def _merge_weight(self, a: _Node, b: _Node) -> float:
        # Edge weights always measure the *achievable* efficiency, so
        # the matching is computed with the best ordering; the policy
        # knob only affects the ordering executed (Fig. 11's variant
        # "Muri-L w/ worst ordering" still groups like Muri-L).
        return self._weight_for(a.keys + b.keys, a.profiles + b.profiles)

    def _weight_for(
        self,
        keys: Sequence[Tuple[float, ...]],
        profiles: Sequence[StageProfile],
    ) -> float:
        key = tuple(sorted(keys))
        cached = self._weight_cache.get(key)
        tracing = self._tracing
        if cached is not None:
            if tracing:
                self.tracer.count("grouping.weight_cache.hit")
            return cached
        if tracing:
            self.tracer.count("grouping.weight_cache.miss")
        rows = tuple(profile.durations for profile in profiles)
        _offsets, period = best_period_for_rows(rows, self.num_resources)
        weight = efficiency_for_period(profiles, period, self.num_resources)
        self._weight_cache[key] = weight
        return weight

    def _finalize(self, node: _Node) -> JobGroup:
        profiles = tuple(node.profiles)
        key = tuple(node.keys)
        offsets = self._ordering_cache.get(key)
        if offsets is None:
            if self._tracing:
                self.tracer.count("grouping.ordering_cache.miss")
            ordering_fn = _ORDERING_FNS[self.ordering]
            with maybe_span(
                self.tracer, "grouping.ordering", self._trace_now,
                members=len(profiles),
            ):
                offsets, _period = ordering_fn(profiles, self.num_resources)
            self._ordering_cache[key] = offsets
        elif self._tracing:
            self.tracer.count("grouping.ordering_cache.hit")
        return JobGroup(
            jobs=tuple(node.jobs),
            believed_profiles=profiles,
            offsets=offsets,
            num_resources=self.num_resources,
        )

    def _group_exact(self, nodes: List[_Node]) -> List[JobGroup]:
        """Exact hypergraph matching over singleton nodes (small n)."""
        if len(nodes) > 12:
            raise ValueError(
                "exact matching is exponential; refusing more than 12 jobs"
            )

        def weight(group_indices: Tuple[int, ...]) -> float:
            profiles = tuple(
                profile
                for idx in group_indices
                for profile in nodes[idx].profiles
            )
            if len(profiles) > self.max_group_size:
                return 0.0
            if any(
                not self._affinity_compatible(nodes[group_indices[0]], nodes[idx])
                for idx in group_indices[1:]
            ):
                return 0.0
            _offsets, period = best_ordering(profiles, self.num_resources)
            gamma = efficiency_for_period(profiles, period, self.num_resources)
            return gamma if gamma >= self.min_efficiency else 0.0

        chosen, _total = exact_hypergraph_matching(
            len(nodes), min(self.max_group_size, len(nodes)), weight
        )
        grouped = set()
        result: List[JobGroup] = []
        for group_indices in chosen:
            merged = _Node([], [], [])
            for idx in group_indices:
                merged.jobs.extend(nodes[idx].jobs)
                merged.profiles.extend(nodes[idx].profiles)
                merged.keys.extend(nodes[idx].keys)
                grouped.add(idx)
            result.append(self._finalize(merged))
        for idx, node in enumerate(nodes):
            if idx not in grouped:
                result.append(self._finalize(node))
        return result
