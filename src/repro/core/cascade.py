"""The cascading-slowdown model behind GPU-count bucketing (Fig. 7).

If a distributed job's workers interleave with *different* partner sets
on different GPUs, two dependency kinds couple:

* **intra-job synchronization** — a job advances at its slowest worker;
* **inter-job interleaving** — a worker's slot cycle waits for every
  co-located job's stage.

Fig. 7's example: on GPU 1, job A waits a unit to use the network
because it interleaves with B; intra-job sync propagates that wait to
A's worker on GPU 2, where it stretches job C's cycle — C is slowed by
a job it never shares a GPU with.

At steady state every job in a *sharing component* (jobs connected
through shared GPUs) ends up pacing at the component's slowest local
cycle: the slowdown propagates transitively until the whole component
runs in lock step.  :func:`cascade_periods` computes exactly that —
each job's effective period is the maximum interleaved slot-cycle
length over its connected component.

Muri's answer (section 4.2) is to *bucket* jobs by GPU count and give
every member of a group the same partner set on every GPU, which makes
each component a single group and eliminates the cascade; this module
quantifies what that avoids (see ``benchmarks/test_fig7_cascade.py``).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

from repro.core.ordering import group_iteration_time
from repro.jobs.resources import NUM_RESOURCES
from repro.jobs.stage import StageProfile

__all__ = ["GpuAssignment", "cascade_periods", "local_cycle_length"]

JobId = Hashable

#: One GPU's co-located jobs: ``[(job_id, profile, offset), ...]``.
GpuAssignment = Sequence[Tuple[JobId, StageProfile, int]]


def local_cycle_length(
    assignment: GpuAssignment,
    num_resources: int = NUM_RESOURCES,
) -> float:
    """The interleaved slot-cycle length of one GPU in isolation."""
    if not assignment:
        raise ValueError("a GPU assignment needs at least one job")
    profiles = tuple(profile for _job, profile, _offset in assignment)
    offsets = tuple(offset for _job, _profile, offset in assignment)
    return group_iteration_time(profiles, offsets, num_resources)


def cascade_periods(
    gpus: Mapping[Hashable, GpuAssignment],
    num_resources: int = NUM_RESOURCES,
) -> Dict[JobId, float]:
    """Effective per-job iteration periods under cross-group coupling.

    Args:
        gpus: Mapping from GPU id to its co-located jobs.  A job
            appearing on several GPUs is one distributed job whose
            workers synchronize each iteration.

    Returns:
        ``{job_id: period}`` where the period is the maximum local
        cycle length over the job's sharing component — the steady
        state of the cascade.
    """
    if not gpus:
        return {}

    cycle: Dict[Hashable, float] = {
        gpu: local_cycle_length(assignment, num_resources)
        for gpu, assignment in gpus.items()
    }

    # Union-find over GPUs: two GPUs couple when a job spans both.
    parent: Dict[Hashable, Hashable] = {gpu: gpu for gpu in gpus}

    def find(node: Hashable) -> Hashable:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(a: Hashable, b: Hashable) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    gpus_of_job: Dict[JobId, List[Hashable]] = {}
    for gpu, assignment in gpus.items():
        for job_id, _profile, _offset in assignment:
            gpus_of_job.setdefault(job_id, []).append(gpu)
    for spanned in gpus_of_job.values():
        first = spanned[0]
        for other in spanned[1:]:
            union(first, other)

    component_period: Dict[Hashable, float] = {}
    for gpu in gpus:
        root = find(gpu)
        component_period[root] = max(
            component_period.get(root, 0.0), cycle[gpu]
        )

    return {
        job_id: component_period[find(spanned[0])]
        for job_id, spanned in gpus_of_job.items()
    }
