"""Interleaving efficiency (Eq. 1-4 of the paper).

The interleaving efficiency gamma of a job group is the fraction of
time the shared resources are busy, averaged over resource types::

    gamma = 1 - (1/k) * sum_j (T - sum_i t_i^j) / T        (Eq. 4)

where ``T`` is the group's interleaved iteration period under the best
stage ordering (Eq. 3) and ``t_i^j`` is job ``i``'s stage duration on
resource ``j``.  A perfectly overlapping pair (the paper's jobs A and
B in Fig. 4) has gamma = 1; a pair that leaves the GPU idle half the
time (jobs A and C) has gamma = 0.75.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.jobs.resources import NUM_RESOURCES
from repro.jobs.stage import StageProfile
from repro.core.ordering import (
    Offsets,
    best_ordering,
    group_iteration_time,
    identity_ordering,
    worst_ordering,
)

__all__ = [
    "interleaving_efficiency",
    "efficiency_for_period",
    "pair_efficiency",
    "group_speedup",
    "OrderingPolicy",
]

#: Accepted values for the ordering policy knob.
OrderingPolicy = str
_ORDERING_POLICIES = ("best", "worst", "identity")


def _resolve_ordering(
    profiles: Sequence[StageProfile],
    ordering: OrderingPolicy,
    offsets: Optional[Offsets],
    num_resources: int,
) -> Tuple[Offsets, float]:
    if offsets is not None:
        return offsets, group_iteration_time(profiles, offsets, num_resources)
    if ordering == "best":
        return best_ordering(profiles, num_resources)
    if ordering == "worst":
        return worst_ordering(profiles, num_resources)
    if ordering == "identity":
        return identity_ordering(profiles, num_resources)
    raise ValueError(
        f"unknown ordering policy {ordering!r}; expected one of "
        f"{_ORDERING_POLICIES} or explicit offsets"
    )


def efficiency_for_period(
    profiles: Sequence[StageProfile],
    period: float,
    num_resources: int = NUM_RESOURCES,
) -> float:
    """Evaluate Eq. 4 for a known iteration period ``T``."""
    if period <= 0:
        raise ValueError("period must be > 0")
    idle_fraction_sum = 0.0
    for resource in range(num_resources):
        busy = sum(p.durations[resource] for p in profiles)
        idle_fraction_sum += (period - busy) / period
    return 1.0 - idle_fraction_sum / num_resources


def interleaving_efficiency(
    profiles: Sequence[StageProfile],
    ordering: OrderingPolicy = "best",
    offsets: Optional[Offsets] = None,
    num_resources: int = NUM_RESOURCES,
) -> float:
    """Interleaving efficiency gamma of a group of jobs (Eq. 4).

    Args:
        profiles: Per-iteration stage profiles, one per job in the
            group (1 to ``num_resources`` jobs).
        ordering: "best" (Muri's choice), "worst" (Fig. 11 ablation) or
            "identity" (Eq. 3 verbatim).  Ignored when ``offsets`` is
            given.
        offsets: Explicit phase offsets, one per job, distinct mod k.
        num_resources: Number of resource types k.

    Returns:
        gamma in ``(0, 1]``.
    """
    _, period = _resolve_ordering(profiles, ordering, offsets, num_resources)
    return efficiency_for_period(profiles, period, num_resources)


def pair_efficiency(
    a: StageProfile,
    b: StageProfile,
    ordering: OrderingPolicy = "best",
    num_resources: int = NUM_RESOURCES,
) -> float:
    """Interleaving efficiency of grouping exactly two jobs.

    This is the edge weight of the matching graph in section 4.1.
    """
    return interleaving_efficiency((a, b), ordering, None, num_resources)


def group_speedup(
    profiles: Sequence[StageProfile],
    ordering: OrderingPolicy = "best",
    offsets: Optional[Offsets] = None,
    num_resources: int = NUM_RESOURCES,
) -> float:
    """Total normalized throughput of an interleaved group.

    Each job completes one iteration per interleaved period ``T``, so
    its normalized throughput is ``solo_iteration_time / T``; the group
    speedup is the sum over jobs (Table 2's "Total Norm. Tput" row).
    Running jobs separately back-to-back yields exactly 1.0; perfect
    interleaving of p jobs yields p.
    """
    _, period = _resolve_ordering(profiles, ordering, offsets, num_resources)
    return sum(p.iteration_time / period for p in profiles)
