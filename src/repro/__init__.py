"""repro: a reproduction of Muri — multi-resource interleaving for deep
learning training (SIGCOMM 2022).

The package provides:

* ``repro.core`` — interleaving efficiency (Eq. 1-4), stage-ordering
  search, the Blossom-based multi-round grouping algorithm, and the
  Muri-S / Muri-L schedulers;
* ``repro.matching`` — a from-scratch blossom maximum-weight-matching
  implementation plus greedy and exact oracles;
* ``repro.jobs`` / ``repro.models`` — the job, stage, and resource
  model and the paper's eight-model zoo;
* ``repro.schedulers`` — FIFO, SJF, SRTF, SRSF, Tiresias, Themis and
  AntMan baselines;
* ``repro.cluster`` / ``repro.sim`` — the GPU-cluster substrate and a
  discrete-event simulator with interleaving-aware executor semantics;
* ``repro.trace`` / ``repro.profiler`` — Philly-like synthetic traces
  and the dry-run resource profiler with the Fig. 14 noise model;
* ``repro.analysis`` — experiment runners and report formatting shared
  by the examples and the benchmark harness;
* ``repro.observe`` — structured tracing and decision provenance: a
  zero-overhead-when-disabled :class:`Tracer` threaded through the
  simulator/scheduler stack, Chrome-trace/JSONL exporters, and the
  per-job grouping provenance behind ``repro explain``
  (see ``docs/observability.md``);
* ``repro.sweep`` — parallel, resumable experiment sweeps: declarative
  run cells with stable hash-derived ids, a process-pool
  :class:`SweepRunner` with per-run timeouts and bounded retries, a
  JSONL :class:`ResultStore` for resume, and deterministic ``k/n``
  sharding (see ``docs/experiments.md``);
* ``repro.verify`` — the paper's model as executable checks: a runtime
  :class:`InvariantChecker` that attaches through the ordinary
  ``tracer=`` parameter, naive-reference and exact-matcher differential
  oracles, and the seeded ``repro fuzz`` harness whose failures shrink
  into replayable JSON repro files (see ``docs/verification.md``);
* ``repro.service`` — the online scheduling daemon: submission over a
  Unix socket speaking a versioned typed protocol, admission control,
  and a typed :class:`ServiceClient` (see ``docs/service.md``);
* ``repro.fleet`` — the multi-tenant sharded fleet: virtual-cluster
  partitioning, per-tenant quotas and fair-share credits, one
  scheduler shard per VC behind a deterministic routing front-end
  (see ``docs/fleet.md``);
* ``repro.elastic`` — the goodput-adaptive elastic arm: per-job
  :class:`ScalabilityProfile` speedup curves, a marginal-goodput
  water-filling :class:`GoodputAllocator`, and
  :class:`ElasticMuriScheduler`, which renegotiates GPU counts each
  interval before Algorithm-1 grouping and degenerates bit-identically
  to Muri on all-rigid workloads (see ``docs/elastic.md``);
* ``repro.hetero`` — GPU generations: a typed cluster substrate
  (:class:`GpuType` machine labels), per-model per-generation speed
  scaling, and type-pinned workload builders, with a homogeneous
  differential oracle proving single-type configs are bit-identical
  to the untyped path (see ``docs/heterogeneous.md``);
* ``repro.replay`` — the batch event-driven trace-replay harness for
  production-scale (100k+-job) traces, fed by the Philly CSV
  ingestion adapter in ``repro.trace.philly_csv``
  (see ``docs/replay.md``).

Quickstart::

    from repro import MuriScheduler, ClusterSimulator, generate_trace, build_jobs

    trace = generate_trace("1", num_jobs=200)
    jobs = build_jobs(trace)
    result = ClusterSimulator(MuriScheduler(policy="srsf")).run(jobs, trace.name)
    print(result.avg_jct, result.makespan)
"""

from repro.cluster import Cluster, GpuType, Machine
from repro.core import (
    JobGroup,
    MultiRoundGrouper,
    MuriScheduler,
    best_ordering,
    group_speedup,
    interleaving_efficiency,
    pair_efficiency,
    worst_ordering,
)
from repro.elastic import (
    ElasticMuriScheduler,
    GoodputAllocator,
    attach_scalability,
)
from repro.jobs import (
    Job,
    JobSpec,
    JobStatus,
    Resource,
    ScalabilityProfile,
    Stage,
    StageProfile,
)
from repro.matching import matching_pairs, max_weight_matching
from repro.models import MODEL_ZOO, ModelProfile, get_model, list_models
from repro.observe import (
    EventCategory,
    ProvenanceStore,
    TraceEvent,
    Tracer,
    format_explain,
    trace_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.profiler import ResourceProfiler, UniformNoise
from repro.schedulers import (
    Scheduler,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)
from repro.sim import (
    ClusterSimulator,
    ContentionModel,
    Decision,
    DecisionLog,
    FaultInjector,
    SimulationResult,
)
from repro.fleet import (
    FleetFrontEnd,
    FleetTopology,
    TenantQuota,
    VirtualCluster,
    partition_cluster,
)
from repro.service import (
    PROTOCOL_VERSION,
    SchedulerService,
    ServiceClient,
    SubmitRejected,
)
from repro.hetero import (
    DEFAULT_TYPE_SCALING,
    TypeScaling,
    build_hetero_jobs,
    make_hetero_cluster,
    pin_jobs,
)
from repro.replay import ReplayStats, replay_trace, synthetic_trace
from repro.sweep import ResultStore, RunResult, RunSpec, SweepRunner
from repro.trace import (
    Trace,
    TraceRecord,
    build_jobs,
    generate_trace,
    load_philly_csv,
    write_philly_csv,
)
from repro.verify import (
    INVARIANT_CATALOG,
    EpisodeSpec,
    InvariantChecker,
    InvariantViolation,
    compare_homogeneous_identity,
    run_episode,
    run_fuzz,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "MuriScheduler",
    "MultiRoundGrouper",
    "JobGroup",
    "interleaving_efficiency",
    "pair_efficiency",
    "group_speedup",
    "best_ordering",
    "worst_ordering",
    # matching
    "max_weight_matching",
    "matching_pairs",
    # jobs & models
    "Job",
    "JobSpec",
    "JobStatus",
    "Resource",
    "Stage",
    "StageProfile",
    "ModelProfile",
    "MODEL_ZOO",
    "get_model",
    "list_models",
    # cluster & sim
    "Cluster",
    "Machine",
    "ClusterSimulator",
    "SimulationResult",
    "ContentionModel",
    "FaultInjector",
    "Decision",
    "DecisionLog",
    # observability
    "Tracer",
    "TraceEvent",
    "EventCategory",
    "ProvenanceStore",
    "write_chrome_trace",
    "write_jsonl",
    "trace_summary",
    "format_explain",
    # sweeps
    "RunSpec",
    "RunResult",
    "SweepRunner",
    "ResultStore",
    # verification
    "InvariantChecker",
    "InvariantViolation",
    "INVARIANT_CATALOG",
    "EpisodeSpec",
    "run_episode",
    "run_fuzz",
    "compare_homogeneous_identity",
    # traces & profiling
    "Trace",
    "TraceRecord",
    "generate_trace",
    "build_jobs",
    "load_philly_csv",
    "write_philly_csv",
    "ResourceProfiler",
    "UniformNoise",
    # schedulers
    "Scheduler",
    "make_scheduler",
    "register_scheduler",
    "available_schedulers",
    # service
    "SchedulerService",
    "ServiceClient",
    "SubmitRejected",
    "PROTOCOL_VERSION",
    # fleet
    "FleetFrontEnd",
    "FleetTopology",
    "VirtualCluster",
    "TenantQuota",
    "partition_cluster",
    # elastic
    "ElasticMuriScheduler",
    "GoodputAllocator",
    "ScalabilityProfile",
    "attach_scalability",
    # heterogeneous & replay
    "GpuType",
    "TypeScaling",
    "DEFAULT_TYPE_SCALING",
    "make_hetero_cluster",
    "pin_jobs",
    "build_hetero_jobs",
    "ReplayStats",
    "replay_trace",
    "synthetic_trace",
]
