"""Plain-text report formatting for experiment results.

The benchmark harness regenerates the paper's tables and figure series
as text; these helpers keep that output consistent and readable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_speedup_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned monospace table.

    Args:
        headers: Column names.
        rows: Row values; floats are formatted with ``float_format``,
            everything else with ``str``.
        title: Optional line printed above the table.
        float_format: Format spec applied to float cells.
    """
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_speedup_table(
    metric_rows: Mapping[str, Mapping[str, float]],
    baselines: Sequence[str],
    title: Optional[str] = None,
) -> str:
    """Render the paper's "normalized metric" tables (Tables 4/5).

    Args:
        metric_rows: ``{metric_name: {scheduler: normalized value}}``.
        baselines: Column order.
        title: Optional heading.
    """
    headers = [""] + list(baselines)
    rows = []
    for metric, values in metric_rows.items():
        rows.append([metric] + [values.get(name, float("nan")) for name in baselines])
    return format_table(headers, rows, title=title)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: Optional[str] = None,
) -> str:
    """Render figure-style data: one x column plus one column per line."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(xs):
        rows.append([x] + [values[index] for values in series.values()])
    return format_table(headers, rows, title=title)
