"""Experiment runners for every table and figure in the paper.

Each function reproduces one evaluation artifact end to end: it builds
the workload, runs the schedulers through the simulator, and returns
the numbers in the same structure the paper reports.  The benchmark
harness (``benchmarks/``) and the examples both call these runners, so
there is exactly one implementation of each experiment.

Sizes default to bench scale (hundreds of jobs) so the whole suite
runs in minutes; pass ``num_jobs=None`` for paper-scale traces.

Every multi-run experiment is expressed as a flat list of sweep cells
(:mod:`repro.sweep.cells`) and submitted through a
:class:`~repro.sweep.runner.SweepRunner`: pass ``runner=`` to any of
them to execute the grid on a process pool (or resumably, or sharded);
the default is the runner-free in-process serial path, which executes
the identical cells in the identical order.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.jobs.job import JobSpec
from repro.jobs.resources import RESOURCE_ORDER, Resource
from repro.models.zoo import DEFAULT_MODELS, MODEL_ZOO, get_model, models_for_bottlenecks
from repro.schedulers.base import Scheduler
from repro.schedulers.registry import make_scheduler
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import ClusterSimulator
from repro.sweep.cells import (
    ablation_cells,
    group_size_cells,
    job_type_cells,
    noise_cells,
    simulation_cells,
)
from repro.sweep.execute import PrebuiltCell, execute_run
from repro.sweep.runner import SweepError, SweepRunner
from repro.sweep.spec import RunSpec
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs

__all__ = [
    "run_schedulers",
    "normalized_metrics",
    "table1_stage_percentages",
    "table2_interleaving_example",
    "compare_testbed",
    "simulation_comparison",
    "detailed_metrics",
    "ablation_comparison",
    "group_size_comparison",
    "job_type_sweep",
    "profiling_noise_sweep",
    "DEFAULT_NUM_JOBS",
    "DEFAULT_CLUSTER_SHAPE",
]

#: Bench-scale defaults: 400 jobs (the paper's testbed interval size)
#: on the paper's 8 x 8 = 64-GPU cluster.
DEFAULT_NUM_JOBS = 400
DEFAULT_CLUSTER_SHAPE = (8, 8)


def _cluster() -> Cluster:
    machines, gpus = DEFAULT_CLUSTER_SHAPE
    return Cluster(machines, gpus)


def _run_cells(
    cells: Sequence[RunSpec],
    runner: Optional[SweepRunner],
) -> Dict[str, Tuple[RunSpec, SimulationResult]]:
    """Execute declarative cells, serially in-process by default.

    With ``runner=None`` each cell runs via
    :func:`~repro.sweep.execute.execute_run` in submission order —
    the exact serial path.  With a runner, the cells go through its
    pool/store/retry machinery and the payloads are deserialized back.

    Raises:
        SweepError: When the runner failed a cell or did not return
            one (e.g. it was configured with a shard — experiment
            aggregation needs every cell).
    """
    if runner is None:
        return {
            cell.run_id: (cell, execute_run(cell)) for cell in cells
        }
    results = runner.run(cells)
    out: Dict[str, Tuple[RunSpec, SimulationResult]] = {}
    for cell in cells:
        run = results.get(cell.run_id)
        if run is None:
            raise SweepError(
                f"run {cell.run_id} ({cell.label}, trace {cell.trace_id}) "
                "was not executed — experiment aggregation needs every "
                "cell; drop the shard selector or merge shard stores first"
            )
        if not run.ok:
            raise SweepError(
                f"run {cell.run_id} ({cell.label}, trace {cell.trace_id}) "
                f"failed:\n{run.error}"
            )
        out[cell.run_id] = (cell, run.simulation_result())
    return out


def run_schedulers(
    specs: Sequence[JobSpec],
    schedulers: Mapping[str, Scheduler],
    trace_name: str = "workload",
    cluster_factory=None,
    runner: Optional[SweepRunner] = None,
    **sim_kwargs,
) -> Dict[str, SimulationResult]:
    """Run a workload under several schedulers, each on a fresh cluster.

    Args:
        specs: The workload.
        schedulers: ``{label: scheduler}`` to compare.
        trace_name: Label recorded in each result.
        cluster_factory: Zero-argument callable building a fresh
            cluster per run; defaults to the paper's 64-GPU shape.
        runner: Optional :class:`SweepRunner`; with more than one
            worker the per-scheduler runs execute concurrently as
            prebuilt cells (results are identical to the serial path).
        **sim_kwargs: Extra :class:`ClusterSimulator` arguments.

    Raises:
        SweepError: When a pooled run fails.
    """
    factory = cluster_factory or _cluster
    if runner is None or runner.max_workers <= 1:
        results: Dict[str, SimulationResult] = {}
        for label, scheduler in schedulers.items():
            simulator = ClusterSimulator(
                scheduler, cluster=factory(), **sim_kwargs
            )
            results[label] = simulator.run(specs, trace_name)
        return results
    cells = [
        PrebuiltCell(
            label=label,
            specs=tuple(specs),
            scheduler=scheduler,
            cluster=factory(),
            trace_name=trace_name,
            sim_options=dict(sim_kwargs),
        )
        for label, scheduler in schedulers.items()
    ]
    runs = runner.run_prebuilt(cells)
    out: Dict[str, SimulationResult] = {}
    for label in schedulers:
        run = runs[label]
        if not run.ok:
            raise SweepError(f"run {label!r} failed:\n{run.error}")
        out[label] = run.simulation_result()
    return out


def normalized_metrics(
    results: Mapping[str, SimulationResult],
    reference: str,
) -> Dict[str, Dict[str, float]]:
    """Tables 4/5 style rows: every scheduler normalized to a reference.

    A value of 2.12 in row "Normalized JCT", column "SRTF" means SRTF's
    average JCT is 2.12x the reference's (the reference column is 1).
    """
    ref = results[reference]
    rows: Dict[str, Dict[str, float]] = {
        "Normalized JCT": {},
        "Normalized Makespan": {},
        "Normalized 99th %-ile JCT": {},
    }
    for label, result in results.items():
        rows["Normalized JCT"][label] = result.avg_jct / ref.avg_jct
        rows["Normalized Makespan"][label] = result.makespan / ref.makespan
        rows["Normalized 99th %-ile JCT"][label] = (
            result.tail_jct(99.0) / ref.tail_jct(99.0)
        )
    return rows


# ---------------------------------------------------------------------------
# Table 1 / Table 2
# ---------------------------------------------------------------------------

def table1_stage_percentages() -> List[Tuple[str, float, float, float, float]]:
    """Table 1: per-stage duration percentage of each published model."""
    rows = []
    for name in ("ShuffleNet", "VGG19", "GPT-2", "A2C"):
        model = get_model(name)
        rows.append((name,) + tuple(model.stage_percentages))
    return rows


def table2_interleaving_example(
    num_gpus: int = 16,
) -> Dict[str, Dict[str, float]]:
    """Table 2: the four-model interleaving example.

    Returns per-model separate/shared throughput and normalized
    throughput, plus the group total, using the executor's contention
    model (the paper's measured total is 2.0x).
    """
    from repro.core.ordering import best_ordering
    from repro.sim.contention import DEFAULT_CONTENTION

    names = ("ShuffleNet", "A2C", "GPT-2", "VGG16")
    profiles = [get_model(name).stage_profile(num_gpus) for name in names]
    _offsets, period = best_ordering(profiles)
    period *= DEFAULT_CONTENTION.factor(len(names))

    table: Dict[str, Dict[str, float]] = {}
    total = 0.0
    for name, profile in zip(names, profiles):
        model = get_model(name)
        separate = model.batch_size * num_gpus / profile.iteration_time
        shared = model.batch_size * num_gpus / period
        normalized = profile.iteration_time / period
        total += normalized
        table[name] = {
            "bottleneck": float(profile.bottleneck.value),
            "separate_tput": separate,
            "sharing_tput": shared,
            "normalized_tput": normalized,
        }
    table["__total__"] = {"total_normalized_tput": total}
    return table


# ---------------------------------------------------------------------------
# Tables 4/5 and Figure 8 — the "testbed" experiment
# ---------------------------------------------------------------------------

def _testbed_specs(num_jobs: int, seed: int) -> Tuple[str, List[JobSpec]]:
    """The busiest-interval workload of the testbed experiments."""
    trace = generate_trace("2", num_jobs=max(num_jobs * 3, num_jobs), seed=seed)
    trace = trace.busiest_interval(num_jobs)
    return trace.name, build_jobs(trace, seed=seed)


def compare_testbed(
    duration_known: bool,
    num_jobs: int = DEFAULT_NUM_JOBS,
    seed: int = 0,
) -> Tuple[Dict[str, SimulationResult], Dict[str, Dict[str, float]]]:
    """Tables 4 and 5: scheduler comparison on the 400-job interval.

    Args:
        duration_known: True reproduces Table 4 (SRTF/SRSF vs Muri-S),
            False Table 5 (Tiresias/Themis vs Muri-L).

    Returns:
        ``(results, normalized_rows)`` where rows are normalized to the
        Muri variant (its column is 1.0).
    """
    trace_name, specs = _testbed_specs(num_jobs, seed)
    if duration_known:
        schedulers = {
            "SRTF": make_scheduler("srtf"),
            "SRSF": make_scheduler("srsf"),
            "Muri-S": make_scheduler("muri-s"),
        }
        reference = "Muri-S"
    else:
        schedulers = {
            "Tiresias": make_scheduler("tiresias"),
            "Themis": make_scheduler("themis"),
            "Muri-L": make_scheduler("muri-l"),
        }
        reference = "Muri-L"
    results = run_schedulers(specs, schedulers, trace_name)
    return results, normalized_metrics(results, reference)


def detailed_metrics(
    num_jobs: int = DEFAULT_NUM_JOBS,
    seed: int = 0,
    duration_known: bool = True,
) -> Dict[str, SimulationResult]:
    """Figure 8: full time series (queue length, blocking index,
    per-resource utilization) for each scheduler on the testbed trace."""
    trace_name, specs = _testbed_specs(num_jobs, seed)
    if duration_known:
        names = {"SRTF": "srtf", "SRSF": "srsf", "Muri-S": "muri-s"}
    else:
        names = {"Tiresias": "tiresias", "Themis": "themis", "Muri-L": "muri-l"}
    schedulers = {label: make_scheduler(key) for label, key in names.items()}
    return run_schedulers(specs, schedulers, trace_name)


# ---------------------------------------------------------------------------
# Figures 9/10 — trace-driven simulation
# ---------------------------------------------------------------------------

def simulation_comparison(
    duration_known: bool,
    trace_ids: Sequence[str] = ("1", "2", "3", "4", "1'", "2'", "3'", "4'"),
    num_jobs: Optional[int] = DEFAULT_NUM_JOBS,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Figures 9 and 10: per-trace speedups of Muri over each baseline.

    Args:
        runner: Optional :class:`SweepRunner` to execute the
            (trace x scheduler) grid concurrently and/or resumably.

    Returns:
        ``{trace_id: {baseline: {metric: speedup}}}`` where speedup > 1
        means Muri wins (the paper's normalized bars).
    """
    if duration_known:
        baseline_labels = ("SRTF", "SRSF")
        muri_label = "Muri-S"
    else:
        baseline_labels = ("Tiresias", "AntMan", "Themis")
        muri_label = "Muri-L"

    cells = simulation_cells(
        duration_known, trace_ids=trace_ids, num_jobs=num_jobs, seed=seed
    )
    by_trace: Dict[str, Dict[str, SimulationResult]] = {}
    for cell, result in _run_cells(cells, runner).values():
        by_trace.setdefault(cell.trace_id, {})[cell.label] = result

    sweep: Dict[str, Dict[str, Dict[str, float]]] = {}
    for trace_id in trace_ids:
        results = by_trace[trace_id]
        muri = results[muri_label]
        sweep[trace_id] = {
            label: muri.speedup_over(results[label])
            for label in baseline_labels
        }
    return sweep


# ---------------------------------------------------------------------------
# Figure 11 — scheduling-algorithm ablation
# ---------------------------------------------------------------------------

def ablation_comparison(
    trace_ids: Sequence[str] = ("1", "2", "3", "4"),
    num_jobs: Optional[int] = DEFAULT_NUM_JOBS,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Figure 11: Muri-L vs worst-ordering and no-Blossom variants.

    Args:
        runner: Optional :class:`SweepRunner` for the cell grid.

    Returns:
        ``{trace_id: {variant: {metric: value normalized to Muri-L}}}``
        — values above 1 mean the variant is worse.
    """
    cells = ablation_cells(trace_ids=trace_ids, num_jobs=num_jobs, seed=seed)
    by_trace: Dict[str, Dict[str, SimulationResult]] = {}
    for cell, result in _run_cells(cells, runner).values():
        by_trace.setdefault(cell.trace_id, {})[cell.label] = result

    sweep: Dict[str, Dict[str, Dict[str, float]]] = {}
    for trace_id in trace_ids:
        results = by_trace[trace_id]
        reference = results["Muri-L"]
        sweep[trace_id] = {
            label: {
                "avg_jct": result.avg_jct / reference.avg_jct,
                "makespan": result.makespan / reference.makespan,
            }
            for label, result in results.items()
        }
    return sweep


# ---------------------------------------------------------------------------
# Figure 12 — group-size sweep
# ---------------------------------------------------------------------------

def group_size_comparison(
    trace_ids: Sequence[str] = ("1", "2", "3", "4"),
    num_jobs: Optional[int] = DEFAULT_NUM_JOBS,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Figure 12: Muri-L with 2/3/4-job groups vs AntMan, all at t=0.

    Args:
        runner: Optional :class:`SweepRunner` for the cell grid.

    Returns:
        ``{trace_id: {scheduler: {metric: value normalized to AntMan}}}``
        — values below 1 beat AntMan.
    """
    cells = group_size_cells(
        trace_ids=trace_ids, num_jobs=num_jobs, seed=seed
    )
    by_trace: Dict[str, Dict[str, SimulationResult]] = {}
    for cell, result in _run_cells(cells, runner).values():
        by_trace.setdefault(cell.trace_id, {})[cell.label] = result

    sweep: Dict[str, Dict[str, Dict[str, float]]] = {}
    for trace_id in trace_ids:
        results = by_trace[trace_id]
        reference = results["AntMan"]
        sweep[trace_id] = {
            label: {
                "avg_jct": result.avg_jct / reference.avg_jct,
                "makespan": result.makespan / reference.makespan,
            }
            for label, result in results.items()
        }
    return sweep


# ---------------------------------------------------------------------------
# Figure 13 — workload-distribution sweep
# ---------------------------------------------------------------------------

def job_type_sweep(
    num_types_values: Sequence[int] = (1, 2, 3, 4),
    num_jobs: Optional[int] = DEFAULT_NUM_JOBS,
    seed: int = 0,
    trace_id: str = "1",
    runner: Optional[SweepRunner] = None,
) -> Dict[int, Dict[str, float]]:
    """Figure 13: speedup vs the number of distinct bottleneck types.

    Returns:
        ``{num_types: {"Muri-S/SRTF": x, "Muri-L/Tiresias": y}}``.
    """
    cells = job_type_cells(
        num_types_values=num_types_values, num_jobs=num_jobs,
        seed=seed, trace_id=trace_id,
    )
    # Cells of one num_types share a model pool; key on the label
    # suffix ("Muri-S@3") since they all use the same trace id.
    by_types: Dict[int, Dict[str, SimulationResult]] = {}
    for cell, result in _run_cells(cells, runner).values():
        label, num_types = cell.label.rsplit("@", 1)
        by_types.setdefault(int(num_types), {})[label] = result

    sweep: Dict[int, Dict[str, float]] = {}
    for num_types in num_types_values:
        results = by_types[num_types]
        sweep[num_types] = {
            "Muri-S/SRTF": results["Muri-S"].speedup_over(results["SRTF"])["avg_jct"],
            "Muri-L/Tiresias": results["Muri-L"].speedup_over(
                results["Tiresias"]
            )["avg_jct"],
        }
    return sweep


# ---------------------------------------------------------------------------
# Figure 14 — profiling-noise sweep
# ---------------------------------------------------------------------------

def profiling_noise_sweep(
    noise_levels: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    num_jobs: Optional[int] = DEFAULT_NUM_JOBS,
    seed: int = 0,
    trace_id: str = "1",
    runner: Optional[SweepRunner] = None,
) -> Dict[float, Dict[str, float]]:
    """Figure 14: Muri-L under profiling noise n_p in [0, 1].

    The profiler hands Muri stage durations multiplied by a uniform
    factor in ``[1 - n_p, 1 + n_p]``; grouping and ordering decisions
    degrade while execution uses the truth.

    Substitution note: the paper runs this on its lightly loaded trace
    3, where our capacity-aware Muri never groups at all (noise would
    be a no-op by construction), so the default here is the congested
    trace 1 where grouping decisions are actually exercised.

    Returns:
        ``{noise: {"avg_jct": normalized, "makespan": normalized}}``
        normalized to the noise-free run.
    """
    cells = noise_cells(
        noise_levels=noise_levels, num_jobs=num_jobs,
        seed=seed, trace_id=trace_id,
    )
    runs: Dict[float, SimulationResult] = {}
    for cell, result in _run_cells(cells, runner).values():
        runs[cell.noise_level] = result

    reference_level = min(noise_levels)
    reference = runs[reference_level]
    return {
        level: {
            "avg_jct": result.avg_jct / reference.avg_jct,
            "makespan": result.makespan / reference.makespan,
        }
        for level, result in runs.items()
    }
