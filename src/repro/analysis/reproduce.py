"""One-shot reproduction: regenerate every paper artifact as a report.

``reproduce_all`` runs each table/figure experiment at a configurable
scale and assembles a single markdown report — the programmatic
equivalent of running the whole benchmark suite, for use from the CLI
(``repro reproduce``) or a notebook.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.experiments import (
    ablation_comparison,
    compare_testbed,
    group_size_comparison,
    job_type_sweep,
    profiling_noise_sweep,
    simulation_comparison,
    table1_stage_percentages,
    table2_interleaving_example,
)
from repro.analysis.report import format_series, format_speedup_table, format_table

__all__ = ["reproduce_all", "ARTIFACTS"]


def _render_table1(num_jobs: int, seed: int) -> str:
    rows = table1_stage_percentages()
    return format_table(
        ["Model", "Load Data %", "Preprocess %", "Propagate %", "Synchronize %"],
        rows,
    )


def _render_table2(num_jobs: int, seed: int) -> str:
    table = table2_interleaving_example()
    rows = [
        (name, row["separate_tput"], row["sharing_tput"], row["normalized_tput"])
        for name, row in table.items() if name != "__total__"
    ]
    rows.append(("TOTAL", 0.0, 0.0, table["__total__"]["total_normalized_tput"]))
    return format_table(["Model", "Separate", "Sharing", "Norm. tput"], rows)


def _render_testbed(duration_known: bool) -> Callable[[int, int], str]:
    def render(num_jobs: int, seed: int) -> str:
        _results, rows = compare_testbed(
            duration_known, num_jobs=num_jobs, seed=seed
        )
        return format_speedup_table(rows, list(rows["Normalized JCT"]))

    return render


def _render_simulation(duration_known: bool) -> Callable[[int, int], str]:
    def render(num_jobs: int, seed: int) -> str:
        sweep = simulation_comparison(
            duration_known, num_jobs=num_jobs, seed=seed
        )
        rows = [
            (trace_id, baseline, s["avg_jct"], s["makespan"], s["p99_jct"])
            for trace_id, per_baseline in sweep.items()
            for baseline, s in per_baseline.items()
        ]
        return format_table(
            ["Trace", "Baseline", "JCT x", "Makespan x", "p99 x"], rows
        )

    return render


def _render_fig11(num_jobs: int, seed: int) -> str:
    sweep = ablation_comparison(num_jobs=num_jobs, seed=seed)
    rows = [
        (trace_id, variant, m["avg_jct"], m["makespan"])
        for trace_id, variants in sweep.items()
        for variant, m in variants.items()
    ]
    return format_table(["Trace", "Variant", "Norm. JCT", "Norm. makespan"], rows)


def _render_fig12(num_jobs: int, seed: int) -> str:
    sweep = group_size_comparison(num_jobs=num_jobs, seed=seed)
    rows = [
        (trace_id, label, m["avg_jct"], m["makespan"])
        for trace_id, row in sweep.items()
        for label, m in row.items()
    ]
    return format_table(["Trace", "Scheduler", "Norm. JCT", "Norm. makespan"], rows)


def _render_fig13(num_jobs: int, seed: int) -> str:
    sweep = job_type_sweep(num_jobs=num_jobs, seed=seed)
    return format_series(
        "# types", list(sweep),
        {
            "Muri-S/SRTF": [v["Muri-S/SRTF"] for v in sweep.values()],
            "Muri-L/Tiresias": [v["Muri-L/Tiresias"] for v in sweep.values()],
        },
    )


def _render_fig14(num_jobs: int, seed: int) -> str:
    sweep = profiling_noise_sweep(num_jobs=num_jobs, seed=seed)
    return format_series(
        "noise", list(sweep),
        {
            "Norm. JCT": [v["avg_jct"] for v in sweep.values()],
            "Norm. makespan": [v["makespan"] for v in sweep.values()],
        },
    )


#: (artifact id, heading, renderer) in paper order.
ARTIFACTS: List[Tuple[str, str, Callable[[int, int], str]]] = [
    ("table1", "Table 1 — stage-duration percentages", _render_table1),
    ("table2", "Table 2 — four-model interleaving example", _render_table2),
    ("table4", "Table 4 — testbed, durations known", _render_testbed(True)),
    ("table5", "Table 5 — testbed, durations unknown", _render_testbed(False)),
    ("fig9", "Figure 9 — simulations, durations known", _render_simulation(True)),
    ("fig10", "Figure 10 — simulations, durations unknown", _render_simulation(False)),
    ("fig11", "Figure 11 — algorithm ablation", _render_fig11),
    ("fig12", "Figure 12 — group-size sweep (t=0)", _render_fig12),
    ("fig13", "Figure 13 — bottleneck-diversity sweep", _render_fig13),
    ("fig14", "Figure 14 — profiling-noise sweep", _render_fig14),
]


def reproduce_all(
    num_jobs: int = 400,
    seed: int = 0,
    artifacts: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> str:
    """Regenerate the selected paper artifacts as one markdown report.

    Args:
        num_jobs: Trace size per experiment (400 = bench scale).
        seed: Base seed.
        artifacts: Artifact ids to include (default: all, paper order).
        progress: Optional callback invoked with each artifact id as it
            starts (for CLI progress lines).

    Returns:
        The report as a markdown string.

    Raises:
        KeyError: For an unknown artifact id.
    """
    wanted = list(artifacts) if artifacts is not None else [
        artifact_id for artifact_id, _h, _r in ARTIFACTS
    ]
    known = {artifact_id for artifact_id, _h, _r in ARTIFACTS}
    for artifact_id in wanted:
        if artifact_id not in known:
            raise KeyError(
                f"unknown artifact {artifact_id!r}; known: {sorted(known)}"
            )

    sections = [
        "# Muri reproduction report",
        "",
        f"Configuration: num_jobs={num_jobs}, seed={seed}, "
        "cluster=8x8 GPUs, interval=360 s.",
        "",
    ]
    for artifact_id, heading, renderer in ARTIFACTS:
        if artifact_id not in wanted:
            continue
        if progress is not None:
            progress(artifact_id)
        started = time.perf_counter()
        body = renderer(num_jobs, seed)
        elapsed = time.perf_counter() - started
        sections.append(f"## {heading}")
        sections.append("")
        sections.append("```")
        sections.append(body)
        sections.append("```")
        sections.append(f"*generated in {elapsed:.1f}s*")
        sections.append("")
    return "\n".join(sections)
