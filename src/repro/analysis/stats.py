"""Statistical support for scheduler comparisons.

Single-seed speedups can flatter or understate a scheduler; this
module provides seeded bootstrap confidence intervals for means and
for ratio-of-means speedups, plus a multi-seed experiment helper, so
claims like "Muri-L beats Tiresias" carry uncertainty estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "ConfidenceInterval",
    "bootstrap_mean_ci",
    "bootstrap_speedup_ci",
    "multi_seed_speedups",
    "summarize_speedups",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a two-sided confidence interval.

    Attributes:
        estimate: The point estimate.
        low: Lower CI bound.
        high: Upper CI bound.
        confidence: Interval mass (e.g. 0.95).
    """

    estimate: float
    low: float
    high: float
    confidence: float

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise ValueError("low must not exceed high")

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low

    def excludes(self, value: float) -> bool:
        """True when the interval lies strictly on one side of value."""
        return value < self.low or value > self.high


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for the mean of ``values``.

    Raises:
        ValueError: On an empty sample or an invalid confidence.
    """
    if len(values) == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    data = np.asarray(values, dtype=float)
    rng = np.random.default_rng(seed)
    means = rng.choice(data, size=(resamples, data.size), replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        estimate=float(data.mean()),
        low=float(low),
        high=float(high),
        confidence=confidence,
    )


def bootstrap_speedup_ci(
    baseline_values: Sequence[float],
    treatment_values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap CI for ``mean(baseline) / mean(treatment)``.

    This is the paper's speedup notion applied to per-job JCTs: a value
    above one means the treatment (e.g. Muri) is faster on average.
    """
    if len(baseline_values) == 0 or len(treatment_values) == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    baseline = np.asarray(baseline_values, dtype=float)
    treatment = np.asarray(treatment_values, dtype=float)
    rng = np.random.default_rng(seed)
    base_means = rng.choice(
        baseline, size=(resamples, baseline.size), replace=True
    ).mean(axis=1)
    treat_means = rng.choice(
        treatment, size=(resamples, treatment.size), replace=True
    ).mean(axis=1)
    ratios = base_means / np.maximum(treat_means, 1e-12)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(ratios, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        estimate=float(baseline.mean() / treatment.mean()),
        low=float(low),
        high=float(high),
        confidence=confidence,
    )


def multi_seed_speedups(
    run_experiment: Callable[[int], Tuple[float, float]],
    seeds: Sequence[int],
) -> List[float]:
    """Run an experiment per seed; collect baseline/treatment ratios.

    Args:
        run_experiment: Callable mapping a seed to
            ``(baseline_metric, treatment_metric)``.
        seeds: Seeds to evaluate.

    Returns:
        One speedup (baseline / treatment) per seed.
    """
    speedups = []
    for seed in seeds:
        baseline, treatment = run_experiment(seed)
        if treatment <= 0:
            raise ValueError(f"non-positive treatment metric for seed {seed}")
        speedups.append(baseline / treatment)
    return speedups


def summarize_speedups(
    speedups: Sequence[float],
    confidence: float = 0.95,
    seed: int = 0,
) -> Dict[str, float]:
    """Summary statistics of a speedup sample."""
    interval = bootstrap_mean_ci(speedups, confidence=confidence, seed=seed)
    data = np.asarray(speedups, dtype=float)
    return {
        "mean": interval.estimate,
        "ci_low": interval.low,
        "ci_high": interval.high,
        "min": float(data.min()),
        "max": float(data.max()),
        "n": float(data.size),
    }
