"""Text-mode visualization of interleaving schedules.

Renders a :class:`~repro.core.group.JobGroup`'s slot schedule as ASCII
art — the same picture as the paper's Figs. 1, 4, and 6 — and small
utilization sparklines for time series.  Used by the examples and
handy in a REPL when debugging grouping decisions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.group import JobGroup
from repro.core.ordering import slot_durations
from repro.jobs.resources import RESOURCE_ORDER, Resource

__all__ = ["render_group_schedule", "render_sparkline"]

#: Single-character labels for the four resources.
_RESOURCE_CHARS = {
    Resource.STORAGE: "S",
    Resource.CPU: "C",
    Resource.GPU: "G",
    Resource.NETWORK: "N",
}


def render_group_schedule(
    group: JobGroup,
    width: int = 60,
    use_believed: bool = True,
) -> str:
    """Render one interleaved iteration of a group as ASCII art.

    Each row is a job; time flows left to right across one period.
    A letter marks which resource the job's stage in that slot uses
    (S/C/G/N), dots mark the job idling while a slower stage in the
    same slot finishes (the barrier wait).

    Args:
        group: The group to render.
        width: Total characters for one period.
        use_believed: Render from the scheduler's believed profiles
            (default) or the members' true profiles.
    """
    profiles = (
        group.believed_profiles
        if use_believed
        else tuple(job.profile for job in group.jobs)
    )
    k = group.num_resources
    slots = slot_durations(profiles, group.offsets, k)
    period = sum(slots)
    if period <= 0:
        raise ValueError("cannot render a zero-length period")

    # Column budget per slot, at least 1 for non-empty slots.
    columns: List[int] = []
    for duration in slots:
        columns.append(max(1, round(width * duration / period)) if duration > 0 else 0)

    lines = []
    name_width = max(len(job.name) for job in group.jobs)
    for job, profile, offset in zip(group.jobs, profiles, group.offsets):
        cells: List[str] = []
        for slot_index, slot_width in enumerate(columns):
            if slot_width == 0:
                continue
            resource = Resource((offset + slot_index) % k)
            stage = profile.durations[resource]
            slot_len = slots[slot_index]
            busy_cols = (
                0 if slot_len <= 0
                else max(1 if stage > 0 else 0,
                         round(slot_width * stage / slot_len))
            )
            busy_cols = min(busy_cols, slot_width)
            cells.append(
                _RESOURCE_CHARS[resource] * busy_cols
                + "." * (slot_width - busy_cols)
            )
        lines.append(f"{job.name.ljust(name_width)} |{'|'.join(cells)}|")

    legend = "  ".join(
        f"{_RESOURCE_CHARS[r]}={r.stage_name}" for r in RESOURCE_ORDER
    )
    header = (
        f"period T = {period:.3f}s, efficiency gamma = "
        f"{group.believed_efficiency:.2f}"
    )
    return "\n".join([header] + lines + [legend])


_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def render_sparkline(
    values: Sequence[float],
    maximum: Optional[float] = None,
    width: Optional[int] = None,
) -> str:
    """Render a sequence of values as a unicode sparkline.

    Args:
        values: Non-negative samples.
        maximum: Scale ceiling; defaults to ``max(values)``.
        width: Optional downsampling width (mean-pooled buckets).
    """
    if not values:
        return ""
    samples = list(values)
    if width is not None and width > 0 and len(samples) > width:
        pooled = []
        step = len(samples) / width
        for index in range(width):
            lo = int(index * step)
            hi = max(lo + 1, int((index + 1) * step))
            chunk = samples[lo:hi]
            pooled.append(sum(chunk) / len(chunk))
        samples = pooled
    ceiling = maximum if maximum is not None else max(samples)
    if ceiling <= 0:
        return _SPARK_LEVELS[0] * len(samples)
    chars = []
    for value in samples:
        level = min(1.0, max(0.0, value / ceiling))
        chars.append(_SPARK_LEVELS[round(level * (len(_SPARK_LEVELS) - 1))])
    return "".join(chars)
