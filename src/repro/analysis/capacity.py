"""Capacity planning: what is multi-resource interleaving worth in GPUs?

Muri's pitch to an operator is ultimately "serve the same workload with
fewer GPUs (or more workload with the same GPUs)".  This module makes
that quantitative:

* :func:`capacity_sweep` runs a workload across cluster sizes for a set
  of schedulers;
* :func:`equivalent_capacity` finds the smallest cluster on which a
  scheduler matches a reference metric value (e.g. the average JCT the
  baseline achieves on the full cluster), so the GPU savings of
  switching schedulers can be stated directly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.jobs.job import JobSpec
from repro.schedulers.base import Scheduler
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import ClusterSimulator

__all__ = ["capacity_sweep", "equivalent_capacity"]

MetricFn = Callable[[SimulationResult], float]


def _avg_jct(result: SimulationResult) -> float:
    return result.avg_jct


def capacity_sweep(
    specs: Sequence[JobSpec],
    scheduler_factories: Mapping[str, Callable[[], Scheduler]],
    machine_counts: Sequence[int],
    gpus_per_machine: int = 8,
    trace_name: str = "capacity-sweep",
    **sim_kwargs,
) -> Dict[int, Dict[str, SimulationResult]]:
    """Run a workload across cluster sizes for several schedulers.

    Args:
        specs: The workload; jobs larger than the smallest cluster are
            dropped uniformly so every size sees the same jobs.
        scheduler_factories: ``{label: factory}`` building a fresh
            scheduler per run (schedulers may carry state).
        machine_counts: Machine counts to sweep.
        gpus_per_machine: GPUs per machine.
        trace_name: Label recorded in the results.
        **sim_kwargs: Extra :class:`ClusterSimulator` arguments.

    Returns:
        ``{machines: {label: result}}``.

    Raises:
        ValueError: If no job fits the smallest cluster.
    """
    if not machine_counts:
        raise ValueError("machine_counts must not be empty")
    smallest = min(machine_counts) * gpus_per_machine
    fitting = [spec for spec in specs if spec.num_gpus <= smallest]
    if not fitting:
        raise ValueError("no job fits the smallest swept cluster")

    sweep: Dict[int, Dict[str, SimulationResult]] = {}
    for machines in machine_counts:
        sweep[machines] = {}
        for label, factory in scheduler_factories.items():
            simulator = ClusterSimulator(
                factory(),
                cluster=Cluster(machines, gpus_per_machine),
                **sim_kwargs,
            )
            sweep[machines][label] = simulator.run(fitting, trace_name)
    return sweep


def equivalent_capacity(
    specs: Sequence[JobSpec],
    scheduler_factory: Callable[[], Scheduler],
    target_value: float,
    machine_range: Tuple[int, int],
    gpus_per_machine: int = 8,
    metric: Optional[MetricFn] = None,
    trace_name: str = "equivalent-capacity",
    **sim_kwargs,
) -> Optional[int]:
    """Smallest machine count where the scheduler meets a target.

    The metric is assumed monotone non-increasing in capacity (more
    GPUs never hurt JCT/makespan), so a binary search applies.

    Args:
        specs: The workload.
        scheduler_factory: Builds a fresh scheduler per probe.
        target_value: Metric value to reach (meet or beat, i.e. <=).
        machine_range: Inclusive ``(low, high)`` machine counts.
        gpus_per_machine: GPUs per machine.
        metric: Result metric; defaults to average JCT.
        trace_name: Label recorded in the results.
        **sim_kwargs: Extra simulator arguments.

    Returns:
        The smallest machine count meeting the target, or None if even
        the largest swept cluster misses it.
    """
    low, high = machine_range
    if low < 1 or high < low:
        raise ValueError("machine_range must satisfy 1 <= low <= high")
    measure = metric or _avg_jct

    def value_at(machines: int) -> float:
        capacity = machines * gpus_per_machine
        fitting = [s for s in specs if s.num_gpus <= capacity]
        if not fitting:
            return float("inf")
        simulator = ClusterSimulator(
            scheduler_factory(),
            cluster=Cluster(machines, gpus_per_machine),
            **sim_kwargs,
        )
        return measure(simulator.run(fitting, trace_name))

    if value_at(high) > target_value:
        return None
    best = high
    lo, hi = low, high
    while lo <= hi:
        mid = (lo + hi) // 2
        if value_at(mid) <= target_value:
            best = mid
            hi = mid - 1
        else:
            lo = mid + 1
    return best
