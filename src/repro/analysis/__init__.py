"""Experiment runners and report formatting."""

from repro.analysis.experiments import (
    DEFAULT_CLUSTER_SHAPE,
    DEFAULT_NUM_JOBS,
    ablation_comparison,
    detailed_metrics,
    group_size_comparison,
    job_type_sweep,
    normalized_metrics,
    profiling_noise_sweep,
    run_schedulers,
    simulation_comparison,
    table1_stage_percentages,
    table2_interleaving_example,
    compare_testbed,
)
from repro.analysis.capacity import capacity_sweep, equivalent_capacity
from repro.analysis.report import format_series, format_speedup_table, format_table
from repro.analysis.stats import (
    ConfidenceInterval,
    bootstrap_mean_ci,
    bootstrap_speedup_ci,
    multi_seed_speedups,
    summarize_speedups,
)
from repro.analysis.viz import render_group_schedule, render_sparkline

__all__ = [
    "run_schedulers",
    "normalized_metrics",
    "table1_stage_percentages",
    "table2_interleaving_example",
    "compare_testbed",
    "simulation_comparison",
    "detailed_metrics",
    "ablation_comparison",
    "group_size_comparison",
    "job_type_sweep",
    "profiling_noise_sweep",
    "format_table",
    "render_group_schedule",
    "render_sparkline",
    "capacity_sweep",
    "equivalent_capacity",
    "ConfidenceInterval",
    "bootstrap_mean_ci",
    "bootstrap_speedup_ci",
    "multi_seed_speedups",
    "summarize_speedups",
    "format_speedup_table",
    "format_series",
    "DEFAULT_NUM_JOBS",
    "DEFAULT_CLUSTER_SHAPE",
]
