"""Profiling noise models (Fig. 14).

The paper evaluates robustness to inaccurate profiling by multiplying
each true stage duration with a random factor drawn uniformly from
``[1 - n_p, 1 + n_p]`` for a noise level ``n_p`` in [0, 1].  That exact
model is :class:`UniformNoise`; a Gaussian variant is provided for
sensitivity studies beyond the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.jobs.stage import StageProfile

__all__ = ["NoiseModel", "UniformNoise", "GaussianNoise", "NoNoise"]


class NoiseModel:
    """Base class: perturb a true stage profile into a measured one."""

    def perturb(self, profile: StageProfile, rng: random.Random) -> StageProfile:
        raise NotImplementedError


@dataclass(frozen=True)
class NoNoise(NoiseModel):
    """The identity noise model: measurements equal the truth."""

    def perturb(self, profile: StageProfile, rng: random.Random) -> StageProfile:
        return profile


@dataclass(frozen=True)
class UniformNoise(NoiseModel):
    """The paper's noise model: factor uniform in [1-level, 1+level].

    Attributes:
        level: The paper's ``n_p`` in [0, 1].  Level 1 means a stage
            can be measured anywhere from zero to double its truth.
    """

    level: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.level <= 1.0:
            raise ValueError(f"noise level must be in [0, 1], got {self.level}")

    def perturb(self, profile: StageProfile, rng: random.Random) -> StageProfile:
        if self.level == 0.0:
            return profile
        noisy = tuple(
            d * rng.uniform(1.0 - self.level, 1.0 + self.level)
            for d in profile.durations
        )
        # Never let the whole profile collapse to zero.
        if all(d == 0 for d in noisy):
            return profile
        return StageProfile(noisy)


@dataclass(frozen=True)
class GaussianNoise(NoiseModel):
    """Multiplicative Gaussian noise, truncated to stay positive.

    Attributes:
        sigma: Standard deviation of the multiplicative factor.
    """

    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")

    def perturb(self, profile: StageProfile, rng: random.Random) -> StageProfile:
        if self.sigma == 0.0:
            return profile
        noisy = tuple(
            d * max(0.05, rng.gauss(1.0, self.sigma)) for d in profile.durations
        )
        return StageProfile(noisy)
