"""Resource profiler: dry runs, caching, noise, timeline reduction."""

from repro.profiler.noise import GaussianNoise, NoNoise, NoiseModel, UniformNoise
from repro.profiler.profiler import ProfilerStats, ResourceProfiler
from repro.profiler.timeline import UsageTimeline, synthesize_timeline

__all__ = [
    "ResourceProfiler",
    "ProfilerStats",
    "NoiseModel",
    "NoNoise",
    "UniformNoise",
    "GaussianNoise",
    "UsageTimeline",
    "synthesize_timeline",
]
