"""Converting raw resource-usage timelines into stage profiles.

Section 4.2 ("Handling multi-resource usage in practice"): real jobs
use several resources at once with varying utilization.  Muri's
profiler normalizes each resource's usage to its own peak, assigns
each sample point to the resource with the highest normalized usage,
zeroes usage below a threshold, and sums sample spans into per-stage
durations.

:class:`UsageTimeline` implements that reduction, and
:func:`synthesize_timeline` produces realistic raw timelines from a
known profile so the reduction is testable end to end (it also powers
the profiler demo example).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.jobs.resources import NUM_RESOURCES
from repro.jobs.stage import StageProfile

__all__ = ["UsageTimeline", "synthesize_timeline"]


@dataclass(frozen=True)
class UsageTimeline:
    """Sampled multi-resource utilization over one iteration.

    Attributes:
        sample_interval: Seconds between consecutive samples.
        samples: ``samples[i][j]`` is the raw utilization of resource
            ``j`` at sample ``i`` (arbitrary units; each resource is
            normalized to its own peak before comparison).
    """

    sample_interval: float
    samples: tuple

    def __post_init__(self) -> None:
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be > 0")
        if not self.samples:
            raise ValueError("a timeline needs at least one sample")
        width = len(self.samples[0])
        for row in self.samples:
            if len(row) != width:
                raise ValueError("all samples must have the same width")

    @property
    def num_resources(self) -> int:
        return len(self.samples[0])

    @property
    def duration(self) -> float:
        return len(self.samples) * self.sample_interval

    def to_stage_profile(self, threshold: float = 0.1) -> StageProfile:
        """Reduce the timeline to per-stage durations (section 4.2).

        Following the paper: usage below ``threshold`` is filtered to
        zero (idle noise), each resource is normalized to its own peak,
        and every time point is attributed to the resource with the
        highest normalized usage (ties broken by absolute usage).
        All-idle samples contribute to no stage.

        Args:
            threshold: Absolute-utilization floor applied before
                normalization.
        """
        if not 0 <= threshold < 1:
            raise ValueError("threshold must be in [0, 1)")
        filtered = [
            tuple(value if value >= threshold else 0.0 for value in row)
            for row in self.samples
        ]
        peaks = [
            max(row[j] for row in filtered) or 1.0
            for j in range(self.num_resources)
        ]
        durations = [0.0] * self.num_resources
        for row in filtered:
            if all(value == 0.0 for value in row):
                continue
            strongest = max(
                range(self.num_resources),
                key=lambda j: (row[j] / peaks[j], row[j]),
            )
            durations[strongest] += self.sample_interval
        return StageProfile(tuple(durations))


def synthesize_timeline(
    profile: StageProfile,
    sample_interval: float = 0.005,
    background_level: float = 0.08,
    jitter: float = 0.05,
    seed: int = 0,
) -> UsageTimeline:
    """Generate a raw usage timeline matching a known stage profile.

    The active resource of each stage runs near full utilization with
    small jitter while other resources hum at a low background level —
    the pattern the paper describes (e.g. CPUs busy throughout with a
    preprocessing peak).

    Args:
        profile: Ground-truth stage durations.
        sample_interval: Sampling period in seconds.
        background_level: Mean utilization of inactive resources.
        jitter: Uniform utilization jitter amplitude.
        seed: RNG seed.
    """
    rng = random.Random(seed)
    k = profile.num_resources
    samples: List[List[float]] = []
    for resource in range(k):
        span = profile.durations[resource]
        steps = round(span / sample_interval)
        for _ in range(steps):
            row = []
            for j in range(k):
                if j == resource:
                    level = 0.95 + rng.uniform(-jitter, jitter)
                else:
                    level = background_level * rng.uniform(0.0, 2.0)
                row.append(max(0.0, min(1.0, level)))
            samples.append(row)
    if not samples:
        samples.append([1.0 if profile.durations[j] > 0 else 0.0 for j in range(k)])
    return UsageTimeline(sample_interval=sample_interval, samples=tuple(samples))
