"""The resource profiler (Fig. 3's "resource profiler" component).

When a job is first submitted the profiler performs a few dry runs to
measure each stage's duration; jobs training a model seen before reuse
the cached profile without new dry runs (section 3).  In this
reproduction a dry run samples the job's true profile through a noise
model — the Fig. 14 knob — and averages the samples.

The profiler also answers the scheduler's "how well would these jobs
interleave?" queries by delegating to the efficiency model with its
*measured* profiles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.efficiency import interleaving_efficiency
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.profiler.noise import NoNoise, NoiseModel

__all__ = ["ResourceProfiler", "ProfilerStats"]


@dataclass
class ProfilerStats:
    """Bookkeeping for profiler activity.

    Attributes:
        dry_runs: Total dry-run iterations executed.
        cache_hits: Profile requests served from the model cache.
        cache_misses: Requests that required fresh dry runs.
    """

    dry_runs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


class ResourceProfiler:
    """Measures per-stage durations of jobs, with caching and noise.

    Args:
        noise: Noise model applied to each dry-run sample (defaults to
            exact measurements).
        num_dry_runs: Iterations sampled per fresh profile ("tens of
            iterations" in the paper; a handful suffices here).
        seed: RNG seed for noise realizations.
        cache_by_model: Reuse profiles across jobs training the same
            model, as the paper's profiler does.  Disable to force
            per-job dry runs.
    """

    def __init__(
        self,
        noise: Optional[NoiseModel] = None,
        num_dry_runs: int = 5,
        seed: int = 0,
        cache_by_model: bool = True,
    ) -> None:
        if num_dry_runs < 1:
            raise ValueError("num_dry_runs must be >= 1")
        self.noise = noise if noise is not None else NoNoise()
        self.num_dry_runs = num_dry_runs
        self.cache_by_model = cache_by_model
        self._rng = random.Random(seed)
        self._cache: Dict[str, StageProfile] = {}
        self.stats = ProfilerStats()

    # -- profiling -----------------------------------------------------------

    def profile(self, spec: JobSpec) -> StageProfile:
        """Measured stage profile for a job.

        Cache key is ``model @ num_gpus`` because the synchronization
        stage differs between single- and multi-GPU jobs.
        """
        key = f"{spec.model}@{spec.num_gpus}"
        if self.cache_by_model and key in self._cache:
            self.stats.cache_hits += 1
            return self._cache[key]

        self.stats.cache_misses += 1
        measured = self._dry_run(spec.profile)
        if self.cache_by_model:
            self._cache[key] = measured
        return measured

    def profile_all(self, specs: Sequence[JobSpec]) -> Dict[int, StageProfile]:
        """Measured profiles for a batch, keyed by job id."""
        return {spec.job_id: self.profile(spec) for spec in specs}

    def _dry_run(self, truth: StageProfile) -> StageProfile:
        samples = [
            self.noise.perturb(truth, self._rng)
            for _ in range(self.num_dry_runs)
        ]
        self.stats.dry_runs += self.num_dry_runs
        averaged = tuple(
            sum(sample.durations[i] for sample in samples) / len(samples)
            for i in range(truth.num_resources)
        )
        return StageProfile(averaged)

    # -- group estimation -------------------------------------------------------

    def estimate_group_efficiency(
        self,
        specs: Sequence[JobSpec],
        ordering: str = "best",
    ) -> float:
        """Interleaving efficiency of a candidate group, as measured.

        This is the quantity the scheduler uses as matching edge
        weights: it is computed from *measured* (possibly noisy)
        profiles, not ground truth.
        """
        profiles = [self.profile(spec) for spec in specs]
        return interleaving_efficiency(profiles, ordering=ordering)

    def invalidate(self, model: Optional[str] = None) -> None:
        """Drop cached profiles (all of them, or one model's)."""
        if model is None:
            self._cache.clear()
            return
        for key in [k for k in self._cache if k.split("@")[0] == model]:
            del self._cache[key]
