"""Differential oracles for the elastic scheduling arm.

Two guarantees back ``repro.elastic`` (see ``docs/elastic.md``):

* **Degeneracy** — :func:`compare_flat_identity`: on a workload with
  no usable scalability curve (every job rigid or flat-profiled),
  :class:`~repro.elastic.ElasticMuriScheduler` must reproduce
  :class:`~repro.core.muri.MuriScheduler` *bit-identically* — same
  JCTs, same finish times, same preemption counts, same cluster
  time series.  Renegotiation returns early without touching any
  scheduler state, so the inherited ``decide`` is provably the same
  code on the same inputs; this oracle certifies it end to end.
* **Cache soundness under resizes** — :func:`run_elastic_oracle`:
  a warm elastic scheduler (plan memo, overflow reservoir, per-bucket
  decision caches) wrapped in
  :class:`~repro.verify.differential.IncrementalOracle`, so every
  decision on an actively-resizing stream is compared against a cold
  full re-solve.  Any stale demand-keyed cache entry surviving a
  ``notify_resize`` diverges here.

Mismatches raise :class:`~repro.verify.invariants.InvariantViolation`
with a ``differential.elastic*`` invariant name, matching the other
differential oracles.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.jobs.job import JobSpec
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import ClusterSimulator
from repro.verify.differential import IncrementalOracle
from repro.verify.invariants import InvariantViolation

__all__ = ["compare_flat_identity", "run_elastic_oracle"]


def _simulate(
    scheduler,
    specs: Sequence[JobSpec],
    cluster_shape: Tuple[int, int],
    sim_kwargs: Dict,
    trace_name: str,
) -> SimulationResult:
    machines, gpus = cluster_shape
    simulator = ClusterSimulator(
        scheduler, cluster=Cluster(machines, gpus), **sim_kwargs
    )
    try:
        return simulator.run(specs, trace_name=trace_name)
    finally:
        close = getattr(scheduler, "close", None)
        if close is not None:
            close()


def compare_flat_identity(
    specs: Sequence[JobSpec],
    policy: str = "srsf",
    cluster_shape: Tuple[int, int] = (8, 8),
    scheduler_kwargs: Optional[Dict] = None,
    sim_kwargs: Optional[Dict] = None,
    trace_name: str = "flat-identity",
) -> Tuple[SimulationResult, SimulationResult]:
    """Elastic vs plain Muri on a flat workload; must be bit-identical.

    Args:
        specs: The workload.  Every spec must be rigid (no scalability
            profile) or carry a flat one — the precondition of the
            degeneracy guarantee.
        policy: Muri priority policy for both sides.
        cluster_shape: ``(machines, gpus_per_machine)`` for both sides.
        scheduler_kwargs: Extra constructor arguments applied to both
            schedulers.
        sim_kwargs: Extra :class:`~repro.sim.ClusterSimulator`
            arguments applied to both simulators.
        trace_name: Workload label stamped on both results.

    Returns:
        ``(muri_result, elastic_result)`` once identity holds.

    Raises:
        ValueError: When a spec carries a non-flat scalability profile
            (the degeneracy precondition does not apply).
        InvariantViolation: With invariant
            ``differential.elastic_flat`` on any divergence.
    """
    from repro.core.muri import MuriScheduler
    from repro.elastic.scheduler import ElasticMuriScheduler

    for spec in specs:
        if spec.scalability is not None and not spec.scalability.is_flat:
            raise ValueError(
                f"job {spec.job_id} has a non-flat scalability profile; "
                "compare_flat_identity only applies to flat workloads"
            )
    scheduler_kwargs = dict(scheduler_kwargs or {})
    sim_kwargs = dict(sim_kwargs or {})

    baseline = _simulate(
        MuriScheduler(policy=policy, **scheduler_kwargs),
        specs, cluster_shape, sim_kwargs, trace_name,
    )
    elastic = _simulate(
        ElasticMuriScheduler(policy=policy, **scheduler_kwargs),
        specs, cluster_shape, sim_kwargs, trace_name,
    )

    mismatches = {}
    if baseline.jcts != elastic.jcts:
        mismatches["jcts"] = {
            "baseline_jobs": len(baseline.jcts),
            "elastic_jobs": len(elastic.jcts),
            "diverging": sorted(
                job_id
                for job_id in set(baseline.jcts) | set(elastic.jcts)
                if baseline.jcts.get(job_id) != elastic.jcts.get(job_id)
            )[:16],
        }
    if baseline.finish_times != elastic.finish_times:
        mismatches["finish_times"] = True
    if baseline.total_preemptions != elastic.total_preemptions:
        mismatches["total_preemptions"] = {
            "baseline": baseline.total_preemptions,
            "elastic": elastic.total_preemptions,
        }
    if baseline.total_restart_time != elastic.total_restart_time:
        mismatches["total_restart_time"] = {
            "baseline": baseline.total_restart_time,
            "elastic": elastic.total_restart_time,
        }
    if baseline.timeseries != elastic.timeseries:
        mismatches["timeseries"] = {
            "baseline_points": len(baseline.timeseries),
            "elastic_points": len(elastic.timeseries),
        }
    if mismatches:
        raise InvariantViolation(
            "differential.elastic_flat",
            "ElasticMuriScheduler diverged from MuriScheduler on a "
            "flat workload (degeneracy guarantee broken)",
            details={"mismatches": mismatches},
        )
    return baseline, elastic


def run_elastic_oracle(
    specs: Sequence[JobSpec],
    policy: str = "srsf",
    cluster_shape: Tuple[int, int] = (8, 8),
    renegotiation_interval: int = 1,
    event_regroup: bool = True,
    scheduler_kwargs: Optional[Dict] = None,
    sim_kwargs: Optional[Dict] = None,
    trace_name: str = "elastic-oracle",
) -> Tuple[SimulationResult, int]:
    """Run an elastic workload with every decision cold-checked.

    The warm :class:`~repro.elastic.ElasticMuriScheduler` drives the
    simulation — renegotiating, resizing, and serving warm caches —
    while :class:`~repro.verify.differential.IncrementalOracle`
    replays every ``decide`` through a cold, identically configured
    scheduler.  Resizes mutate the shared :class:`~repro.jobs.Job`
    objects, so both sides see the same post-resize demands; only the
    warm side's caches can diverge, which is exactly the surface a
    missed invalidation would corrupt.

    Args:
        specs: The (typically elastic) workload.
        policy: Muri priority policy.
        cluster_shape: ``(machines, gpus_per_machine)``.
        renegotiation_interval: Renegotiate every k-th tick.
        event_regroup: Full regroup on events (exercises the decision
            cache on every completion, the harshest setting).
        scheduler_kwargs: Extra constructor arguments applied to both
            the warm scheduler and the cold factory.
        sim_kwargs: Extra :class:`~repro.sim.ClusterSimulator`
            arguments.
        trace_name: Workload label stamped on the result.

    Returns:
        ``(result, checks)`` — the simulation result and how many
        decisions the oracle verified.

    Raises:
        InvariantViolation: With invariant ``differential.incremental``
            when a warm decision diverges from its cold re-solve.
    """
    from repro.elastic.scheduler import ElasticMuriScheduler

    scheduler_kwargs = dict(scheduler_kwargs or {})
    sim_kwargs = dict(sim_kwargs or {})

    def build() -> ElasticMuriScheduler:
        return ElasticMuriScheduler(
            policy=policy,
            renegotiation_interval=renegotiation_interval,
            event_regroup=event_regroup,
            **scheduler_kwargs,
        )

    oracle = IncrementalOracle(build(), build)
    result = _simulate(
        oracle, specs, cluster_shape, sim_kwargs, trace_name
    )
    return result, oracle.checks
