"""Differential oracle for the heterogeneous-cluster arm.

The guarantee backing ``repro.hetero`` (see ``docs/heterogeneous.md``):
when every machine carries the *same* GPU generation and every job is
pinned to it, the whole heterogeneity surface — affinity-aware bucket
feasibility in the grouper, type-filtered placement pools, affinity
cache-key suffixes — must collapse into a no-op.
:func:`compare_homogeneous_identity` certifies it end to end by
running the single-type heterogeneous configuration against a plain
homogeneous cluster whose jobs carry the *identical pre-scaled
profiles* but no affinity, and demanding bit-identical results: same
JCTs, same finish times, same preemption counts, same cluster time
series.

Mismatches raise :class:`~repro.verify.invariants.InvariantViolation`
with invariant name ``differential.homogeneous``, matching the other
differential oracles.

:func:`compare_uniform_scaling_identity` certifies the second
degeneracy promise: when every generation carries the *same* speed
factor there is no throughput signal, so the Gavel-style
:class:`~repro.cluster.placement.ThroughputAwarePlacer` must collapse
into today's :class:`~repro.cluster.placement.DescendingPlacer` path
bit-identically (invariant ``differential.uniform_scaling``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.placement import ThroughputAwarePlacer
from repro.hetero.types import GPU_GENERATIONS, TypeScaling, get_gpu_type
from repro.hetero.workload import make_hetero_cluster, pin_jobs
from repro.jobs.job import JobSpec
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import ClusterSimulator
from repro.verify.invariants import InvariantViolation

__all__ = [
    "compare_homogeneous_identity",
    "compare_uniform_scaling_identity",
]


def _simulate(
    scheduler,
    specs: Sequence[JobSpec],
    cluster: Cluster,
    sim_kwargs: Dict,
    trace_name: str,
) -> SimulationResult:
    simulator = ClusterSimulator(scheduler, cluster=cluster, **sim_kwargs)
    try:
        return simulator.run(specs, trace_name=trace_name)
    finally:
        close = getattr(scheduler, "close", None)
        if close is not None:
            close()


def compare_homogeneous_identity(
    specs: Sequence[JobSpec],
    type_name: str = "v100",
    scheduler: str = "muri-s",
    cluster_shape: Tuple[int, int] = (8, 8),
    scaling: Optional[TypeScaling] = None,
    seed: int = 0,
    sim_kwargs: Optional[Dict] = None,
    trace_name: str = "homogeneous-identity",
) -> Tuple[SimulationResult, SimulationResult]:
    """Single-type hetero vs plain homogeneous; must be bit-identical.

    Both sides see the *same pre-scaled job profiles* (the hetero
    side's :func:`~repro.hetero.pin_jobs` output, affinity stripped on
    the baseline), so any divergence is introduced by the affinity
    machinery itself — grouper feasibility checks, cache-key suffixes,
    the type-filtered placement pool — exactly the surface this oracle
    pins down.

    Args:
        specs: The workload, before pinning.
        type_name: The single generation every machine and job gets.
        scheduler: Registry name built fresh for each side.
        cluster_shape: ``(machines, gpus_per_machine)`` for both sides.
        scaling: Speed-factor table forwarded to ``pin_jobs``.
        seed: Pinning seed (only the RNG stream; with one candidate
            type every job pins identically regardless).
        sim_kwargs: Extra :class:`~repro.sim.ClusterSimulator`
            arguments applied to both simulators.
        trace_name: Workload label stamped on both results.

    Returns:
        ``(homogeneous_result, hetero_result)`` once identity holds.

    Raises:
        InvariantViolation: With invariant ``differential.homogeneous``
            on any divergence.
        KeyError: For an unknown generation name.
    """
    from repro.schedulers.registry import make_scheduler

    sim_kwargs = dict(sim_kwargs or {})
    machines, gpus = cluster_shape
    gpu_type = get_gpu_type(type_name)

    pinned = pin_jobs(specs, [type_name], seed=seed, scaling=scaling)
    stripped = [replace(spec, gpu_affinity=None) for spec in pinned]

    homogeneous = _simulate(
        make_scheduler(scheduler),
        stripped,
        Cluster(machines, gpus),
        sim_kwargs,
        trace_name,
    )
    hetero = _simulate(
        make_scheduler(scheduler),
        pinned,
        Cluster(machines, gpus, machine_types=[gpu_type] * machines),
        sim_kwargs,
        trace_name,
    )

    mismatches = _result_mismatches(
        homogeneous, hetero, "homogeneous", "hetero"
    )
    if mismatches:
        raise InvariantViolation(
            "differential.homogeneous",
            f"single-type ({type_name}) heterogeneous run diverged from "
            "the homogeneous baseline (affinity no-op guarantee broken)",
            details={"mismatches": mismatches},
        )
    return homogeneous, hetero


def _result_mismatches(
    left: SimulationResult,
    right: SimulationResult,
    left_label: str,
    right_label: str,
) -> Dict[str, object]:
    """Full-surface divergence report between two simulation results."""
    mismatches: Dict[str, object] = {}
    if left.jcts != right.jcts:
        mismatches["jcts"] = {
            f"{left_label}_jobs": len(left.jcts),
            f"{right_label}_jobs": len(right.jcts),
            "diverging": sorted(
                job_id
                for job_id in set(left.jcts) | set(right.jcts)
                if left.jcts.get(job_id) != right.jcts.get(job_id)
            )[:16],
        }
    if left.finish_times != right.finish_times:
        mismatches["finish_times"] = True
    if left.total_preemptions != right.total_preemptions:
        mismatches["total_preemptions"] = {
            left_label: left.total_preemptions,
            right_label: right.total_preemptions,
        }
    if left.total_restart_time != right.total_restart_time:
        mismatches["total_restart_time"] = {
            left_label: left.total_restart_time,
            right_label: right.total_restart_time,
        }
    if left.timeseries != right.timeseries:
        mismatches["timeseries"] = {
            f"{left_label}_points": len(left.timeseries),
            f"{right_label}_points": len(right.timeseries),
        }
    return mismatches


def compare_uniform_scaling_identity(
    specs: Sequence[JobSpec],
    type_names: Sequence[str] = ("k80", "a100"),
    scheduler: str = "muri-s",
    cluster_shape: Tuple[int, int] = (8, 8),
    factor: float = 1.0,
    prefer_fraction: float = 0.5,
    seed: int = 0,
    sim_kwargs: Optional[Dict] = None,
    trace_name: str = "uniform-scaling-identity",
) -> Tuple[SimulationResult, SimulationResult]:
    """Throughput-aware vs default placement under uniform factors.

    With every generation carrying the *same* speed factor there is no
    throughput signal, so the Gavel-style scoring in
    :class:`~repro.cluster.placement.ThroughputAwarePlacer` must make
    exactly the decisions today's
    :class:`~repro.cluster.placement.DescendingPlacer` path makes —
    same plans, bit-identical results.  Both runs share one
    mixed-generation cluster layout, one uniformly-scaled
    pinned/preferred workload, and the same
    ``landing_speed_scaling``; the only difference is the placer,
    exactly the surface this oracle pins down.  With the default
    ``factor=1.0`` the baseline side *is* today's path — every
    realized landing speed is neutral.

    Args:
        specs: The workload, before pinning.  Jobs whose demand
            exceeds their seeded generation pool starve rather than
            diverge (a hard pin never relaxes), so size demands under
            the smallest pool — or under ``gpus_per_machine``, which
            every pool can host — when sweeping seeds.
        type_names: Generation mix of cluster and workload.
        scheduler: Registry name built fresh for each side.
        cluster_shape: ``(machines, gpus_per_machine)`` for both sides.
        factor: The one speed factor every generation gets.
        prefer_fraction: Share of jobs pinned softly (prefer) instead
            of hard — the population the throughput-aware placer
            actually steers.
        seed: Pinning and cluster-layout seed.
        sim_kwargs: Extra :class:`~repro.sim.ClusterSimulator`
            arguments applied to both simulators.
        trace_name: Workload label stamped on both results.

    Returns:
        ``(baseline_result, aware_result)`` once identity holds.

    Raises:
        InvariantViolation: With invariant
            ``differential.uniform_scaling`` on any divergence.
        KeyError: For an unknown generation name.
    """
    from repro.schedulers.registry import make_scheduler

    sim_kwargs = dict(sim_kwargs or {})
    machines, gpus = cluster_shape
    uniform = TypeScaling(
        base={name: factor for name in GPU_GENERATIONS}
    )

    pinned = pin_jobs(
        specs,
        list(type_names),
        seed=seed,
        scaling=uniform,
        prefer_fraction=prefer_fraction,
    )

    def typed_cluster() -> Cluster:
        return make_hetero_cluster(
            machines, gpus, type_names=tuple(type_names), seed=seed
        )

    baseline = _simulate(
        make_scheduler(scheduler),
        pinned,
        typed_cluster(),
        dict(sim_kwargs, landing_speed_scaling=uniform),
        trace_name,
    )
    aware = _simulate(
        make_scheduler(scheduler),
        pinned,
        typed_cluster(),
        dict(
            sim_kwargs,
            landing_speed_scaling=uniform,
            placer=ThroughputAwarePlacer(scaling=uniform),
        ),
        trace_name,
    )

    mismatches = _result_mismatches(baseline, aware, "baseline", "aware")
    if mismatches:
        raise InvariantViolation(
            "differential.uniform_scaling",
            "throughput-aware placement diverged from the default "
            "placer under uniform speed factors (degeneracy promise "
            "broken)",
            details={"mismatches": mismatches},
        )
    return baseline, aware
