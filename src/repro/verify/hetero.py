"""Differential oracle for the heterogeneous-cluster arm.

The guarantee backing ``repro.hetero`` (see ``docs/heterogeneous.md``):
when every machine carries the *same* GPU generation and every job is
pinned to it, the whole heterogeneity surface — affinity-aware bucket
feasibility in the grouper, type-filtered placement pools, affinity
cache-key suffixes — must collapse into a no-op.
:func:`compare_homogeneous_identity` certifies it end to end by
running the single-type heterogeneous configuration against a plain
homogeneous cluster whose jobs carry the *identical pre-scaled
profiles* but no affinity, and demanding bit-identical results: same
JCTs, same finish times, same preemption counts, same cluster time
series.

Mismatches raise :class:`~repro.verify.invariants.InvariantViolation`
with invariant name ``differential.homogeneous``, matching the other
differential oracles.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.hetero.types import TypeScaling, get_gpu_type
from repro.hetero.workload import pin_jobs
from repro.jobs.job import JobSpec
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import ClusterSimulator
from repro.verify.invariants import InvariantViolation

__all__ = ["compare_homogeneous_identity"]


def _simulate(
    scheduler,
    specs: Sequence[JobSpec],
    cluster: Cluster,
    sim_kwargs: Dict,
    trace_name: str,
) -> SimulationResult:
    simulator = ClusterSimulator(scheduler, cluster=cluster, **sim_kwargs)
    try:
        return simulator.run(specs, trace_name=trace_name)
    finally:
        close = getattr(scheduler, "close", None)
        if close is not None:
            close()


def compare_homogeneous_identity(
    specs: Sequence[JobSpec],
    type_name: str = "v100",
    scheduler: str = "muri-s",
    cluster_shape: Tuple[int, int] = (8, 8),
    scaling: Optional[TypeScaling] = None,
    seed: int = 0,
    sim_kwargs: Optional[Dict] = None,
    trace_name: str = "homogeneous-identity",
) -> Tuple[SimulationResult, SimulationResult]:
    """Single-type hetero vs plain homogeneous; must be bit-identical.

    Both sides see the *same pre-scaled job profiles* (the hetero
    side's :func:`~repro.hetero.pin_jobs` output, affinity stripped on
    the baseline), so any divergence is introduced by the affinity
    machinery itself — grouper feasibility checks, cache-key suffixes,
    the type-filtered placement pool — exactly the surface this oracle
    pins down.

    Args:
        specs: The workload, before pinning.
        type_name: The single generation every machine and job gets.
        scheduler: Registry name built fresh for each side.
        cluster_shape: ``(machines, gpus_per_machine)`` for both sides.
        scaling: Speed-factor table forwarded to ``pin_jobs``.
        seed: Pinning seed (only the RNG stream; with one candidate
            type every job pins identically regardless).
        sim_kwargs: Extra :class:`~repro.sim.ClusterSimulator`
            arguments applied to both simulators.
        trace_name: Workload label stamped on both results.

    Returns:
        ``(homogeneous_result, hetero_result)`` once identity holds.

    Raises:
        InvariantViolation: With invariant ``differential.homogeneous``
            on any divergence.
        KeyError: For an unknown generation name.
    """
    from repro.schedulers.registry import make_scheduler

    sim_kwargs = dict(sim_kwargs or {})
    machines, gpus = cluster_shape
    gpu_type = get_gpu_type(type_name)

    pinned = pin_jobs(specs, [type_name], seed=seed, scaling=scaling)
    stripped = [replace(spec, gpu_affinity=None) for spec in pinned]

    homogeneous = _simulate(
        make_scheduler(scheduler),
        stripped,
        Cluster(machines, gpus),
        sim_kwargs,
        trace_name,
    )
    hetero = _simulate(
        make_scheduler(scheduler),
        pinned,
        Cluster(machines, gpus, machine_types=[gpu_type] * machines),
        sim_kwargs,
        trace_name,
    )

    mismatches: Dict[str, object] = {}
    if homogeneous.jcts != hetero.jcts:
        mismatches["jcts"] = {
            "homogeneous_jobs": len(homogeneous.jcts),
            "hetero_jobs": len(hetero.jcts),
            "diverging": sorted(
                job_id
                for job_id in set(homogeneous.jcts) | set(hetero.jcts)
                if homogeneous.jcts.get(job_id) != hetero.jcts.get(job_id)
            )[:16],
        }
    if homogeneous.finish_times != hetero.finish_times:
        mismatches["finish_times"] = True
    if homogeneous.total_preemptions != hetero.total_preemptions:
        mismatches["total_preemptions"] = {
            "homogeneous": homogeneous.total_preemptions,
            "hetero": hetero.total_preemptions,
        }
    if homogeneous.total_restart_time != hetero.total_restart_time:
        mismatches["total_restart_time"] = {
            "homogeneous": homogeneous.total_restart_time,
            "hetero": hetero.total_restart_time,
        }
    if homogeneous.timeseries != hetero.timeseries:
        mismatches["timeseries"] = {
            "homogeneous_points": len(homogeneous.timeseries),
            "hetero_points": len(hetero.timeseries),
        }
    if mismatches:
        raise InvariantViolation(
            "differential.homogeneous",
            f"single-type ({type_name}) heterogeneous run diverged from "
            "the homogeneous baseline (affinity no-op guarantee broken)",
            details={"mismatches": mismatches},
        )
    return homogeneous, hetero
