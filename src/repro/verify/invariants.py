"""Runtime invariant checking for the simulator/scheduler stack.

The paper's model makes hard promises — GPUs are never oversubscribed,
a job interleaves with at most one group at a time, gamma stays in
``(0, 1]`` and agrees with Eq. 3's period under the chosen stage
ordering, the queue is served in SRSF/2D-LAS priority order, faults
never mint or destroy progress.  The optimized hot paths (sparse
matching graphs, vectorized ordering kernels, decision caches) must
keep every one of those promises.  This module makes them executable:

* :data:`INVARIANT_CATALOG` names each predicate;
* :class:`InvariantChecker` is a :class:`~repro.observe.Tracer`
  subclass that arms any subset of them.  Because every component in
  the stack already accepts a ``tracer=``, arming checks is just::

      checker = InvariantChecker()
      scheduler = make_scheduler("muri-s", tracer=checker)
      ClusterSimulator(scheduler, tracer=checker).run(specs)

* a failed predicate raises (or, with ``strict=False``, records) a
  structured :class:`InvariantViolation` carrying the per-job decision
  provenance the tracer collected up to that point, so the offending
  scheduling decision can be explained, not just flagged.

Checking is **off by default** everywhere: no simulator or scheduler
constructs a checker on its own, and a run without one pays nothing.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.observe.events import EventCategory
from repro.observe.tracer import NULL_SPAN, Tracer
from repro.verify.reference import reference_efficiency, reference_period

__all__ = [
    "InvariantViolation",
    "InvariantChecker",
    "INVARIANT_CATALOG",
    "check_group_wellformed",
]

#: Every supported invariant, with the promise it enforces.
INVARIANT_CATALOG: Dict[str, str] = {
    "clock_monotone": (
        "Simulation time never runs backwards: the sim_time of every "
        "traced instant event is non-decreasing within a run."
    ),
    "gpu_capacity": (
        "GPU capacity is never exceeded: the GPUs of all concurrently "
        "started groups never sum past the cluster total, and the "
        "cluster's own per-machine free/allocated accounting stays "
        "consistent."
    ),
    "plan_capacity": (
        "Scheduler contract: a proposed plan's total GPU demand is at "
        "most the cluster capacity."
    ),
    "exclusive_membership": (
        "Every job interleaves in at most one group per interval — the "
        "no-cross-group constraint that prevents the Fig. 7 cascading "
        "synchronization slowdown."
    ),
    "bucket_homogeneous": (
        "All members of a group request the same GPU count (grouping "
        "happens within GPU-count buckets only)."
    ),
    "offsets_distinct": (
        "A group's phase offsets are distinct modulo k, so no two "
        "members ever occupy the same resource in the same slot."
    ),
    "gamma_bounds": (
        "Interleaving efficiency gamma lies in (0, 1] and matches the "
        "Eq. 4 value recomputed from Eq. 3's period under the group's "
        "chosen stage ordering (scalar reference implementation)."
    ),
    "queue_order": (
        "SRSF/2D-LAS queue-order compliance: newly started groups "
        "appear in non-decreasing best-member priority under the "
        "scheduler's own policy."
    ),
    "progress_conserved": (
        "Fault accounting conserves progress: a fault restores at most "
        "progress_loss of the executed iterations and never pushes "
        "remaining work above the job's total or below what was left."
    ),
    "resize_progress_conserved": (
        "Elastic resizes never mint or destroy progress: applying a "
        "new GPU count leaves the job's remaining iterations and "
        "attained service exactly as they were."
    ),
    "placement_respects_affinity": (
        "Heterogeneous placement honors GPU-generation affinity: a "
        "group never mixes jobs with different affinities, and a "
        "pinned group's allocation lands only on machines of the "
        "pinned generation."
    ),
}


class InvariantViolation(RuntimeError):
    """A runtime invariant of the paper's model was broken.

    Attributes:
        invariant: Name from :data:`INVARIANT_CATALOG`.
        message: Human-readable description of the failure.
        sim_time: Simulation time at which the check fired.
        details: Structured facts about the failure (JSON-friendly).
        provenance: Per-job decision provenance snapshots
            (``job_id -> list of summary dicts``) for the jobs involved
            in the offending decision, taken from the checker's
            :class:`~repro.observe.ProvenanceStore` at raise time.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        sim_time: float = 0.0,
        details: Optional[Dict[str, Any]] = None,
        provenance: Optional[Dict[int, List[Dict[str, Any]]]] = None,
    ) -> None:
        super().__init__(f"[{invariant}] t={sim_time:.1f}s: {message}")
        self.invariant = invariant
        self.message = message
        self.sim_time = sim_time
        self.details = details or {}
        self.provenance = provenance or {}

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable record of the violation (for repro files)."""
        return {
            "invariant": self.invariant,
            "message": self.message,
            "sim_time": self.sim_time,
            "details": self.details,
            "provenance": {
                str(job_id): records
                for job_id, records in self.provenance.items()
            },
        }


def check_group_wellformed(
    group,
    tolerance: float = 1e-6,
    sim_time: float = 0.0,
    invariants: Optional[Set[str]] = None,
    _raise=None,
) -> None:
    """Structural invariants of one :class:`~repro.core.group.JobGroup`.

    Checks bucket homogeneity, offset distinctness, group size against
    the resource count, and that the group's believed efficiency
    matches Eq. 3/Eq. 4 recomputed by the scalar reference
    implementation.  Used by both the online checker and the
    differential oracles.

    Args:
        group: The group to validate.
        tolerance: Absolute tolerance for float comparisons.
        sim_time: Simulation time stamped on violations.
        invariants: Subset of invariant names to enforce (None = all).
        _raise: Internal override for how violations are reported; the
            default raises the :class:`InvariantViolation`.

    Raises:
        InvariantViolation: On the first broken invariant.
    """
    fail = _raise or _raise_violation
    armed = invariants if invariants is not None else set(INVARIANT_CATALOG)
    members = [job.job_id for job in group.jobs]
    k = group.num_resources

    if "bucket_homogeneous" in armed:
        gpu_counts = {job.num_gpus for job in group.jobs}
        if len(gpu_counts) != 1:
            fail(
                "bucket_homogeneous",
                f"group {members} mixes GPU counts {sorted(gpu_counts)}",
                sim_time,
                {"members": members, "gpu_counts": sorted(gpu_counts)},
                members,
            )

    if "offsets_distinct" in armed:
        offsets = tuple(group.offsets)
        if len(offsets) != len(members):
            fail(
                "offsets_distinct",
                f"group {members} has {len(offsets)} offsets for "
                f"{len(members)} jobs",
                sim_time,
                {"members": members, "offsets": list(offsets)},
                members,
            )
        if len({o % k for o in offsets}) != len(offsets):
            fail(
                "offsets_distinct",
                f"group {members} has colliding offsets {offsets} mod {k}",
                sim_time,
                {"members": members, "offsets": list(offsets), "k": k},
                members,
            )
        if len(members) > k:
            fail(
                "offsets_distinct",
                f"group {members} interleaves {len(members)} jobs over "
                f"only {k} resources",
                sim_time,
                {"members": members, "k": k},
                members,
            )

    if "gamma_bounds" in armed:
        rows = [tuple(p.durations) for p in group.believed_profiles]
        try:
            period = reference_period(rows, tuple(group.offsets), k)
            gamma = reference_efficiency(rows, period, k)
        except ValueError as error:
            # Malformed offsets surface here when offsets_distinct is
            # not armed; report them as a gamma failure rather than
            # crashing the checker.
            fail(
                "gamma_bounds",
                f"group {members}: Eq. 3/4 reference rejected the group "
                f"({error})",
                sim_time,
                {"members": members, "error": str(error)},
                members,
            )
            return
        if not (0.0 < gamma <= 1.0 + tolerance):
            fail(
                "gamma_bounds",
                f"group {members} has gamma {gamma:.6f} outside (0, 1]",
                sim_time,
                {"members": members, "gamma": gamma, "period": period},
                members,
            )
        believed = group.believed_efficiency
        if abs(believed - gamma) > tolerance:
            fail(
                "gamma_bounds",
                f"group {members}: believed gamma {believed:.6f} disagrees "
                f"with the Eq. 3/4 reference value {gamma:.6f}",
                sim_time,
                {
                    "members": members,
                    "believed": believed,
                    "reference": gamma,
                    "period": period,
                },
                members,
            )


def _raise_violation(
    invariant: str,
    message: str,
    sim_time: float,
    details: Dict[str, Any],
    jobs: Iterable[int] = (),
) -> None:
    """Default reporter for module-level checks (no provenance store)."""
    raise InvariantViolation(invariant, message, sim_time, details)


class _GroupState:
    """Executor-side mirror of one running group (event-derived)."""

    __slots__ = ("members", "gpus")

    def __init__(self, members: Set[int], gpus: int) -> None:
        self.members = members
        self.gpus = gpus


class InvariantChecker(Tracer):
    """A tracer that verifies the paper's invariants as the run unfolds.

    Attach it exactly like a :class:`~repro.observe.Tracer` — pass it
    as the ``tracer=`` of :func:`~repro.schedulers.make_scheduler` and
    :class:`~repro.sim.ClusterSimulator`.  Event-driven invariants
    (clock monotonicity, capacity accounting, membership exclusivity,
    fault progress conservation) run inside :meth:`emit`; structural
    invariants over live plans (gamma/Eq. 3 consistency, offsets,
    queue order, plan capacity) run inside the :meth:`inspect` hook the
    simulator and Muri scheduler call at their decision points.

    Args:
        invariants: Names from :data:`INVARIANT_CATALOG` to arm
            (None = all).  Unknown names raise ``ValueError``.
        tolerance: Absolute tolerance for float comparisons.
        strict: When True (default) the first violation raises,
            aborting the simulation; when False violations accumulate
            on :attr:`violations` and the run continues.
        store_events: When False (default) trace events are checked
            and then dropped instead of stored, keeping the armed
            overhead low; set True to keep the full event log (e.g.
            to export a trace of a failing run).
        max_events: Event-storage cap when ``store_events`` is True.
        provenance_records: Passed through as the tracer's
            ``max_groupings_per_job``.

    Attributes:
        violations: Violations recorded so far (non-strict mode; in
            strict mode it holds the raised violation too).
    """

    def __init__(
        self,
        invariants: Optional[Iterable[str]] = None,
        tolerance: float = 1e-6,
        strict: bool = True,
        store_events: bool = False,
        max_events: int = 1_000_000,
        provenance_records: int = 32,
    ) -> None:
        super().__init__(
            enabled=True,
            max_events=max_events,
            max_groupings_per_job=provenance_records,
        )
        armed = (
            set(INVARIANT_CATALOG) if invariants is None else set(invariants)
        )
        unknown = armed - set(INVARIANT_CATALOG)
        if unknown:
            raise ValueError(
                f"unknown invariants {sorted(unknown)}; available: "
                f"{sorted(INVARIANT_CATALOG)}"
            )
        self.invariants = armed
        self.tolerance = tolerance
        self.strict = strict
        self.violations: List[InvariantViolation] = []
        self._store_events = store_events
        # Grouping/outcome records are kept (violations embed them);
        # per-candidate edges are only worth their cost when the full
        # event log is wanted anyway.
        self.candidate_provenance = store_events
        self._reset_run_state()

    # -- tracer surface --------------------------------------------------------

    def emit(
        self,
        category: EventCategory,
        name: str,
        sim_time: float = 0.0,
        **args: Any,
    ) -> None:
        """Check the event against the armed invariants, then record it
        only when ``store_events`` was requested."""
        self._check_event(name, sim_time, args)
        if self._store_events:
            super().emit(category, name, sim_time, **args)

    def _record(self, event) -> None:
        """Store span/instant events only in ``store_events`` mode."""
        if self._store_events:
            super()._record(event)

    def span(self, name: str, sim_time: float = 0.0, **args: Any):
        """Timing spans carry no invariant information; skip them
        entirely unless the full event log was requested."""
        if self._store_events:
            return super().span(name, sim_time, **args)
        return NULL_SPAN

    def count(self, name: str, amount: int = 1) -> None:
        """Counters fire on per-edge hot paths; keep them only in
        ``store_events`` mode."""
        if self._store_events:
            super().count(name, amount)

    def inspect(self, point: str, sim_time: float = 0.0, **state: Any) -> None:
        """Run structural checks at a named simulator/scheduler point.

        Known points (all optional — unknown points are ignored so the
        hook stays forward-compatible):

        * ``"sim.plan"`` — the simulator's validated proposal:
          ``groups`` (list of JobGroup), ``total_gpus``.
        * ``"sched.order"`` — a scheduler's raw plan before handing it
          to the simulator: ``plan``, ``running`` (keys of running
          groups), ``policy`` (the priority callable), ``now``.
        * ``"sim.cluster"`` — the live cluster after placement:
          ``cluster``.
        """
        if point == "sim.plan":
            self._check_plan(
                sim_time, state["groups"], state.get("total_gpus")
            )
        elif point == "sched.order":
            self._check_queue_order(
                sim_time,
                state["plan"],
                state.get("running") or (),
                state.get("policy"),
            )
            self._check_plan_membership(sim_time, state["plan"])
        elif point == "sim.cluster":
            self._check_cluster(sim_time, state["cluster"])

    # -- event-driven invariants ---------------------------------------------

    def _reset_run_state(self) -> None:
        """Forget per-run state (called on ``sim.run.start``)."""
        self._last_sim_time = float("-inf")
        self._total_gpus: Optional[int] = None
        self._allocated = 0
        self._job_group: Dict[int, _GroupState] = {}
        # Structural group checks are pure in the group's contents, and
        # the scheduler re-proposes the same (kept) groups every tick —
        # memoizing passed checks makes the steady state a set lookup.
        self._groups_ok: Set[Tuple] = set()

    def _check_event(self, name: str, sim_time: float, args: Dict[str, Any]) -> None:
        """Dispatch one instant event to the armed event invariants."""
        if name == "sim.run.start":
            self._reset_run_state()
            self._total_gpus = args.get("gpus")
        if "clock_monotone" in self.invariants:
            if sim_time < self._last_sim_time - self.tolerance:
                self._fail(
                    "clock_monotone",
                    f"event {name!r} at t={sim_time:.3f}s after "
                    f"t={self._last_sim_time:.3f}s",
                    sim_time,
                    {"event": name, "previous": self._last_sim_time},
                )
            if sim_time > self._last_sim_time:
                self._last_sim_time = sim_time
        if name == "group.start":
            self._on_group_start(sim_time, args)
        elif name == "group.preempt":
            self._on_group_stop(sim_time, args)
        elif name == "job.finish":
            self._on_member_left(sim_time, args.get("job"))
        elif name == "job.fault":
            self._on_fault(sim_time, args)
        elif name == "sched.resize.apply":
            self._on_resize(sim_time, args)
        elif name == "sched.hetero.place":
            self._on_hetero_place(sim_time, args)

    def _on_group_start(self, sim_time: float, args: Dict[str, Any]) -> None:
        members = list(args.get("members") or ())
        gpus = int(args.get("gpus") or 0)
        if "exclusive_membership" in self.invariants:
            for job_id in members:
                if job_id in self._job_group:
                    self._fail(
                        "exclusive_membership",
                        f"job {job_id} started in group {members} while "
                        f"already interleaving in group "
                        f"{sorted(self._job_group[job_id].members)}",
                        sim_time,
                        {
                            "job": job_id,
                            "new_group": members,
                            "old_group": sorted(self._job_group[job_id].members),
                        },
                        members,
                    )
        state = _GroupState(set(members), gpus)
        for job_id in members:
            self._job_group[job_id] = state
        self._allocated += gpus
        if "gpu_capacity" in self.invariants and self._total_gpus is not None:
            if self._allocated > self._total_gpus:
                self._fail(
                    "gpu_capacity",
                    f"starting group {members} ({gpus} GPUs) pushes "
                    f"allocated GPUs to {self._allocated} of "
                    f"{self._total_gpus}",
                    sim_time,
                    {
                        "members": members,
                        "allocated": self._allocated,
                        "total": self._total_gpus,
                    },
                    members,
                )

    def _on_group_stop(self, sim_time: float, args: Dict[str, Any]) -> None:
        members = list(args.get("members") or ())
        freed = None
        for job_id in members:
            state = self._job_group.pop(job_id, None)
            if state is not None:
                freed = state
        if freed is not None:
            self._allocated -= freed.gpus

    def _on_member_left(self, sim_time: float, job_id) -> None:
        """A member finished or faulted; free the group when empty."""
        state = self._job_group.pop(job_id, None)
        if state is None:
            return
        state.members.discard(job_id)
        if not state.members:
            self._allocated -= state.gpus

    def _on_fault(self, sim_time: float, args: Dict[str, Any]) -> None:
        if "progress_conserved" in self.invariants and "remaining_before" in args:
            before = args["remaining_before"]
            after = args["remaining_after"]
            total = args["total_iterations"]
            loss = args.get("progress_loss", 0.0)
            executed = total - before
            cap = min(float(total), before + executed * loss)
            job_id = args.get("job")
            tol = self.tolerance * max(1.0, total)
            if after < before - tol or after > cap + tol:
                self._fail(
                    "progress_conserved",
                    f"fault on job {job_id} moved remaining iterations "
                    f"from {before:.3f} to {after:.3f} "
                    f"(allowed [{before:.3f}, {cap:.3f}], "
                    f"progress_loss={loss})",
                    sim_time,
                    {
                        "job": job_id,
                        "remaining_before": before,
                        "remaining_after": after,
                        "total_iterations": total,
                        "progress_loss": loss,
                    },
                    [job_id] if job_id is not None else [],
                )
        self._on_member_left(sim_time, args.get("job"))

    def _on_hetero_place(self, sim_time: float, args: Dict[str, Any]) -> None:
        """A placed group must honor its members' GPU-type affinity."""
        if "placement_respects_affinity" not in self.invariants:
            return
        members = list(args.get("members") or ())
        affinities = [tuple(a) for a in (args.get("affinities") or ())]
        machine_types = list(args.get("machine_types") or ())
        # Soft preferences may land anywhere and may mix freely; hard
        # pins are the promise.  Two distinct pins in one group are
        # irreconcilable (members share one allocation), and a single
        # pin must cover every machine of that allocation.
        pins = sorted({
            gpu_type
            for gpu_type, mode in affinities
            if gpu_type is not None and mode == "pin"
        })
        if len(pins) > 1:
            self._fail(
                "placement_respects_affinity",
                f"group {members} mixes pinned GPU generations {pins}",
                sim_time,
                {"members": members, "affinities": affinities},
                members,
            )
            return
        if not pins:
            return
        gpu_type = pins[0]
        stray = sorted({str(t) for t in machine_types if t != gpu_type})
        if stray:
            self._fail(
                "placement_respects_affinity",
                f"group {members} is pinned to {gpu_type!r} but was "
                f"placed on machine types {stray}",
                sim_time,
                {
                    "members": members,
                    "pinned": gpu_type,
                    "machine_types": machine_types,
                },
                members,
            )

    def _on_resize(self, sim_time: float, args: Dict[str, Any]) -> None:
        """An applied resize must conserve progress exactly."""
        if "resize_progress_conserved" not in self.invariants:
            return
        job_id = args.get("job")
        for metric in ("remaining", "attained"):
            before = args.get(f"{metric}_before")
            after = args.get(f"{metric}_after")
            if before is None or after is None:
                continue
            tol = self.tolerance * max(1.0, abs(before))
            if abs(after - before) > tol:
                self._fail(
                    "resize_progress_conserved",
                    f"resize of job {job_id} "
                    f"({args.get('old_gpus')} -> {args.get('new_gpus')} "
                    f"GPUs) moved {metric} progress from {before:.6f} "
                    f"to {after:.6f}",
                    sim_time,
                    {
                        "job": job_id,
                        "metric": metric,
                        "before": before,
                        "after": after,
                        "old_gpus": args.get("old_gpus"),
                        "new_gpus": args.get("new_gpus"),
                    },
                    [job_id] if job_id is not None else [],
                )

    # -- structural invariants ----------------------------------------------

    def _check_plan(
        self,
        sim_time: float,
        groups: Sequence,
        total_gpus: Optional[int],
    ) -> None:
        """Validate the simulator's deduplicated proposal."""
        for group in groups:
            key = (
                tuple(job.job_id for job in group.jobs),
                tuple(group.offsets),
                tuple(p.durations for p in group.believed_profiles),
            )
            if key in self._groups_ok:
                continue
            check_group_wellformed(
                group,
                tolerance=self.tolerance,
                sim_time=sim_time,
                invariants=self.invariants,
                _raise=self._fail,
            )
            self._groups_ok.add(key)
            if len(self._groups_ok) > 100_000:
                self._groups_ok.clear()
        if (
            "plan_capacity" in self.invariants
            and total_gpus is not None
            and groups
        ):
            demand = sum(group.num_gpus for group in groups)
            if demand > total_gpus:
                self._fail(
                    "plan_capacity",
                    f"plan demands {demand} GPUs on a {total_gpus}-GPU "
                    f"cluster",
                    sim_time,
                    {"demand": demand, "total": total_gpus},
                    [j.job_id for g in groups for j in g.jobs],
                )

    def _check_plan_membership(self, sim_time: float, plan: Sequence) -> None:
        """No job may appear in two groups of one proposal."""
        if "exclusive_membership" not in self.invariants:
            return
        seen: Dict[int, List[int]] = {}
        for group in plan:
            members = [job.job_id for job in group.jobs]
            for job_id in members:
                if job_id in seen:
                    self._fail(
                        "exclusive_membership",
                        f"job {job_id} proposed in two groups of one "
                        f"plan: {seen[job_id]} and {members}",
                        sim_time,
                        {
                            "job": job_id,
                            "first_group": seen[job_id],
                            "second_group": members,
                        },
                        members,
                    )
                seen[job_id] = members

    def _check_queue_order(
        self,
        sim_time: float,
        plan: Sequence,
        running: Iterable[FrozenSet[int]],
        policy,
    ) -> None:
        """Newly started groups must respect the queue priority order."""
        if "queue_order" not in self.invariants or policy is None:
            return
        running_keys = set(running)
        previous: Optional[Tuple] = None
        previous_members: List[int] = []
        for group in plan:
            members = [job.job_id for job in group.jobs]
            if frozenset(members) in running_keys:
                continue  # kept groups may sit anywhere in the plan
            best = min(
                (policy(job, sim_time), job.spec.submit_time, job.job_id)
                for job in group.jobs
            )
            if previous is not None and best < previous:
                self._fail(
                    "queue_order",
                    f"group {members} (priority {best[0]:.3f}) starts "
                    f"after lower-priority group {previous_members} "
                    f"(priority {previous[0]:.3f})",
                    sim_time,
                    {
                        "group": members,
                        "priority": best[0],
                        "before_group": previous_members,
                        "before_priority": previous[0],
                    },
                    members + previous_members,
                )
            previous = best
            previous_members = members

    def _check_cluster(self, sim_time: float, cluster) -> None:
        """The cluster's own allocation accounting must stay consistent."""
        if "gpu_capacity" not in self.invariants:
            return
        allocated = cluster.allocated_gpus
        total = cluster.total_gpus
        if allocated > total or cluster.free_gpus < 0:
            self._fail(
                "gpu_capacity",
                f"cluster reports {allocated} allocated of {total} GPUs "
                f"({cluster.free_gpus} free)",
                sim_time,
                {"allocated": allocated, "total": total,
                 "free": cluster.free_gpus},
            )
        for machine in cluster.machines:
            free = machine.free_gpu_count
            used = machine.allocated_gpu_count
            if free < 0 or used < 0 or free + used != machine.num_gpus:
                self._fail(
                    "gpu_capacity",
                    f"machine {machine.machine_id} accounting broken: "
                    f"{free} free + {used} allocated != "
                    f"{machine.num_gpus} GPUs",
                    sim_time,
                    {
                        "machine": machine.machine_id,
                        "free": free,
                        "allocated": used,
                        "num_gpus": machine.num_gpus,
                    },
                )

    # -- reporting ------------------------------------------------------------

    def _provenance_snapshot(
        self, jobs: Iterable[int]
    ) -> Dict[int, List[Dict[str, Any]]]:
        """Summarize the stored provenance of the involved jobs."""
        snapshot: Dict[int, List[Dict[str, Any]]] = {}
        for job_id in jobs:
            record = self.provenance.get(job_id)
            if record is None:
                continue
            entries: List[Dict[str, Any]] = []
            for grouping in record.groupings[-4:]:
                entries.append({
                    "kind": "grouping",
                    "sim_time": grouping.sim_time,
                    "members": list(grouping.members),
                    "efficiency": grouping.efficiency,
                    "round": grouping.round_formed,
                    "seeded": grouping.seeded,
                })
            for outcome in record.outcomes[-4:]:
                entries.append({
                    "kind": "outcome",
                    "sim_time": outcome.sim_time,
                    "outcome": outcome.outcome,
                    "detail": outcome.detail,
                })
            snapshot[job_id] = entries
        return snapshot

    def _fail(
        self,
        invariant: str,
        message: str,
        sim_time: float,
        details: Dict[str, Any],
        jobs: Iterable[int] = (),
    ) -> None:
        """Record (and in strict mode raise) one violation."""
        violation = InvariantViolation(
            invariant,
            message,
            sim_time,
            details,
            provenance=self._provenance_snapshot(jobs),
        )
        self.violations.append(violation)
        if self.strict:
            raise violation
