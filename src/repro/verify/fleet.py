"""Differential oracle for the sharded fleet: shards vs serial VC runs.

The fleet front-end's claim (see :mod:`repro.fleet`) is that sharding
is pure plumbing: because shards share nothing, the jobs the front-end
routed to a virtual cluster must finish with *bit-identical* results
to submitting that exact stream to a standalone daemon built the same
way.  :func:`compare_fleet_serial` enforces the claim, in the same
style as :func:`repro.verify.compare_parallel_serial`: any divergence
raises :class:`~repro.verify.invariants.InvariantViolation` with
invariant ``differential.fleet``.

The oracle targets the deterministic harness — a drained fleet whose
submissions all landed before the shards ran (virtual clocks, as in
``FleetFrontEnd.run_sync`` and the CI stream).  Under a wall clock,
submissions interleave with shard steps and no serial replay can
reproduce the timing.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.fleet.frontend import FleetFrontEnd
from repro.fleet.shard import SchedulerShard
from repro.fleet.topology import VirtualCluster
from repro.sim.metrics import SimulationResult
from repro.verify.invariants import InvariantViolation

__all__ = ["compare_fleet_serial"]


def _compare_field(
    vc: str,
    field: str,
    sharded: object,
    serial: object,
) -> None:
    """One field of the per-VC results must match exactly."""
    if sharded != serial:
        raise InvariantViolation(
            "differential.fleet",
            f"shard {vc!r} diverged from its serial replay on {field}",
            details={
                "vc": vc,
                "field": field,
                "sharded": repr(sharded)[:2000],
                "serial": repr(serial)[:2000],
            },
        )


def compare_fleet_serial(
    frontend: FleetFrontEnd,
    shard_factory: Callable[[VirtualCluster], SchedulerShard],
) -> Dict[str, SimulationResult]:
    """Replay each VC's routed stream serially; demand bit-identity.

    For every virtual cluster, the specs the (drained) fleet routed
    there are re-submitted in admission order to a fresh standalone
    shard, which then drains on its own.  Specs are immutable and job
    ids fleet-unique, so the serial run reproduces the exact stream —
    and every per-shard result field (JCTs, finish times, submit
    times, preemptions, makespan) must match with ``==``, no
    tolerance.  A divergence means fleet routing or shard isolation
    leaked state into scheduling decisions.

    Args:
        frontend: A fleet that has fully drained (``run_sync``/``run``
            completed).
        shard_factory: Builds a fresh shard for a VC *exactly* as the
            fleet's shards were built (same scheduler, options, and
            simulator configuration) — e.g.
            ``lambda vc: make_shard(vc, scheduler="muri-s")``.

    Returns:
        The serial per-VC results, keyed by VC name (for reporting).

    Raises:
        InvariantViolation: With invariant ``differential.fleet`` on
            the first diverging shard/field.
        ValueError: When the fleet has not drained yet.
    """
    if frontend.result is None:
        raise ValueError(
            "compare_fleet_serial needs a drained fleet; "
            "call run_sync()/run() first"
        )
    serial_results: Dict[str, SimulationResult] = {}
    routed_by_vc: Dict[str, List] = {name: [] for name in frontend.topology.names}
    for routed in frontend.routed:
        routed_by_vc[routed.vc].append(routed)

    for vc in frontend.topology.vcs:
        shard = shard_factory(vc)
        for routed in routed_by_vc[vc.name]:
            shard.service.submit(routed.spec)
        serial = shard.service.run_sync()
        serial_results[vc.name] = serial

        sharded = frontend.shards[vc.name].service.result
        if sharded is None:
            raise ValueError(f"fleet shard {vc.name!r} never drained")
        _compare_field(vc.name, "jcts", sharded.jcts, serial.jcts)
        _compare_field(
            vc.name, "finish_times", sharded.finish_times, serial.finish_times
        )
        _compare_field(
            vc.name, "submit_times", sharded.submit_times, serial.submit_times
        )
        _compare_field(
            vc.name,
            "total_preemptions",
            sharded.total_preemptions,
            serial.total_preemptions,
        )
        _compare_field(
            vc.name, "makespan", sharded.makespan, serial.makespan
        )
    return serial_results
