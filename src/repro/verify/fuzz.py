"""Seeded episode fuzzing with shrinking repro files.

:func:`run_fuzz` generates :class:`~repro.verify.repro_file.EpisodeSpec`
episodes from a seeded RNG — random workloads, cluster shapes, fault
schedules, and schedulers — and replays each with every invariant
armed.  A failing episode is first *shrunk* (ddmin over the job list,
then single-knob simplifications) so the repro file shows the smallest
workload that still trips the same invariant, and then serialized with
:func:`~repro.verify.save_repro`.

The generation is fully determined by ``FuzzConfig.seed``: episode
``i`` of seed ``s`` is the same on every machine, so CI failures
reproduce locally with ``repro fuzz --episodes N --seed s`` and a
written repro file replays forever after with ``repro fuzz --replay``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from repro.verify.invariants import InvariantViolation
from repro.verify.repro_file import (
    EpisodeSpec,
    JobSpecData,
    run_episode,
    save_repro,
)

__all__ = ["FuzzConfig", "FuzzReport", "random_episode", "shrink_episode", "run_fuzz"]

#: Scheduler pool the fuzzer samples from: the Muri variants (the code
#: under test) weighted heavily, plus representative baselines so the
#: executor-side invariants see non-Muri plans too.
_SCHEDULER_POOL: Tuple[str, ...] = (
    "muri-s", "muri-s", "muri-s",
    "muri-l", "muri-l",
    "srsf", "tiresias", "antman", "tetris",
)

#: Hetero episodes sample only the affinity-aware Muri variants: the
#: baselines group without the affinity-checked grouper, so their
#: mixed-pin groups would report findings about schedulers that never
#: claimed to honor affinity.
_HETERO_SCHEDULER_POOL: Tuple[str, ...] = (
    "muri-s", "muri-s", "muri-s", "muri-l", "muri-l",
)


@dataclass
class FuzzConfig:
    """Knobs of one fuzzing run.

    Attributes:
        episodes: Number of episodes to generate and run.
        seed: Master seed; fixes the whole episode sequence.
        max_jobs: Largest workload size generated.
        out_dir: Directory repro files are written to.
        invariants: Invariant names to arm (None = all).
        shrink: Shrink failing episodes before serializing.
        hetero: Generate heterogeneous episodes — typed machine
            layouts plus GPU-generation job affinities — exercising
            the ``placement_respects_affinity`` invariant.
    """

    episodes: int = 50
    seed: int = 0
    max_jobs: int = 12
    out_dir: Path = field(default_factory=lambda: Path("repro-failures"))
    invariants: Optional[List[str]] = None
    shrink: bool = True
    hetero: bool = False


@dataclass
class FuzzReport:
    """Outcome of one fuzzing run.

    Attributes:
        episodes_run: Episodes generated and replayed.
        failures: One ``(repro_path, violation)`` per failing episode.
    """

    episodes_run: int = 0
    failures: List[Tuple[Path, InvariantViolation]] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        """True when every episode ran clean."""
        return not self.failures


def random_episode(
    rng: random.Random,
    index: int,
    max_jobs: int = 12,
    hetero: bool = False,
) -> EpisodeSpec:
    """One random episode, fully determined by ``rng``'s state.

    Workloads are small and episodes short (tens of iterations per
    job), so a fuzz run of dozens of episodes stays in CI budget while
    still crossing scheduler ticks, completions, preemptions, group
    re-keying, backfill, and fault requeues.  With ``hetero`` the
    cluster gets an explicit per-machine GPU-generation layout and a
    random subset of jobs carries a generation affinity — hard pins
    only when the pinned pool can actually host the job (a pin larger
    than its pool would starve forever, a finding about the episode
    generator rather than the scheduler), soft preferences otherwise.
    """
    num_machines = rng.randint(1, 3)
    gpus_per_machine = rng.choice((2, 4, 8))
    total_gpus = num_machines * gpus_per_machine

    gpu_types: Optional[List[str]] = None
    pool_gpus: dict = {}
    if hetero:
        palette = rng.sample(
            ("k80", "p100", "v100", "a100"), min(2, num_machines)
        )
        # Every palette generation appears at least once; the tail is
        # uniform — the same shape make_type_mix produces.
        gpu_types = list(palette)
        gpu_types.extend(
            rng.choice(palette)
            for _ in range(num_machines - len(palette))
        )
        for name in gpu_types:
            pool_gpus[name] = pool_gpus.get(name, 0) + gpus_per_machine

    jobs: List[JobSpecData] = []
    for _ in range(rng.randint(1, max_jobs)):
        durations = [
            round(rng.uniform(0.0, 8.0), 3) if rng.random() < 0.8 else 0.0
            for _ in range(4)
        ]
        if not any(durations):
            durations[rng.randrange(4)] = round(rng.uniform(0.5, 8.0), 3)
        gpu_choices = [g for g in (1, 1, 1, 2, 4) if g <= total_gpus]
        num_gpus = rng.choice(gpu_choices)
        gpu_affinity = None
        affinity_mode = "pin"
        if hetero and rng.random() < 0.7:
            gpu_affinity = rng.choice(sorted(pool_gpus))
            if pool_gpus[gpu_affinity] < num_gpus or rng.random() < 0.3:
                affinity_mode = "prefer"
        jobs.append(JobSpecData(
            durations=tuple(durations),
            num_gpus=num_gpus,
            submit_time=(
                0.0 if rng.random() < 0.5
                else round(rng.uniform(0.0, 720.0), 1)
            ),
            num_iterations=rng.randint(1, 60),
            gpu_affinity=gpu_affinity,
            affinity_mode=affinity_mode,
        ))

    inject_faults = rng.random() < 0.4
    return EpisodeSpec(
        seed=index,
        scheduler=rng.choice(
            _HETERO_SCHEDULER_POOL if hetero else _SCHEDULER_POOL
        ),
        num_machines=num_machines,
        gpus_per_machine=gpus_per_machine,
        scheduling_interval=rng.choice((60.0, 180.0, 360.0)),
        restart_penalty=rng.choice((0.0, 10.0, 30.0)),
        backfill_on_completion=rng.random() < 0.5,
        reschedule_on_arrival=rng.random() < 0.3,
        fault_mtbf=rng.choice((120.0, 600.0, 3600.0)) if inject_faults else None,
        fault_loss=round(rng.uniform(0.0, 1.0), 2) if inject_faults else 0.0,
        fault_seed=rng.randrange(1 << 16),
        jobs=jobs,
        gpu_types=gpu_types,
    )


def _still_fails(episode: EpisodeSpec, invariant: str) -> Optional[InvariantViolation]:
    """Replay; return the violation if the same invariant still fires."""
    outcome = run_episode(episode)
    if outcome.violation is not None and outcome.violation.invariant == invariant:
        return outcome.violation
    return None


def shrink_episode(
    episode: EpisodeSpec,
    violation: InvariantViolation,
) -> Tuple[EpisodeSpec, InvariantViolation]:
    """Minimize a failing episode while preserving its violation.

    ddmin over the job list (drop halves, then quarters, ... then
    single jobs), followed by one-knob simplifications: drop the fault
    schedule, zero the restart penalty, disable the event-driven
    scheduler modes.  Every accepted reduction must reproduce a
    violation of the *same* invariant, so shrinking cannot wander onto
    a different bug.

    Returns:
        The smallest failing episode found and its violation.
    """
    invariant = violation.invariant

    # ddmin over jobs.
    chunk = max(1, len(episode.jobs) // 2)
    while chunk >= 1:
        shrunk_this_pass = False
        start = 0
        while start < len(episode.jobs) and len(episode.jobs) > 1:
            candidate_jobs = episode.jobs[:start] + episode.jobs[start + chunk:]
            if not candidate_jobs:
                start += chunk
                continue
            candidate = EpisodeSpec(**{
                **episode.__dict__, "jobs": candidate_jobs,
            })
            result = _still_fails(candidate, invariant)
            if result is not None:
                episode, violation = candidate, result
                shrunk_this_pass = True
            else:
                start += chunk
        if chunk == 1 and not shrunk_this_pass:
            break
        chunk = max(1, chunk // 2) if chunk > 1 else 0

    # One-knob simplifications.
    for knob in (
        {"fault_mtbf": None, "fault_loss": 0.0},
        {"restart_penalty": 0.0},
        {"backfill_on_completion": False},
        {"reschedule_on_arrival": False},
        {"scheduler_kwargs": {}},
    ):
        candidate = EpisodeSpec(**{**episode.__dict__, **knob})
        result = _still_fails(candidate, invariant)
        if result is not None:
            episode, violation = candidate, result
    return episode, violation


def run_fuzz(
    config: FuzzConfig,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run one fuzzing campaign; write a repro file per failure.

    Args:
        config: The campaign configuration.
        progress: Optional line sink (e.g. ``print``) for per-failure
            progress messages.

    Returns:
        The :class:`FuzzReport`; inspect :attr:`FuzzReport.ok`.
    """
    rng = random.Random(config.seed)
    report = FuzzReport()
    for index in range(config.episodes):
        episode = random_episode(
            rng, index, max_jobs=config.max_jobs, hetero=config.hetero
        )
        if config.invariants is not None:
            episode.invariants = list(config.invariants)
        outcome = run_episode(episode)
        report.episodes_run += 1
        if outcome.ok:
            continue
        violation = outcome.violation
        if progress is not None:
            progress(
                f"episode {index}: {violation.invariant} violated "
                f"({violation.message})"
            )
        if config.shrink:
            episode, violation = shrink_episode(episode, violation)
            if progress is not None:
                progress(
                    f"episode {index}: shrunk to {len(episode.jobs)} job(s)"
                )
        path = Path(config.out_dir) / (
            f"repro-seed{config.seed}-ep{index}-{violation.invariant}.json"
        )
        save_repro(path, episode, violation)
        report.failures.append((path, violation))
    return report
