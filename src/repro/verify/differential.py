"""Differential oracles: the optimized hot paths vs their slow twins.

PR 1 layered caches and sparse candidate graphs under Algorithm 1 to
hit the paper's "1,000 jobs in a few seconds" decision latency.  The
oracles here replay the *same* job set through the slow, obviously
correct implementations and compare:

* :func:`compare_dense_sparse` — the bounded-degree sparse build vs
  the dense O(n^2) edge build.  Feasibility (which jobs group, every
  group well-formed) must be identical in character, and the sparse
  path's total efficiency may regress only by a bounded fraction.
* :func:`compare_cold_cached` — a cold grouper vs one whose weight /
  ordering / decision caches are warm from an identical previous call.
  The group sets must be *identical*: caching must never change a
  decision.
* :func:`compare_parallel_serial` — process-pool per-bucket grouping
  vs the serial path on the same jobs.  Groups, stage offsets and
  total efficiency must be *bit-identical*: parallel dispatch is pure
  plumbing and must never change a decision.
* :func:`compare_pairs_exact` — blossom matching vs
  :func:`~repro.matching.exact.brute_force_matching` on the bucket's
  own edge weights.  Blossom is an exact algorithm, so the matched
  weights must agree to float tolerance.
* :func:`compare_groups_exact` — the multi-round heuristic vs
  :func:`~repro.matching.exact.exact_hypergraph_matching`.  The exact
  matcher optimizes over disjoint groups of exactly ``k`` jobs, so its
  total bounds the heuristic's full-size groups from above; the
  heuristic must reach a configurable fraction of it.

All mismatches raise :class:`~repro.verify.invariants.InvariantViolation`
with a ``differential.*`` invariant name, so fuzzing and tests handle
spec violations and optimization bugs uniformly.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.group import JobGroup
from repro.core.grouping import GroupingResult, MultiRoundGrouper
from repro.jobs.job import Job, JobSpec
from repro.jobs.resources import NUM_RESOURCES
from repro.jobs.stage import StageProfile
from repro.matching.blossom import matching_pairs
from repro.matching.exact import brute_force_matching, exact_hypergraph_matching
from repro.core.efficiency import efficiency_for_period
from repro.core.ordering import best_ordering
from repro.schedulers.base import Scheduler
from repro.verify.invariants import InvariantViolation, check_group_wellformed

__all__ = [
    "jobs_from_rows",
    "group_sets",
    "plan_signature",
    "compare_dense_sparse",
    "compare_cold_cached",
    "compare_parallel_serial",
    "compare_pairs_exact",
    "compare_groups_exact",
    "IncrementalOracle",
]


def jobs_from_rows(
    rows: Sequence[Sequence[float]],
    num_gpus: int = 1,
    num_iterations: int = 100,
) -> List[Job]:
    """Fresh single-bucket jobs from raw duration rows (test harness)."""
    return [
        Job(JobSpec(
            profile=StageProfile(tuple(row)),
            num_gpus=num_gpus,
            num_iterations=num_iterations,
        ))
        for row in rows
    ]


def group_sets(result: GroupingResult) -> Set[FrozenSet[int]]:
    """The membership structure of a grouping, offsets ignored."""
    return {
        frozenset(job.job_id for job in group.jobs)
        for group in result.groups
    }


def _check_result(result: GroupingResult, label: str) -> None:
    """Every produced group must satisfy the structural invariants."""
    seen: Set[int] = set()
    for group in result.groups:
        check_group_wellformed(group)
        for job in group.jobs:
            if job.job_id in seen:
                raise InvariantViolation(
                    "differential.feasibility",
                    f"{label} grouping placed job {job.job_id} in two "
                    f"groups",
                    details={"path": label, "job": job.job_id},
                )
            seen.add(job.job_id)


def plan_signature(
    plan: Sequence[JobGroup],
) -> Tuple[Tuple[Tuple[int, ...], Tuple[int, ...]], ...]:
    """Order-sensitive identity of a scheduling plan.

    Per proposed group, in plan order: the member job ids (in group
    order) and the chosen stage offsets.  Two plans with equal
    signatures start the same jobs together with the same interleaving
    phases, in the same priority order.
    """
    return tuple(
        (
            tuple(job.job_id for job in group.jobs),
            tuple(group.offsets),
        )
        for group in plan
    )


class IncrementalOracle(Scheduler):
    """Differentially checks a warm scheduler against cold re-solves.

    Wraps an (incrementally cached) scheduler; every :meth:`decide`
    call is replayed through a freshly built scheduler from
    ``factory`` — whose caches are necessarily cold — on the *same*
    inputs, and the two plans must agree exactly.  This is the service
    loop's guarantee that incremental regrouping (the per-bucket
    decision cache plus ``event_regroup``) never changes a decision,
    extended from single grouper calls
    (:func:`compare_cold_cached`) to a whole event stream.

    Args:
        inner: The scheduler under test; its decisions are the ones
            actually returned.
        factory: Builds an identically configured scheduler.  Called
            once per decision; the instance is used for one cold solve
            and discarded.

    Attributes:
        checks: Number of decisions verified so far.
    """

    def __init__(
        self,
        inner: Scheduler,
        factory: Callable[[], Scheduler],
    ) -> None:
        self.inner = inner
        self.factory = factory
        self.checks = 0
        self.name = inner.name
        self.duration_aware = inner.duration_aware
        self.preemptive = inner.preemptive

    def decide(
        self,
        now: float,
        jobs: Sequence[Job],
        running: Dict[FrozenSet[int], JobGroup],
        total_gpus: int,
        reason: str = "tick",
    ) -> List[JobGroup]:
        """Decide via the warm scheduler, then verify against a cold one.

        Raises:
            InvariantViolation: With invariant
                ``differential.incremental`` when the warm plan
                diverges from the cold re-solve.
        """
        cold = self.factory()
        cold_plan = cold.decide(now, jobs, running, total_gpus, reason)
        plan = self.inner.decide(now, jobs, running, total_gpus, reason)
        warm_sig = plan_signature(plan)
        cold_sig = plan_signature(cold_plan)
        if warm_sig != cold_sig:
            raise InvariantViolation(
                "differential.incremental",
                f"incremental decision at t={now:.0f}s ({reason}) "
                f"diverged from a cold full re-solve",
                details={
                    "now": now,
                    "reason": reason,
                    "warm": [list(members) for members, _ in warm_sig],
                    "cold": [list(members) for members, _ in cold_sig],
                },
            )
        self.checks += 1
        return plan

    def renegotiate(
        self,
        now: float,
        jobs: Sequence[Job],
        total_gpus: int,
    ) -> Dict[int, int]:
        """Forward elastic renegotiation to the wrapped scheduler.

        Renegotiation itself is not differentially checked — it is
        deterministic in its inputs and cache-free — but the resizes it
        triggers exercise every demand-keyed cache, which the next
        :meth:`decide` then verifies against a cold re-solve.
        """
        inner_renegotiate = getattr(self.inner, "renegotiate", None)
        if inner_renegotiate is None:
            return {}
        return inner_renegotiate(now, jobs, total_gpus)

    def notify_resize(self, job_id: int, old_gpus: int, new_gpus: int) -> None:
        """Forward resize invalidation to the wrapped scheduler."""
        self.inner.notify_resize(job_id, old_gpus, new_gpus)

    def reset_caches(self) -> None:
        """Forward cache resets to the wrapped scheduler."""
        reset = getattr(self.inner, "reset_caches", None)
        if reset is not None:
            reset()

    def close(self) -> None:
        """Release the wrapped scheduler's resources (worker pools)."""
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()


def compare_dense_sparse(
    jobs: Sequence[Job],
    capacity: Optional[int] = None,
    sparsify_threshold: int = 128,
    max_degree: int = 8,
    max_regression: float = 0.15,
    **grouper_kwargs,
) -> Tuple[GroupingResult, GroupingResult]:
    """Dense vs sparse grouping of one job set; raise on divergence.

    Below the threshold the two paths must be *bit-identical* (the
    sparse configuration simply never triggers); at or above it the
    sparse path must cover the same jobs with well-formed groups and
    lose at most ``max_regression`` of the dense total efficiency.

    Args:
        jobs: The job set (priority order).
        capacity: Cluster GPU capacity handed to both groupers.
        sparsify_threshold: Threshold for the sparse grouper.
        max_degree: Degree bound for the sparse candidate graph.
        max_regression: Allowed relative efficiency loss of the sparse
            path on supra-threshold inputs.
        **grouper_kwargs: Extra :class:`MultiRoundGrouper` settings
            applied to both sides.

    Returns:
        ``(dense_result, sparse_result)`` once all assertions hold.

    Raises:
        InvariantViolation: With invariant ``differential.feasibility``
            or ``differential.efficiency``.
    """
    dense = MultiRoundGrouper(
        sparsify_threshold=None, **grouper_kwargs
    ).group(jobs, capacity=capacity)
    sparse = MultiRoundGrouper(
        sparsify_threshold=sparsify_threshold,
        max_degree=max_degree,
        **grouper_kwargs,
    ).group(jobs, capacity=capacity)

    _check_result(dense, "dense")
    _check_result(sparse, "sparse")

    dense_jobs = {j for members in group_sets(dense) for j in members}
    sparse_jobs = {j for members in group_sets(sparse) for j in members}
    if dense_jobs != sparse_jobs:
        raise InvariantViolation(
            "differential.feasibility",
            "dense and sparse grouping covered different job sets",
            details={
                "dense_only": sorted(dense_jobs - sparse_jobs),
                "sparse_only": sorted(sparse_jobs - dense_jobs),
            },
        )

    below_threshold = len(jobs) < sparsify_threshold
    if below_threshold:
        if group_sets(dense) != group_sets(sparse):
            raise InvariantViolation(
                "differential.feasibility",
                f"below the sparsify threshold ({len(jobs)} jobs < "
                f"{sparsify_threshold}) the sparse path must match the "
                f"dense path exactly",
                details={
                    "dense": sorted(map(sorted, group_sets(dense))),
                    "sparse": sorted(map(sorted, group_sets(sparse))),
                },
            )
    floor = dense.total_efficiency * (1.0 - max_regression) - 1e-9
    if sparse.total_efficiency < floor:
        raise InvariantViolation(
            "differential.efficiency",
            f"sparse grouping efficiency {sparse.total_efficiency:.4f} "
            f"regressed more than {max_regression:.0%} below the dense "
            f"value {dense.total_efficiency:.4f}",
            details={
                "dense": dense.total_efficiency,
                "sparse": sparse.total_efficiency,
                "max_regression": max_regression,
            },
        )
    return dense, sparse


def compare_cold_cached(
    jobs: Sequence[Job],
    capacity: Optional[int] = None,
    cache_quantum: float = 0.0,
    **grouper_kwargs,
) -> Tuple[GroupingResult, GroupingResult]:
    """A cold grouper vs a cache-warm one; decisions must be identical.

    The warm side runs the same input twice through one grouper, so the
    second call is served from the weight / ordering / incremental
    decision caches (including quantized ``durations_key`` keys when
    ``cache_quantum > 0``).  Any difference between the cold result and
    the cache-served result means a cache key is too coarse or a cache
    is leaking stale decisions.

    Returns:
        ``(cold_result, cached_result)`` once equality holds.

    Raises:
        InvariantViolation: With invariant ``differential.cache``.
    """
    cold = MultiRoundGrouper(
        cache_quantum=cache_quantum, **grouper_kwargs
    ).group(jobs, capacity=capacity)

    warm_grouper = MultiRoundGrouper(
        cache_quantum=cache_quantum, **grouper_kwargs
    )
    warm_grouper.group(jobs, capacity=capacity)
    cached = warm_grouper.group(jobs, capacity=capacity)

    if group_sets(cold) != group_sets(cached):
        raise InvariantViolation(
            "differential.cache",
            "cache-served grouping disagrees with the cold path",
            details={
                "cold": sorted(map(sorted, group_sets(cold))),
                "cached": sorted(map(sorted, group_sets(cached))),
            },
        )
    offsets_of = lambda result: {
        frozenset(job.job_id for job in group.jobs): tuple(group.offsets)
        for group in result.groups
    }
    if offsets_of(cold) != offsets_of(cached):
        raise InvariantViolation(
            "differential.cache",
            "cache-served grouping changed a group's stage ordering",
            details={},
        )
    return cold, cached


def compare_parallel_serial(
    jobs: Sequence[Job],
    capacity: Optional[int] = None,
    workers: int = 2,
    **grouper_kwargs,
) -> Tuple[GroupingResult, GroupingResult]:
    """Serial vs process-pool grouping; plans must be bit-identical.

    Per-bucket matchings dispatched to worker processes depend only on
    their own bucket's payload, and results are merged in
    ``bucket_order``, so the parallel grouper must reproduce the serial
    plan exactly — same groups, same stage offsets, same total
    efficiency.  Any divergence means the worker payload dropped
    decision-relevant state (and would silently change schedules).

    Args:
        jobs: The job set (priority order), handed to both groupers.
        capacity: Cluster GPU capacity handed to both groupers.
        workers: Pool width of the parallel side (>= 2).
        **grouper_kwargs: Extra :class:`MultiRoundGrouper` settings
            applied to both sides.

    Returns:
        ``(serial_result, parallel_result)`` once equality holds.

    Raises:
        InvariantViolation: With invariant ``differential.parallel``.
    """
    serial = MultiRoundGrouper(workers=1, **grouper_kwargs).group(
        jobs, capacity=capacity
    )
    parallel_grouper = MultiRoundGrouper(workers=workers, **grouper_kwargs)
    try:
        parallel = parallel_grouper.group(jobs, capacity=capacity)
    finally:
        parallel_grouper.close()

    _check_result(serial, "serial")
    _check_result(parallel, "parallel")

    if group_sets(serial) != group_sets(parallel):
        raise InvariantViolation(
            "differential.parallel",
            f"parallel grouping (workers={workers}) formed different "
            f"groups than the serial path",
            details={
                "serial": sorted(map(sorted, group_sets(serial))),
                "parallel": sorted(map(sorted, group_sets(parallel))),
            },
        )
    offsets_of = lambda result: {
        frozenset(job.job_id for job in group.jobs): tuple(group.offsets)
        for group in result.groups
    }
    if offsets_of(serial) != offsets_of(parallel):
        raise InvariantViolation(
            "differential.parallel",
            "parallel grouping changed a group's stage ordering",
            details={},
        )
    if abs(serial.total_efficiency - parallel.total_efficiency) > 0.0:
        raise InvariantViolation(
            "differential.parallel",
            f"parallel total efficiency {parallel.total_efficiency!r} "
            f"differs from serial {serial.total_efficiency!r}",
            details={
                "serial": serial.total_efficiency,
                "parallel": parallel.total_efficiency,
            },
        )
    return serial, parallel


def compare_pairs_exact(
    edges: Sequence[Tuple[int, int, float]],
    tolerance: float = 1e-9,
) -> float:
    """Blossom vs brute force on one edge list; weights must agree.

    Returns:
        The agreed maximum matching weight.

    Raises:
        InvariantViolation: With invariant ``differential.matching``.
    """
    weight_of = {}
    for u, v, w in edges:
        key = (min(u, v), max(u, v))
        if key not in weight_of or w > weight_of[key]:
            weight_of[key] = w
    blossom_weight = sum(
        weight_of[(min(u, v), max(u, v))] for u, v in matching_pairs(edges)
    )
    _pairs, exact_weight = brute_force_matching(edges)
    if abs(blossom_weight - exact_weight) > tolerance:
        raise InvariantViolation(
            "differential.matching",
            f"blossom matched weight {blossom_weight:.9f} differs from "
            f"the brute-force optimum {exact_weight:.9f}",
            details={"blossom": blossom_weight, "exact": exact_weight},
        )
    return exact_weight


def compare_groups_exact(
    jobs: Sequence[Job],
    group_size: int = NUM_RESOURCES,
    num_resources: int = NUM_RESOURCES,
    min_fraction: float = 0.8,
    **grouper_kwargs,
) -> Tuple[float, float]:
    """Multi-round heuristic vs exact hypergraph matching (small n).

    The exact matcher selects disjoint groups of exactly ``group_size``
    jobs maximizing total gamma — the NP-hard objective the heuristic
    approximates.  Two assertions:

    * soundness: the heuristic's full-size groups cannot beat the
      optimum;
    * quality: they reach at least ``min_fraction`` of it whenever the
      optimum is positive (the paper reports the heuristic within ~4%
      of optimal, Fig. 13; the default bound is deliberately loose).

    Returns:
        ``(heuristic_total, exact_total)`` over full-size groups.

    Raises:
        InvariantViolation: With invariant ``differential.optimality``.
        ValueError: When ``jobs`` is too large for the exact matcher.
    """
    heuristic = MultiRoundGrouper(
        max_group_size=group_size,
        num_resources=num_resources,
        **grouper_kwargs,
    ).group(jobs)
    heuristic_total = sum(
        group.believed_efficiency
        for group in heuristic.groups
        if group.size == group_size
    )

    profiles = [job.profile for job in jobs]

    def weight(indices: Tuple[int, ...]) -> float:
        rows = tuple(profiles[i] for i in indices)
        _offsets, period = best_ordering(rows, num_resources)
        return efficiency_for_period(rows, period, num_resources)

    _groups, exact_total = exact_hypergraph_matching(
        len(jobs), group_size, weight
    )

    if heuristic_total > exact_total + 1e-6:
        raise InvariantViolation(
            "differential.optimality",
            f"heuristic full-size group efficiency {heuristic_total:.4f} "
            f"exceeds the exact optimum {exact_total:.4f} — the exact "
            f"oracle or the believed efficiencies are wrong",
            details={"heuristic": heuristic_total, "exact": exact_total},
        )
    if exact_total > 0 and heuristic_total < min_fraction * exact_total - 1e-9:
        raise InvariantViolation(
            "differential.optimality",
            f"heuristic reached only {heuristic_total:.4f} of the exact "
            f"optimum {exact_total:.4f} "
            f"(< {min_fraction:.0%})",
            details={
                "heuristic": heuristic_total,
                "exact": exact_total,
                "min_fraction": min_fraction,
            },
        )
    return heuristic_total, exact_total
