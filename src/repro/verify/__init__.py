"""Runtime verification: the paper's model as executable checks.

Three layers (see ``docs/verification.md``):

* :mod:`repro.verify.invariants` — an :class:`InvariantChecker` that
  attaches to the simulator/scheduler stack through the ordinary
  ``tracer=`` parameter and raises structured
  :class:`InvariantViolation` s (with decision provenance) the moment
  a run breaks the model;
* :mod:`repro.verify.reference` + :mod:`repro.verify.differential` —
  naive scalar re-implementations of Eq. 3/4 and exact matchers used
  as differential oracles against the optimized hot paths;
  :mod:`repro.verify.fleet` extends the pattern to the sharded fleet
  (:func:`compare_fleet_serial`: shard results vs serial VC replays);
* :mod:`repro.verify.fuzz` + :mod:`repro.verify.repro_file` — seeded
  episode fuzzing (``repro fuzz``) whose failures shrink into
  replayable JSON repro files.
"""

from repro.verify.differential import (
    IncrementalOracle,
    compare_cold_cached,
    compare_dense_sparse,
    compare_groups_exact,
    compare_pairs_exact,
    compare_parallel_serial,
    plan_signature,
)
from repro.verify.elastic import compare_flat_identity, run_elastic_oracle
from repro.verify.fleet import compare_fleet_serial
from repro.verify.hetero import (
    compare_homogeneous_identity,
    compare_uniform_scaling_identity,
)
from repro.verify.fuzz import (
    FuzzConfig,
    FuzzReport,
    random_episode,
    run_fuzz,
    shrink_episode,
)
from repro.verify.invariants import (
    INVARIANT_CATALOG,
    InvariantChecker,
    InvariantViolation,
    check_group_wellformed,
)
from repro.verify.reference import (
    reference_best_period,
    reference_efficiency,
    reference_period,
    reference_slot_durations,
)
from repro.verify.repro_file import (
    EpisodeOutcome,
    EpisodeSpec,
    JobSpecData,
    load_repro,
    run_episode,
    save_repro,
)

__all__ = [
    "INVARIANT_CATALOG",
    "InvariantChecker",
    "InvariantViolation",
    "check_group_wellformed",
    "reference_slot_durations",
    "reference_period",
    "reference_efficiency",
    "reference_best_period",
    "compare_dense_sparse",
    "compare_cold_cached",
    "compare_parallel_serial",
    "compare_fleet_serial",
    "compare_pairs_exact",
    "compare_groups_exact",
    "compare_flat_identity",
    "compare_homogeneous_identity",
    "compare_uniform_scaling_identity",
    "run_elastic_oracle",
    "IncrementalOracle",
    "plan_signature",
    "EpisodeSpec",
    "EpisodeOutcome",
    "JobSpecData",
    "run_episode",
    "save_repro",
    "load_repro",
    "FuzzConfig",
    "FuzzReport",
    "random_episode",
    "shrink_episode",
    "run_fuzz",
]
