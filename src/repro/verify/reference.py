"""The paper's model as naive executable code (the differential spec).

Every function here is a deliberately simple, scalar re-implementation
of an equation from the paper, written straight from the text with no
caching, vectorization, or shared code with the optimized paths in
``repro.core``:

* :func:`reference_slot_durations` / :func:`reference_period` — Eq. 3
  generalized to an arbitrary offset assignment (the barrier model of
  Fig. 6): slot ``s`` runs job ``i``'s stage on resource
  ``(o_i + s) mod k`` and lasts as long as its slowest stage.
* :func:`reference_efficiency` — Eq. 4: one minus the mean per-resource
  idle fraction over the period.
* :func:`reference_best_period` — the exhaustive ordering search of
  section 4.2 (first offset pinned to zero, offsets distinct).

The invariant checker and the differential oracles compare the
optimized implementations (``repro.core.ordering``'s cached numpy
kernels, the grouper's weight caches) against these functions; any
divergence is a bug in the optimization, not in the spec.
"""

from __future__ import annotations

from itertools import permutations
from typing import List, Sequence, Tuple

__all__ = [
    "reference_slot_durations",
    "reference_period",
    "reference_efficiency",
    "reference_best_period",
]

#: A per-job duration row: seconds on each of the k resources.
DurationRow = Sequence[float]


def reference_slot_durations(
    rows: Sequence[DurationRow],
    offsets: Sequence[int],
    num_resources: int,
) -> List[float]:
    """Per-slot durations of Eq. 3, scalar loops only.

    Args:
        rows: One duration row per job (``rows[i][r]`` = job ``i``'s
            seconds on resource ``r``).
        offsets: One phase offset per job, distinct modulo
            ``num_resources``.
        num_resources: Number of resource types ``k``.

    Returns:
        ``k`` slot durations; slot ``s`` lasts
        ``max_i rows[i][(offsets[i] + s) mod k]``.

    Raises:
        ValueError: On malformed input (no jobs, mismatched lengths,
            colliding offsets) — the same preconditions the paper's
            model assumes.
    """
    if not rows:
        raise ValueError("a group needs at least one job")
    if len(offsets) != len(rows):
        raise ValueError("need one offset per job")
    if len({o % num_resources for o in offsets}) != len(offsets):
        raise ValueError(f"offsets must be distinct modulo k, got {offsets}")
    slots = []
    for s in range(num_resources):
        slowest = 0.0
        for row, offset in zip(rows, offsets):
            duration = row[(offset + s) % num_resources]
            if duration > slowest:
                slowest = duration
        slots.append(slowest)
    return slots


def reference_period(
    rows: Sequence[DurationRow],
    offsets: Sequence[int],
    num_resources: int,
) -> float:
    """Eq. 3: the interleaved iteration period ``T`` under ``offsets``."""
    return sum(reference_slot_durations(rows, offsets, num_resources))


def reference_efficiency(
    rows: Sequence[DurationRow],
    period: float,
    num_resources: int,
) -> float:
    """Eq. 4: interleaving efficiency gamma for a known period ``T``.

    ``gamma = 1 - (1/k) * sum_r (T - busy_r) / T`` where ``busy_r`` is
    the summed stage time of all member jobs on resource ``r``.
    """
    if period <= 0:
        raise ValueError("period must be > 0")
    idle = 0.0
    for resource in range(num_resources):
        busy = 0.0
        for row in rows:
            busy += row[resource]
        idle += (period - busy) / period
    return 1.0 - idle / num_resources


def reference_best_period(
    rows: Sequence[DurationRow],
    num_resources: int,
) -> Tuple[Tuple[int, ...], float]:
    """Exhaustive ordering search (section 4.2), scalar enumeration.

    Pins the first job's offset to zero (a rotation of all offsets
    leaves every slot unchanged) and tries every assignment of distinct
    offsets to the remaining jobs, exactly like
    :func:`repro.core.ordering.enumerate_offset_assignments` — but
    evaluating each candidate with :func:`reference_period` instead of
    the vectorized batch kernel.

    Returns:
        ``(best_offsets, best_period)``; ties keep the first
        enumeration order, matching the optimized implementation.
    """
    if not rows:
        raise ValueError("a group needs at least one job")
    if len(rows) > num_resources:
        raise ValueError(
            f"cannot interleave {len(rows)} jobs over {num_resources} "
            "resources without same-slot contention"
        )
    best_offsets: Tuple[int, ...] = ()
    best = float("inf")
    for rest in permutations(range(1, num_resources), len(rows) - 1):
        offsets = (0,) + rest
        period = reference_period(rows, offsets, num_resources)
        if period < best:
            best = period
            best_offsets = offsets
    return best_offsets, best
