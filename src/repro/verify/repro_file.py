"""Replayable fuzz episodes and their on-disk repro files.

An :class:`EpisodeSpec` is a complete, self-contained description of
one short simulation: cluster shape, scheduler, workload (explicit
per-job duration rows — no model-zoo dependency), fault schedule, and
the invariants to arm.  The simulator is deterministic given that
description, so a spec that violated an invariant once violates it
every time: :func:`run_episode` replays it bit-for-bit.

A failing episode is serialized with :func:`save_repro` into a small
JSON *repro file* carrying both the shrunken episode and the structured
violation (``repro fuzz`` writes these; ``repro fuzz --replay`` and the
test suite read them back with :func:`load_repro`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.schedulers.registry import make_scheduler
from repro.sim.faults import FaultInjector
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import ClusterSimulator, SimulationError
from repro.verify.invariants import InvariantChecker, InvariantViolation

__all__ = [
    "JobSpecData",
    "EpisodeSpec",
    "EpisodeOutcome",
    "run_episode",
    "save_repro",
    "load_repro",
    "REPRO_FORMAT_VERSION",
]

#: Version stamp of the repro-file JSON layout.
REPRO_FORMAT_VERSION = 1


@dataclass(frozen=True)
class JobSpecData:
    """One job of an episode, as plain replayable data.

    Attributes:
        durations: Per-resource stage durations (seconds).
        num_gpus: GPUs the job requests.
        submit_time: Arrival time in seconds.
        num_iterations: Training iterations to run.
        gpu_affinity: GPU generation the job is tied to (None = any).
        affinity_mode: ``"pin"`` (hard) or ``"prefer"`` (soft).
    """

    durations: Tuple[float, ...]
    num_gpus: int = 1
    submit_time: float = 0.0
    num_iterations: int = 10
    gpu_affinity: Optional[str] = None
    affinity_mode: str = "pin"

    def to_spec(self, job_id: int) -> JobSpec:
        """Materialize as a :class:`~repro.jobs.job.JobSpec`."""
        return JobSpec(
            profile=StageProfile(tuple(self.durations)),
            num_gpus=self.num_gpus,
            submit_time=self.submit_time,
            num_iterations=self.num_iterations,
            job_id=job_id,
            name=f"fuzz-{job_id}",
            gpu_affinity=self.gpu_affinity,
            affinity_mode=self.affinity_mode,
        )


@dataclass
class EpisodeSpec:
    """Everything needed to replay one fuzz episode deterministically.

    Attributes:
        seed: The generator seed this episode came from (bookkeeping).
        scheduler: Registry name for
            :func:`~repro.schedulers.make_scheduler`.
        scheduler_kwargs: Extra scheduler constructor arguments.
        num_machines: Cluster machines.
        gpus_per_machine: GPUs per machine.
        scheduling_interval: Seconds between scheduler ticks.
        restart_penalty: Group (re)start overhead in seconds.
        backfill_on_completion: Re-invoke the scheduler on completions.
        reschedule_on_arrival: Re-invoke the scheduler on arrivals.
        fault_mtbf: Mean seconds between faults (None = no faults).
        fault_loss: Fraction of progress lost per fault.
        fault_seed: Fault RNG seed.
        jobs: The workload, one :class:`JobSpecData` per job; job ids
            are assigned 0..n-1 in list order on replay.
        invariants: Invariant names to arm (None = all).
        gpu_types: Explicit per-machine GPU generation layout (one
            catalogue name per machine, length ``num_machines``); None
            replays on an untyped homogeneous cluster.
    """

    seed: int = 0
    scheduler: str = "muri-s"
    scheduler_kwargs: Dict[str, Any] = field(default_factory=dict)
    num_machines: int = 2
    gpus_per_machine: int = 4
    scheduling_interval: float = 360.0
    restart_penalty: float = 30.0
    backfill_on_completion: bool = False
    reschedule_on_arrival: bool = False
    fault_mtbf: Optional[float] = None
    fault_loss: float = 0.0
    fault_seed: int = 0
    jobs: List[JobSpecData] = field(default_factory=list)
    invariants: Optional[List[str]] = None
    gpu_types: Optional[List[str]] = None

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable copy."""
        data = asdict(self)
        data["jobs"] = [asdict(job) for job in self.jobs]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EpisodeSpec":
        """Rebuild an episode parsed from JSON."""
        payload = dict(data)
        payload["jobs"] = [
            JobSpecData(
                durations=tuple(job["durations"]),
                num_gpus=job.get("num_gpus", 1),
                submit_time=job.get("submit_time", 0.0),
                num_iterations=job.get("num_iterations", 10),
                gpu_affinity=job.get("gpu_affinity"),
                affinity_mode=job.get("affinity_mode", "pin"),
            )
            for job in payload.get("jobs", ())
        ]
        return cls(**payload)

    def job_specs(self) -> List[JobSpec]:
        """The workload as fresh :class:`~repro.jobs.job.JobSpec` s."""
        return [job.to_spec(index) for index, job in enumerate(self.jobs)]


@dataclass
class EpisodeOutcome:
    """What one episode replay produced.

    Attributes:
        violation: The first invariant violation, or None on a clean
            run.  A :class:`~repro.sim.simulator.SimulationError` is
            reported as a synthetic ``simulation_error`` violation —
            a stuck or budget-exhausted run is a finding too.
        result: The simulation result on a clean run, else None.
        checker: The armed checker (counters, provenance, violations).
    """

    violation: Optional[InvariantViolation]
    result: Optional[SimulationResult]
    checker: InvariantChecker

    @property
    def ok(self) -> bool:
        """True when the episode completed without any violation."""
        return self.violation is None


def run_episode(
    episode: EpisodeSpec,
    store_events: bool = False,
) -> EpisodeOutcome:
    """Replay one episode with its invariants armed.

    Args:
        episode: The episode to run.
        store_events: Keep the full event log on the checker (slower;
            useful when debugging a repro file).

    Returns:
        The outcome; never raises on invariant violations — they are
        captured so fuzzing and replay handle them uniformly.
    """
    checker = InvariantChecker(
        invariants=episode.invariants,
        store_events=store_events,
    )
    # make_scheduler attaches the checker to the scheduler (and its
    # grouper) for every registry name, not just the Muri variants.
    scheduler = make_scheduler(
        episode.scheduler, tracer=checker, **episode.scheduler_kwargs
    )
    fault_injector = None
    if episode.fault_mtbf is not None:
        fault_injector = FaultInjector(
            mean_time_between_faults=episode.fault_mtbf,
            seed=episode.fault_seed,
            progress_loss=episode.fault_loss,
        )
    machine_types = None
    if episode.gpu_types is not None:
        from repro.hetero.types import get_gpu_type

        machine_types = [get_gpu_type(name) for name in episode.gpu_types]
    simulator = ClusterSimulator(
        scheduler,
        cluster=Cluster(
            episode.num_machines,
            episode.gpus_per_machine,
            machine_types=machine_types,
        ),
        scheduling_interval=episode.scheduling_interval,
        restart_penalty=episode.restart_penalty,
        fault_injector=fault_injector,
        backfill_on_completion=episode.backfill_on_completion,
        reschedule_on_arrival=episode.reschedule_on_arrival,
        tracer=checker,
    )
    try:
        result = simulator.run(episode.job_specs(), trace_name="fuzz")
    except InvariantViolation as violation:
        return EpisodeOutcome(violation, None, checker)
    except SimulationError as error:
        violation = InvariantViolation(
            "simulation_error",
            str(error),
            details={"exception": type(error).__name__},
        )
        return EpisodeOutcome(violation, None, checker)
    return EpisodeOutcome(None, result, checker)


def save_repro(
    path: Path,
    episode: EpisodeSpec,
    violation: InvariantViolation,
) -> None:
    """Write one failing episode and its violation as a repro file."""
    payload = {
        "version": REPRO_FORMAT_VERSION,
        "episode": episode.to_dict(),
        "violation": violation.to_dict(),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_repro(path: Path) -> Tuple[EpisodeSpec, Dict[str, Any]]:
    """Read a repro file back; returns the episode and the recorded
    violation dict.

    Raises:
        ValueError: On an unknown repro-file version.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != REPRO_FORMAT_VERSION:
        raise ValueError(
            f"unsupported repro file version {version!r} "
            f"(expected {REPRO_FORMAT_VERSION})"
        )
    return (
        EpisodeSpec.from_dict(payload["episode"]),
        payload.get("violation", {}),
    )
