"""Discrete-event cluster simulator.

Drives a scheduler against a workload, executing interleaving groups
with the paper's semantics:

* a group's members advance in lockstep, one iteration per interleaved
  period ``T`` (Eq. 3 under the group's chosen ordering), inflated by
  the contention model;
* every newly (re)started group pays a restart penalty before making
  progress — the preemption/restart overhead that motivates the
  paper's six-minute scheduling interval;
* when a member finishes, the group keeps running with the remaining
  members at their original phase offsets (the period usually drops);
* uncoordinated groups (AntMan) pay an extra sharing penalty because
  their stages collide instead of phase-shifting;
* the scheduler is re-invoked on a fixed interval and on completions,
  mirroring "periodically invoked on events like job arrival and job
  completion" (section 3).

The simulator is deterministic given the workload and scheduler.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Allocation, Cluster
from repro.cluster.placement import DescendingPlacer
from repro.core.group import JobGroup
from repro.core.ordering import group_iteration_time
from repro.jobs.job import Job, JobSpec, JobStatus
from repro.jobs.resources import NUM_RESOURCES
from repro.observe.events import EventCategory
from repro.observe.provenance import OutcomeRecord
from repro.observe.tracer import Tracer, maybe_span
from repro.schedulers.base import Scheduler, group_key
from repro.sim.contention import DEFAULT_CONTENTION, ContentionModel
from repro.sim.decisions import Decision, DecisionLog
from repro.sim.engine import Event, EventKind, EventQueue
from repro.sim.faults import FaultInjector
from repro.sim.metrics import SimulationResult, TimePoint
from repro.sim.monitor import WorkerMonitor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hetero.types import TypeScaling

__all__ = ["ClusterSimulator", "SimulationError", "SimulationState"]

_EPS = 1e-9
#: Iterations below this count as "finished" (guards float drift).
_ITER_EPS = 1e-6


class SimulationError(RuntimeError):
    """The simulation cannot make progress or exceeded its step budget."""


@dataclass
class _RunningGroup:
    """Executor-side state of one placed group."""

    group: JobGroup
    allocation: Allocation
    active: List[Job]
    offsets: Dict[int, int]
    penalty_remaining: float = 0.0
    fault_deadlines: Dict[int, float] = field(default_factory=dict)
    #: Speed factor of the landing GPU generation relative to the
    #: members' profile baseline (``landing_speed_scaling``).  1.0 —
    #: the default, and always when the scaling is off — leaves the
    #: period arithmetic untouched.
    speedup: float = 1.0
    #: GPU slots held per generation name; None on untyped clusters,
    #: where per-generation occupancy is not tracked.
    slots_by_type: Optional[Dict[str, int]] = None

    def period(self, contention: ContentionModel, uncoordinated_penalty: float) -> float:
        """Current true iteration period of the active members."""
        profiles = tuple(job.profile for job in self.active)
        offsets = tuple(self.offsets[job.job_id] for job in self.active)
        base = group_iteration_time(profiles, offsets, self.group.num_resources)
        factor = contention.factor(len(self.active), self.allocation.spans_machines)
        if not self.group.coordinated and len(self.active) > 1:
            factor *= uncoordinated_penalty
        if self.speedup != 1.0:
            factor /= self.speedup
        return base * factor

    def busy_time(self, resource: int) -> float:
        """Seconds per period the active members keep ``resource`` busy."""
        return sum(job.profile.durations[resource] for job in self.active)

    def time_to_next_event(
        self, contention: ContentionModel, uncoordinated_penalty: float
    ) -> float:
        """Seconds until this group's earliest completion or fault."""
        period = self.period(contention, uncoordinated_penalty)
        horizon = min(
            job.remaining_iterations * period for job in self.active
        )
        for job in self.active:
            deadline = self.fault_deadlines.get(job.job_id)
            if deadline is not None:
                horizon = min(horizon, deadline)
        return self.penalty_remaining + horizon


@dataclass
class SimulationState:
    """Live state of an in-progress simulation.

    Produced by :meth:`ClusterSimulator.begin`, advanced by
    :meth:`ClusterSimulator.step`, and closed by
    :meth:`ClusterSimulator.finalize`.  ``run()`` is exactly this
    sequence; long-lived drivers (``repro.service``) hold the state
    open and feed it new jobs with :meth:`ClusterSimulator.inject`.

    Attributes:
        jobs: Every job the simulation knows, by id.
        pending: Arrived jobs not currently running.
        running: Executing groups keyed by member-id frozenset.
        events: The external event queue (arrivals, ticks, faults).
        result: The result being accumulated.
        now: Current simulation time.
        steps: Simulator iterations executed so far.
        step_budget: Safety valve on iterations.
        need_reschedule: A scheduler invocation is owed next step.
        reschedule_reason: The ``reason`` label that invocation will
            carry ("completion" unless a driver overrides it).
        tick_scheduled: A TICK event has been queued at least once.
        started_wall: ``time.monotonic()`` at :meth:`begin`.
        finalized: :meth:`finalize` has run.
    """

    jobs: Dict[int, Job]
    pending: Dict[int, Job]
    running: Dict[FrozenSet[int], _RunningGroup]
    events: EventQueue
    result: SimulationResult
    trace_name: str
    now: float = 0.0
    steps: int = 0
    step_budget: int = 0
    need_reschedule: bool = False
    reschedule_reason: str = "completion"
    tick_scheduled: bool = False
    started_wall: float = 0.0
    finalized: bool = False
    active: int = 0

    @property
    def unfinished(self) -> int:
        """Jobs not yet in a terminal state (finished or cancelled).

        Maintained incrementally (``active``) so the run loops and the
        service's ``is_done`` poll stay O(1) per step — a recount over
        ``jobs`` would make long online streams quadratic.
        """
        return self.active


class ClusterSimulator:
    """Runs one scheduler over one workload on a simulated cluster.

    Args:
        scheduler: The policy under test.
        cluster: The cluster; defaults to the paper's 8 x 8 = 64 GPUs.
        scheduling_interval: Seconds between scheduler invocations (the
            paper uses six minutes).
        restart_penalty: Seconds a newly started or restarted group
            needs before making progress (process restore, CUDA
            context, data pipeline warm-up).
        contention: Group-size contention model.
        uncoordinated_penalty: Extra period factor for uncoordinated
            (AntMan-style) sharing groups.
        fault_injector: Optional fault model; faulted jobs are requeued
            with their progress (minus checkpoint loss) intact.
        backfill_on_completion: When False (the paper-faithful
            default), completions free GPUs but new jobs start only at
            the next scheduling tick, as in the prototype's six-minute
            interval.  When True, every completion immediately
            re-invokes the scheduler (an idealized event-driven mode).
        reschedule_on_arrival: When True, a job arrival immediately
            re-invokes the scheduler instead of waiting for the next
            tick (section 3 mentions arrival events; the prototype's
            fixed interval is the default).
        arrival_reason: The ``reason`` label arrival-triggered
            reschedules pass to :meth:`Scheduler.decide`.  The default
            ("completion") preserves the historical batch behaviour;
            the online service passes "arrival" so event-aware
            schedulers regroup instead of serving a stale backfill
            cache.
        monitor: Optional worker monitor (Fig. 3) fed machine-level
            utilization samples, job progress reports, and fault
            notifications during the run.
        placer: GPU placement policy; defaults to the paper's
            descending / best-fit consolidation.
        landing_speed_scaling: Optional per-model × per-generation
            speed factors (:class:`~repro.hetero.TypeScaling`).  When
            set, a placed group whose profiles are *baseline* —
            soft-preference and unaffine jobs; hard pins were
            pre-scaled by ``pin_jobs`` — runs at the speed of the
            slowest generation its allocation touches: the period
            divides by ``factor(lead model, generation)``.  None (the
            default) keeps the pre-hetero arithmetic bit-identical.
        decision_log: Optional audit log recording every scheduler
            invocation (kept/started/preempted/unplaced groups).
        tracer: Optional :class:`~repro.observe.Tracer`.  When enabled,
            the run emits job lifecycle events (arrival, start,
            preemption, fault, finish), per-invocation scheduling
            decisions, and group placement outcomes, and files
            per-job :class:`~repro.observe.OutcomeRecord` provenance.
            None (the default) costs the hot paths nothing.
        max_steps: Safety valve on simulator iterations.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        cluster: Optional[Cluster] = None,
        scheduling_interval: float = 360.0,
        restart_penalty: float = 30.0,
        contention: ContentionModel = DEFAULT_CONTENTION,
        uncoordinated_penalty: float = 1.18,
        fault_injector: Optional[FaultInjector] = None,
        backfill_on_completion: bool = False,
        reschedule_on_arrival: bool = False,
        arrival_reason: str = "completion",
        monitor: Optional["WorkerMonitor"] = None,
        placer: Optional[DescendingPlacer] = None,
        landing_speed_scaling: Optional["TypeScaling"] = None,
        decision_log: Optional[DecisionLog] = None,
        tracer: Optional[Tracer] = None,
        max_steps: Optional[int] = None,
    ) -> None:
        if scheduling_interval <= 0:
            raise ValueError("scheduling_interval must be > 0")
        if restart_penalty < 0:
            raise ValueError("restart_penalty must be >= 0")
        if uncoordinated_penalty < 1.0:
            raise ValueError("uncoordinated_penalty must be >= 1")
        self.scheduler = scheduler
        self.cluster = cluster if cluster is not None else Cluster(8, 8)
        self.scheduling_interval = scheduling_interval
        self.restart_penalty = restart_penalty
        self.contention = contention
        self.uncoordinated_penalty = uncoordinated_penalty
        self.fault_injector = fault_injector or FaultInjector()
        self.backfill_on_completion = backfill_on_completion
        self.reschedule_on_arrival = reschedule_on_arrival
        self.arrival_reason = arrival_reason
        self.monitor = monitor
        self.decision_log = decision_log
        self.tracer = tracer
        self.max_steps = max_steps
        self.placer = placer if placer is not None else DescendingPlacer()
        self.landing_speed_scaling = landing_speed_scaling
        # Typed clusters additionally get per-generation occupancy
        # accounting (SimulationResult.gpu_seconds_by_type).
        self._track_gpu_types = bool(self.cluster.gpu_type_names())

    # -- public API ------------------------------------------------------------

    def run(self, specs: Sequence[JobSpec], trace_name: str = "workload") -> SimulationResult:
        """Simulate the workload to completion.

        Equivalent to :meth:`begin` + :meth:`step` until every job is
        terminal + :meth:`finalize`.

        Raises:
            SimulationError: If a job can never fit the cluster or the
                step budget is exhausted.
        """
        state = self.begin(specs, trace_name)
        while state.unfinished:
            self.step(state)
        return self.finalize(state)

    def begin(
        self,
        specs: Sequence[JobSpec],
        trace_name: str = "workload",
        allow_empty: bool = False,
    ) -> SimulationState:
        """Open a simulation over ``specs`` without driving it.

        Args:
            specs: Initial workload; more jobs may be added later via
                :meth:`inject`.
            trace_name: Workload label for the result.
            allow_empty: Permit starting with no jobs (the online
                service begins idle and injects arrivals as clients
                submit); :meth:`run` keeps rejecting empty workloads.

        Raises:
            SimulationError: If a job can never fit the cluster, or
                ``specs`` is empty and ``allow_empty`` is False.
        """
        started_wall = _time.monotonic()
        total_gpus = self.cluster.total_gpus
        for spec in specs:
            if spec.num_gpus > total_gpus:
                raise SimulationError(
                    f"{spec.name} needs {spec.num_gpus} GPUs but the "
                    f"cluster has {total_gpus}"
                )
        if not specs and not allow_empty:
            raise SimulationError("workload is empty")

        jobs: Dict[int, Job] = {spec.job_id: Job(spec) for spec in specs}
        result = SimulationResult(
            scheduler_name=self.scheduler.name,
            trace_name=trace_name,
            submit_times={spec.job_id: spec.submit_time for spec in specs},
        )

        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                EventCategory.SIM,
                "sim.run.start",
                0.0,
                trace=trace_name,
                scheduler=self.scheduler.name,
                jobs=len(specs),
                gpus=total_gpus,
            )

        events = EventQueue(tracer=tracer)
        for spec in specs:
            events.push(Event(spec.submit_time, EventKind.ARRIVAL, spec.job_id))
        state = SimulationState(
            jobs=jobs,
            pending={},
            running={},
            events=events,
            result=result,
            trace_name=trace_name,
            step_budget=self.max_steps or (500 * len(specs) + 100_000),
            started_wall=started_wall,
            active=len(jobs),
        )
        if specs:
            first_arrival = min(spec.submit_time for spec in specs)
            events.push(Event(first_arrival, EventKind.TICK))
            state.tick_scheduled = True
        return state

    def inject(self, state: SimulationState, spec: JobSpec) -> Job:
        """Add one job to an open simulation.

        The arrival fires at ``max(state.now, spec.submit_time)``
        (virtual time cannot run backwards).  The first injected job of
        an initially empty simulation also anchors the scheduling-tick
        cadence at its arrival time, mirroring :meth:`begin`.

        Raises:
            SimulationError: If the job cannot fit the cluster, its id
                is already known, or the state is finalized.
        """
        if state.finalized:
            raise SimulationError("cannot inject into a finalized simulation")
        if spec.num_gpus > self.cluster.total_gpus:
            raise SimulationError(
                f"{spec.name} needs {spec.num_gpus} GPUs but the "
                f"cluster has {self.cluster.total_gpus}"
            )
        if spec.job_id in state.jobs:
            raise SimulationError(f"job id {spec.job_id} already submitted")
        job = Job(spec)
        state.jobs[spec.job_id] = job
        state.active += 1
        state.result.submit_times[spec.job_id] = spec.submit_time
        arrival = max(state.now, spec.submit_time)
        state.events.push(Event(arrival, EventKind.ARRIVAL, spec.job_id))
        if not state.tick_scheduled:
            state.events.push(Event(arrival, EventKind.TICK))
            state.tick_scheduled = True
        state.step_budget += 500
        return job

    def cancel(self, state: SimulationState, job_id: int) -> bool:
        """Remove a job from an open simulation.

        A pending (queued or not-yet-arrived) job is dropped directly;
        a running job's group is stopped so its partners requeue and a
        reschedule is owed.  Cancelled jobs end in
        :attr:`JobStatus.FAILED` and never contribute a JCT.

        Returns:
            True when the job existed and was cancelled; False for
            unknown ids and jobs already in a terminal state.
        """
        job = state.jobs.get(job_id)
        if job is None or job.status in (JobStatus.FINISHED, JobStatus.FAILED):
            return False
        for key, rgroup in list(state.running.items()):
            if any(member.job_id == job_id for member in rgroup.active):
                del state.running[key]
                self._trace_preempt(state.now, rgroup)
                self._stop_group(rgroup, state.pending)
                state.need_reschedule = True
                state.reschedule_reason = "completion"
                break
        state.pending.pop(job_id, None)
        job.status = JobStatus.FAILED
        state.active -= 1
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                EventCategory.JOB,
                "job.cancel",
                state.now,
                job=job_id,
            )
        return True

    def resize(self, state: SimulationState, job_id: int, num_gpus: int) -> bool:
        """Resize one job of an open simulation.

        The external counterpart of scheduler-driven renegotiation:
        drivers (and tests) use it to change a job's GPU count
        mid-flight.  A running job's group is stopped first — members
        requeue, progress is conserved — and a reschedule is owed with
        reason ``"resize"`` so event-aware schedulers regroup instead
        of serving a stale backfill cache.

        Returns:
            True when the count actually changed; False when the job
            already holds ``num_gpus``.

        Raises:
            SimulationError: For finalized states, unknown or terminal
                jobs, counts outside ``[1, total_gpus]``, or counts the
                job's scalability profile does not support.
        """
        if state.finalized:
            raise SimulationError("cannot resize in a finalized simulation")
        job = state.jobs.get(job_id)
        if job is None:
            raise SimulationError(f"unknown job id {job_id}")
        if job.status in (JobStatus.FINISHED, JobStatus.FAILED):
            raise SimulationError(f"job {job_id} is already terminal")
        if not 1 <= num_gpus <= self.cluster.total_gpus:
            raise SimulationError(
                f"job {job_id} cannot resize to {num_gpus} GPUs on a "
                f"{self.cluster.total_gpus}-GPU cluster"
            )
        scalability = job.spec.scalability
        if num_gpus != job.num_gpus:
            if scalability is None:
                raise SimulationError(
                    f"job {job_id} is rigid (no scalability profile)"
                )
            if not scalability.supports(num_gpus):
                raise SimulationError(
                    f"job {job_id} does not support {num_gpus} GPUs; "
                    f"supported counts: {scalability.gpu_counts}"
                )
        changed = self._apply_resize(
            state.now, job, num_gpus, state.pending, state.running
        )
        if changed:
            state.need_reschedule = True
            state.reschedule_reason = "resize"
        return changed

    def next_event_time(self, state: SimulationState) -> Optional[float]:
        """Earliest future simulation time anything happens, or None.

        The same horizon :meth:`step` would advance to: the next queued
        external event or the next running-group completion/fault.
        Wall-clock drivers sleep until this time.
        """
        horizon = state.events.peek_time()
        for rgroup in state.running.values():
            candidate = state.now + rgroup.time_to_next_event(
                self.contention, self.uncoordinated_penalty
            )
            if horizon is None or candidate < horizon:
                horizon = candidate
        return horizon

    def step(self, state: SimulationState) -> None:
        """Advance an open simulation by one simulator iteration.

        Fires due events, invokes the scheduler when owed, and advances
        every running group to the next horizon.

        Raises:
            SimulationError: When nothing can ever happen again (no
                events, nothing running) or the step budget is
                exhausted.
        """
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        jobs, pending, running = state.jobs, state.pending, state.running
        events, result, now = state.events, state.result, state.now

        state.steps += 1
        if state.steps > state.step_budget:
            raise SimulationError(
                f"step budget exhausted at t={now:.0f}s with "
                f"{state.unfinished} jobs unfinished"
            )

        # 1. Fire due external events.
        tick_due = False
        for event in events.pop_until(now + _EPS):
            if event.kind == EventKind.ARRIVAL:
                job = jobs[event.payload]
                if job.status is JobStatus.FAILED:
                    continue  # cancelled before it arrived
                pending[event.payload] = job
                if tracing:
                    tracer.emit(
                        EventCategory.JOB,
                        "job.arrival",
                        event.time,
                        job=event.payload,
                        gpus=job.num_gpus,
                    )
                if self.reschedule_on_arrival:
                    state.need_reschedule = True
                    state.reschedule_reason = self.arrival_reason
            elif event.kind == EventKind.TICK:
                tick_due = True

        # 2. Invoke the scheduler.
        if tick_due or state.need_reschedule:
            reason = "tick" if tick_due else state.reschedule_reason
            self._reschedule(now, jobs, pending, running, result, reason)
            state.need_reschedule = False
            state.reschedule_reason = "completion"
            if tick_due:
                events.push(
                    Event(now + self.scheduling_interval, EventKind.TICK)
                )

        # 3. Find the advance horizon.
        horizon = self.next_event_time(state)
        if horizon is None:
            raise SimulationError(
                f"no events and nothing running at t={now:.0f}s with "
                f"{len(pending)} pending jobs"
            )
        horizon = max(horizon, now)

        # 4. Advance every running group and record the span.
        span = horizon - now
        if span > 0:
            self._record_timepoint(now, span, pending, running, result)
            completed_any = self._advance(
                span, jobs, pending, running, result, state
            )
            if completed_any and self.backfill_on_completion:
                state.need_reschedule = True
                state.reschedule_reason = "completion"
        state.now = horizon

    def finalize(self, state: SimulationState) -> SimulationResult:
        """Close an open simulation and return its result.

        Idempotent: a second call returns the same result object.
        Cancelled jobs appear in ``submit_times`` but contribute no
        JCT or finish time.
        """
        result = state.result
        if state.finalized:
            return result
        state.finalized = True
        jobs = state.jobs
        result.total_preemptions = sum(
            job.preemptions for job in jobs.values()
        )
        result.jcts = {
            job_id: job.completion_time()
            for job_id, job in jobs.items()
            if job.is_finished
        }
        result.finish_times = {
            job_id: job.finish_time
            for job_id, job in jobs.items()
            if job.is_finished
        }
        result.wall_clock = _time.monotonic() - state.started_wall
        if self._track_gpu_types:
            result.gpus_by_type = {
                name: sum(
                    machine.num_gpus
                    for machine in self.cluster.machines_of_type(name)
                )
                for name in self.cluster.gpu_type_names()
            }
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                EventCategory.SIM,
                "sim.run.end",
                state.now,
                trace=state.trace_name,
                finished=sum(1 for job in jobs.values() if job.is_finished),
                makespan=state.now,
                wall_clock=result.wall_clock,
                steps=state.steps,
            )
        return result

    # -- scheduling ---------------------------------------------------------------

    def _reschedule(
        self,
        now: float,
        jobs: Dict[int, Job],
        pending: Dict[int, Job],
        running: Dict[FrozenSet[int], _RunningGroup],
        result: SimulationResult,
        reason: str = "tick",
    ) -> None:
        with maybe_span(self.tracer, "sim.reschedule", now, reason=reason):
            self._reschedule_inner(
                now, jobs, pending, running, result, reason
            )

    def _reschedule_inner(
        self,
        now: float,
        jobs: Dict[int, Job],
        pending: Dict[int, Job],
        running: Dict[FrozenSet[int], _RunningGroup],
        result: SimulationResult,
        reason: str,
    ) -> None:
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        active_jobs = [job for job in jobs.values() if not job.is_finished and (
            job.job_id in pending or self._is_running(job, running)
        )]

        # Elastic schedulers renegotiate GPU counts at each scheduling
        # tick, before grouping; the simulator owns applying the
        # resizes (and conserving progress) so every policy sees the
        # same executor semantics.
        if reason == "tick":
            renegotiate = getattr(self.scheduler, "renegotiate", None)
            if renegotiate is not None:
                targets = renegotiate(
                    now, active_jobs, self.cluster.total_gpus
                )
                for job_id in sorted(targets):
                    job = jobs.get(job_id)
                    if job is None or job.is_finished:
                        continue
                    self._apply_resize(
                        now, job, targets[job_id], pending, running
                    )

        running_groups = {key: rg.group for key, rg in running.items()}
        proposal = self.scheduler.decide(
            now, active_jobs, running_groups, self.cluster.total_gpus, reason
        )

        proposed_keys = []
        seen_jobs = set()
        valid: List[JobGroup] = []
        for group in proposal:
            key = group_key(group)
            if any(job.job_id in seen_jobs or job.is_finished for job in group.jobs):
                continue
            seen_jobs.update(job.job_id for job in group.jobs)
            proposed_keys.append(key)
            valid.append(group)
        keyset = set(proposed_keys)
        if tracing:
            tracer.inspect(
                "sim.plan",
                now,
                groups=valid,
                total_gpus=self.cluster.total_gpus,
            )

        stopped = 0

        # A "kept" group whose demand changed (a member resized while
        # the group sat in a warm plan cache) cannot keep its old
        # allocation: stop it so it re-places at the new size.  The
        # comparison must be against the allocation's slot count —
        # ``JobGroup.num_gpus`` reads the live jobs, so both sides of a
        # naive group-vs-group check would show the post-resize value.
        for group in valid:
            key = group_key(group)
            rgroup = running.get(key)
            if rgroup is not None and group.num_gpus != len(rgroup.allocation.slots):
                del running[key]
                self._trace_preempt(now, rgroup)
                self._stop_group(rgroup, pending)
                stopped += 1

        # Stop groups not in the plan.
        for key in [k for k in running if k not in keyset]:
            rgroup = running.pop(key)
            self._trace_preempt(now, rgroup)
            self._stop_group(rgroup, pending)
            stopped += 1

        # Start new groups, priority order, best-effort placement.
        new_groups = [g for g in valid if group_key(g) not in running]
        started = 0
        unplaced_groups: List[JobGroup] = []
        with maybe_span(
            self.tracer, "sim.place", now, groups=len(new_groups)
        ):
            for group in new_groups:
                # Affinity-homogeneous groups (the grouper's
                # _affinity_compatible guarantee) let the first member
                # speak for the group; unaffine groups take the exact
                # pre-hetero call so custom placers keep working.
                lead_spec = group.jobs[0].spec
                if lead_spec.gpu_affinity is not None:
                    plan = self.placer.plan_for_model(
                        self.cluster,
                        group.num_gpus,
                        gpu_type=lead_spec.gpu_affinity,
                        prefer=lead_spec.affinity_mode == "prefer",
                        model=lead_spec.model,
                    )
                else:
                    plan = self.placer.plan_for_model(
                        self.cluster, group.num_gpus, model=lead_spec.model
                    )
                if plan is None:
                    # Fragmentation; members stay pending.
                    if tracing:
                        unplaced_groups.append(group)
                    continue
                started += 1
                speedup = self._landing_speedup(lead_spec, plan)
                key = group_key(group)
                allocation = self.cluster.allocate(self._owner_id(key), plan)
                slots_by_type: Optional[Dict[str, int]] = None
                if self._track_gpu_types:
                    slots_by_type = {}
                    for slot in allocation.slots:
                        name = self.cluster.gpu_type_of_machine(
                            slot.machine_id
                        )
                        if name is not None:
                            slots_by_type[name] = (
                                slots_by_type.get(name, 0) + 1
                            )
                members = [job for job in group.jobs]
                deadlines: Dict[int, float] = {}
                for job in members:
                    job.mark_started(now)
                    pending.pop(job.job_id, None)
                    delay = self.fault_injector.sample_fault_delay()
                    if delay is not None:
                        deadlines[job.job_id] = delay
                running[key] = _RunningGroup(
                    group=group,
                    allocation=allocation,
                    active=members,
                    offsets={
                        job.job_id: offset
                        for job, offset in zip(group.jobs, group.offsets)
                    },
                    penalty_remaining=self.restart_penalty,
                    fault_deadlines=deadlines,
                    speedup=speedup,
                    slots_by_type=slots_by_type,
                )
                result.total_restart_time += self.restart_penalty
                if tracing:
                    member_ids = [job.job_id for job in members]
                    tracer.emit(
                        EventCategory.GROUP,
                        "group.start",
                        now,
                        members=member_ids,
                        gpus=group.num_gpus,
                        spans_machines=allocation.spans_machines,
                    )
                    if any(
                        job.spec.gpu_affinity is not None for job in members
                    ):
                        tracer.emit(
                            EventCategory.SCHED,
                            "sched.hetero.place",
                            now,
                            members=member_ids,
                            affinities=[
                                (job.spec.gpu_affinity, job.spec.affinity_mode)
                                for job in members
                            ],
                            machine_types=[
                                self.cluster.gpu_type_of_machine(machine_id)
                                for machine_id in allocation.machine_ids
                            ],
                            speedup=speedup,
                        )
                    detail = (
                        f"group {member_ids}" if len(member_ids) > 1 else "solo"
                    )
                    for job_id in member_ids:
                        self._trace_outcome(job_id, now, "started", detail)

        if tracing:
            for group in unplaced_groups:
                member_ids = [job.job_id for job in group.jobs]
                tracer.emit(
                    EventCategory.GROUP,
                    "group.unplaced",
                    now,
                    members=member_ids,
                    gpus=group.num_gpus,
                )
                for job_id in member_ids:
                    self._trace_outcome(
                        job_id, now, "unplaced",
                        f"needs {group.num_gpus} contiguous GPUs",
                    )
            tracer.emit(
                EventCategory.SCHED,
                "sched.decision",
                now,
                reason=reason,
                proposed=len(valid),
                kept=len(valid) - len(new_groups),
                started=started,
                preempted=stopped,
                unplaced=len(new_groups) - started,
                queue_length=len(pending),
                free_gpus=self.cluster.free_gpus,
            )
            tracer.inspect("sim.cluster", now, cluster=self.cluster)

        if self.decision_log is not None:
            self.decision_log.record(Decision(
                time=now,
                reason=reason,
                proposed_groups=len(valid),
                kept=len(valid) - len(new_groups),
                started=started,
                preempted=stopped,
                unplaced=len(new_groups) - started,
                queue_length=len(pending),
                free_gpus=self.cluster.free_gpus,
            ))

    def _trace_outcome(
        self, job_id: int, sim_time: float, outcome: str, detail: str = ""
    ) -> None:
        """File one provenance outcome record (call only when tracing)."""
        self.tracer.provenance.record_outcome(
            job_id, OutcomeRecord(sim_time, outcome, detail)
        )

    def _trace_preempt(self, now: float, rgroup: _RunningGroup) -> None:
        """Emit the preemption event + outcomes for one stopped group."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return
        members = [job.job_id for job in rgroup.active]
        tracer.emit(
            EventCategory.GROUP,
            "group.preempt",
            now,
            members=members,
        )
        for job_id in members:
            self._trace_outcome(job_id, now, "preempted")

    def _apply_resize(
        self,
        now: float,
        job: Job,
        num_gpus: int,
        pending: Dict[int, Job],
        running: Dict[FrozenSet[int], _RunningGroup],
    ) -> bool:
        """Resize one job in place, conserving its progress.

        Stops the job's running group first (every member requeues
        with its iterations and attained service intact), applies the
        new count, then notifies the scheduler so demand-keyed caches
        drop before the next grouping pass.  Returns True when the
        count actually changed.
        """
        if num_gpus == job.num_gpus:
            return False
        for key, rgroup in list(running.items()):
            if any(member.job_id == job.job_id for member in rgroup.active):
                del running[key]
                self._trace_preempt(now, rgroup)
                self._stop_group(rgroup, pending)
                break
        remaining_before = job.remaining_iterations
        attained_before = job.attained_service
        old_gpus = job.resize(num_gpus)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                EventCategory.SCHED,
                "sched.resize.apply",
                now,
                job=job.job_id,
                old_gpus=old_gpus,
                new_gpus=num_gpus,
                remaining_before=remaining_before,
                remaining_after=job.remaining_iterations,
                attained_before=attained_before,
                attained_after=job.attained_service,
            )
            self._trace_outcome(
                job.job_id, now, "resized",
                f"{old_gpus} -> {num_gpus} GPUs",
            )
        self.scheduler.notify_resize(job.job_id, old_gpus, num_gpus)
        return True

    def _stop_group(
        self,
        rgroup: _RunningGroup,
        pending: Dict[int, Job],
    ) -> None:
        self.cluster.release(rgroup.allocation.owner)
        for job in rgroup.active:
            job.mark_stopped()
            pending[job.job_id] = job

    def _owner_id(self, key: FrozenSet[int]) -> int:
        self._owner_counter = getattr(self, "_owner_counter", 0) + 1
        return self._owner_counter

    @staticmethod
    def _is_running(job: Job, running: Dict[FrozenSet[int], _RunningGroup]) -> bool:
        return job.status == JobStatus.RUNNING

    # -- execution -----------------------------------------------------------------

    def _landing_speedup(self, lead_spec: JobSpec, plan: Dict[int, int]) -> float:
        """Realized speed of a group on the machines it landed on.

        Active only under ``landing_speed_scaling``.  Hard pins run
        neutrally — their profiles were pre-scaled for the pinned
        generation — while baseline-profile groups (soft preferences
        and unaffine jobs) run at the slowest landed generation's
        factor for the lead model.  Untyped machines and generations
        missing from the table count as the V100 baseline (1.0).
        """
        scaling = self.landing_speed_scaling
        if scaling is None:
            return 1.0
        if (
            lead_spec.gpu_affinity is not None
            and lead_spec.affinity_mode == "pin"
        ):
            return 1.0
        speed = None
        for machine_id in plan:
            name = self.cluster.gpu_type_of_machine(machine_id)
            if name is None:
                factor = 1.0
            else:
                try:
                    factor = scaling.factor(lead_spec.model, name)
                except KeyError:
                    factor = 1.0
            if speed is None or factor < speed:
                speed = factor
        return 1.0 if speed is None else speed

    def _advance(
        self,
        span: float,
        jobs: Dict[int, Job],
        pending: Dict[int, Job],
        running: Dict[FrozenSet[int], _RunningGroup],
        result: SimulationResult,
        state: SimulationState,
    ) -> bool:
        """Advance all groups by ``span`` seconds; returns True when a
        job completed or faulted (capacity freed)."""
        changed = False
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        for key in list(running):
            rgroup = running[key]
            if rgroup.slots_by_type:
                by_type = result.gpu_seconds_by_type
                for name, count in rgroup.slots_by_type.items():
                    by_type[name] = by_type.get(name, 0.0) + span * count
            paid = min(rgroup.penalty_remaining, span)
            rgroup.penalty_remaining -= paid
            productive = span - paid
            if productive <= 0:
                continue
            period = rgroup.period(self.contention, self.uncoordinated_penalty)
            delta_iters = productive / period

            completed: List[Job] = []
            faulted: List[Job] = []
            for job in rgroup.active:
                job.advance(min(delta_iters, job.remaining_iterations), productive)
                deadline = rgroup.fault_deadlines.get(job.job_id)
                if deadline is not None:
                    deadline -= productive
                    rgroup.fault_deadlines[job.job_id] = deadline
                if job.remaining_iterations <= _ITER_EPS:
                    completed.append(job)
                elif deadline is not None and deadline <= _EPS:
                    faulted.append(job)

            for job in completed:
                # The horizon was chosen as the earliest group event, so
                # a completing member finishes exactly at span end.
                finish_time = self._advance_clock + span
                job.mark_finished(finish_time)
                state.active -= 1
                rgroup.active.remove(job)
                rgroup.fault_deadlines.pop(job.job_id, None)
                changed = True
                if tracing:
                    tracer.emit(
                        EventCategory.JOB,
                        "job.finish",
                        finish_time,
                        job=job.job_id,
                        jct=job.completion_time(),
                    )
                    self._trace_outcome(
                        job.job_id, finish_time, "finished",
                        f"JCT {job.completion_time():.1f}s",
                    )
            for job in faulted:
                if job in rgroup.active:
                    fault_time = self._advance_clock + span
                    if self.monitor is not None:
                        self.monitor.report_fault(
                            self._advance_clock + span, job.job_id
                        )
                    loss = self.fault_injector.progress_loss
                    remaining_before = job.remaining_iterations
                    if loss > 0:
                        executed = job.spec.num_iterations - job.remaining_iterations
                        job.remaining_iterations = min(
                            float(job.spec.num_iterations),
                            job.remaining_iterations + executed * loss,
                        )
                    if tracing:
                        tracer.emit(
                            EventCategory.JOB,
                            "job.fault",
                            fault_time,
                            job=job.job_id,
                            remaining_before=remaining_before,
                            remaining_after=job.remaining_iterations,
                            total_iterations=job.spec.num_iterations,
                            progress_loss=loss,
                        )
                        self._trace_outcome(
                            job.job_id, fault_time, "faulted",
                            "requeued with checkpointed progress",
                        )
                    job.mark_stopped()
                    rgroup.active.remove(job)
                    rgroup.fault_deadlines.pop(job.job_id, None)
                    pending[job.job_id] = job
                    changed = True
            if not rgroup.active:
                self.cluster.release(rgroup.allocation.owner)
                del running[key]
            elif completed or faulted:
                # Membership changed: re-key the group to its surviving
                # members so the scheduler can keep it running instead
                # of seeing an unknown (stale) group and preempting it.
                self._rekey_group(key, rgroup, running)
        return changed

    @staticmethod
    def _rekey_group(
        old_key: FrozenSet[int],
        rgroup: _RunningGroup,
        running: Dict[FrozenSet[int], _RunningGroup],
    ) -> None:
        survivors = tuple(rgroup.active)
        survivor_ids = {job.job_id for job in survivors}
        profile_of = {
            job.job_id: profile
            for job, profile in zip(
                rgroup.group.jobs, rgroup.group.believed_profiles
            )
        }
        rgroup.group = JobGroup(
            jobs=survivors,
            believed_profiles=tuple(
                profile_of[job.job_id] for job in survivors
            ),
            offsets=tuple(rgroup.offsets[job.job_id] for job in survivors),
            num_resources=rgroup.group.num_resources,
            coordinated=rgroup.group.coordinated,
        )
        del running[old_key]
        running[frozenset(survivor_ids)] = rgroup

    #: Set before each advance so finish times are exact.
    _advance_clock: float = 0.0

    def _record_timepoint(
        self,
        now: float,
        span: float,
        pending: Dict[int, Job],
        running: Dict[FrozenSet[int], _RunningGroup],
        result: SimulationResult,
    ) -> None:
        self._advance_clock = now
        total_gpus = self.cluster.total_gpus
        utilization = [0.0] * NUM_RESOURCES
        running_jobs = 0
        for rgroup in running.values():
            running_jobs += len(rgroup.active)
            period = rgroup.period(self.contention, self.uncoordinated_penalty)
            productive_share = max(
                0.0, (span - rgroup.penalty_remaining) / span
            ) if span > 0 else 0.0
            weight = rgroup.group.num_gpus / total_gpus * productive_share
            for resource in range(NUM_RESOURCES):
                utilization[resource] += (
                    rgroup.busy_time(resource) / period * weight
                )

        blocking = 0.0
        if pending:
            ratios = []
            for job in pending.values():
                remaining = job.remaining_service_time
                if remaining > 0:
                    ratios.append(job.pending_time(now) / remaining)
            blocking = sum(ratios) / len(ratios) if ratios else 0.0

        result.timeseries.append(
            TimePoint(
                time=now,
                span=span,
                queue_length=len(pending),
                running_jobs=running_jobs,
                blocking_index=blocking,
                utilization=tuple(min(1.0, u) for u in utilization),
            )
        )

        if self.monitor is not None:
            self._feed_monitor(now, span, running)

    def _feed_monitor(
        self,
        now: float,
        span: float,
        running: Dict[FrozenSet[int], _RunningGroup],
    ) -> None:
        """Report per-machine utilization and job progress (Fig. 3)."""
        machine_util: Dict[int, List[float]] = {
            m.machine_id: [0.0] * NUM_RESOURCES for m in self.cluster.machines
        }
        machine_alloc: Dict[int, int] = {
            m.machine_id: m.allocated_gpu_count for m in self.cluster.machines
        }
        for rgroup in running.values():
            period = rgroup.period(self.contention, self.uncoordinated_penalty)
            productive_share = (
                max(0.0, (span - rgroup.penalty_remaining) / span)
                if span > 0 else 0.0
            )
            slots_per_machine: Dict[int, int] = {}
            for slot in rgroup.allocation.slots:
                slots_per_machine[slot.machine_id] = (
                    slots_per_machine.get(slot.machine_id, 0) + 1
                )
            for machine_id, slots in slots_per_machine.items():
                weight = (
                    slots
                    / self.cluster.machine(machine_id).num_gpus
                    * productive_share
                )
                for resource in range(NUM_RESOURCES):
                    machine_util[machine_id][resource] += (
                        rgroup.busy_time(resource) / period * weight
                    )
            for job in rgroup.active:
                self.monitor.report_progress(
                    now, job.job_id, job.remaining_iterations,
                    job.attained_service,
                )
        for machine_id, utilization in machine_util.items():
            self.monitor.record_machine(
                now,
                span,
                machine_id,
                machine_alloc[machine_id],
                tuple(min(1.0, u) for u in utilization),
            )
