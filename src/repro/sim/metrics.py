"""Simulation metrics: the quantities the paper's evaluation reports.

* **average / tail JCT** and **makespan** — headline metrics of
  Tables 4-5 and Figs. 9-10;
* **queue length** — pending jobs over time (Fig. 8);
* **blocking index** — mean ratio of pending time to remaining time of
  pending jobs, the starvation indicator of Fig. 8;
* **per-resource utilization** — storage/CPU/GPU/network busy
  fractions over time (Fig. 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.jobs.resources import NUM_RESOURCES, RESOURCE_ORDER, Resource

__all__ = ["TimePoint", "MetricsSummary", "SimulationResult", "percentile"]


def percentile(
    values: Sequence[float], q: float, presorted: bool = False
) -> float:
    """Linear-interpolation percentile (q in [0, 100]).

    Args:
        values: The sample.
        q: The percentile, 0-100 inclusive.
        presorted: Set True when ``values`` is already in ascending
            order to skip the O(n log n) sort — the multi-quantile
            paths (:meth:`SimulationResult.summary`,
            :meth:`SimulationResult.jct_cdf`) sort once and reuse.

    Raises:
        ValueError: On an empty sequence or q outside [0, 100].
    """
    if not values:
        raise ValueError("cannot take the percentile of no values")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = values if presorted else sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    last = len(ordered) - 1
    # The float rank can land outside [0, last] when q arrives as a
    # reduced-precision real (e.g. a numpy float32 from an aggregation
    # pipeline): the product then rounds past the end and indexing
    # would raise IndexError.  Clamp before indexing — through float(),
    # because comparing a float32 rank against an int demotes the int
    # to float32 and can hide the overshoot.
    rank = float(last * q / 100.0)
    if rank < 0:
        rank = 0.0
    elif rank > last:
        rank = float(last)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


@dataclass(frozen=True)
class TimePoint:
    """One sample of the cluster's instantaneous state.

    Attributes:
        time: Sample time (start of the span it describes).
        span: Seconds until the next sample.
        queue_length: Pending (submitted, not running) jobs.
        running_jobs: Jobs currently making progress.
        blocking_index: Mean pending/remaining ratio over pending jobs
            (zero when nothing is pending).
        utilization: Busy fraction per resource, in
            (storage, CPU, GPU, network) order, normalized by total
            cluster GPUs.
    """

    time: float
    span: float
    queue_length: int
    running_jobs: int
    blocking_index: float
    utilization: Tuple[float, ...]


@dataclass(frozen=True)
class MetricsSummary:
    """Headline metrics of one simulation."""

    avg_jct: float
    p50_jct: float
    p99_jct: float
    makespan: float
    avg_queue_length: float
    avg_blocking_index: float
    avg_utilization: Tuple[float, ...]
    total_preemptions: int
    num_jobs: int


@dataclass
class SimulationResult:
    """Everything a simulation run produced.

    Attributes:
        scheduler_name: Scheduler that produced the run.
        trace_name: Workload label.
        jcts: Completion time per job id.
        finish_times: Absolute finish time per job id.
        submit_times: Absolute submit time per job id.
        timeseries: Sampled cluster state over the run.
        total_preemptions: Stop/restart events across all jobs.
        total_restart_time: Seconds lost to restart penalties.
        wall_clock: Real seconds the simulation took (not simulated
            time).
        gpu_seconds_by_type: Occupied GPU-seconds per GPU generation
            (empty on untyped clusters); fed by the simulator's
            advance loop, including restart-penalty time — occupancy,
            not productive work.
        gpus_by_type: Total GPU slots per generation of the cluster
            the run used (empty on untyped clusters).
    """

    scheduler_name: str
    trace_name: str
    jcts: Dict[int, float] = field(default_factory=dict)
    finish_times: Dict[int, float] = field(default_factory=dict)
    submit_times: Dict[int, float] = field(default_factory=dict)
    timeseries: List[TimePoint] = field(default_factory=list)
    total_preemptions: int = 0
    total_restart_time: float = 0.0
    wall_clock: float = 0.0
    gpu_seconds_by_type: Dict[str, float] = field(default_factory=dict)
    gpus_by_type: Dict[str, int] = field(default_factory=dict)

    # -- headline metrics ---------------------------------------------------

    @property
    def num_jobs(self) -> int:
        return len(self.jcts)

    @property
    def avg_jct(self) -> float:
        """Mean job completion time."""
        if not self.jcts:
            raise ValueError("no completed jobs")
        return sum(self.jcts.values()) / len(self.jcts)

    def tail_jct(self, q: float = 99.0) -> float:
        """The q-th percentile JCT (the paper reports the 99th)."""
        return percentile(list(self.jcts.values()), q)

    def jct_cdf(self, points: int = 20) -> List[Tuple[float, float]]:
        """The JCT distribution as ``(jct_seconds, fraction <= jct)``.

        Args:
            points: Number of evenly spaced quantile samples.

        Raises:
            ValueError: With no completed jobs or ``points < 2``.
        """
        if points < 2:
            raise ValueError("points must be >= 2")
        values = sorted(self.jcts.values())
        if not values:
            raise ValueError("no completed jobs")
        cdf = []
        for index in range(points):
            fraction = index / (points - 1)
            cdf.append(
                (percentile(values, 100.0 * fraction, presorted=True),
                 fraction)
            )
        return cdf

    @property
    def makespan(self) -> float:
        """Time from trace start until the last job completes."""
        if not self.finish_times:
            raise ValueError("no completed jobs")
        return max(self.finish_times.values())

    # -- time-weighted series averages ----------------------------------------

    def _weighted_average(self, extractor) -> float:
        total_span = sum(p.span for p in self.timeseries)
        if total_span <= 0:
            return 0.0
        return (
            sum(extractor(p) * p.span for p in self.timeseries) / total_span
        )

    @property
    def avg_queue_length(self) -> float:
        return self._weighted_average(lambda p: p.queue_length)

    @property
    def avg_blocking_index(self) -> float:
        return self._weighted_average(lambda p: p.blocking_index)

    def avg_utilization(self) -> Tuple[float, ...]:
        """Time-weighted mean busy fraction per resource."""
        return tuple(
            self._weighted_average(lambda p, j=j: p.utilization[j])
            for j in range(NUM_RESOURCES)
        )

    def utilization_of(self, resource: Resource) -> float:
        return self.avg_utilization()[Resource(resource)]

    # -- summaries ----------------------------------------------------------------

    def utilization_by_type(self) -> Dict[str, float]:
        """Occupancy fraction per GPU generation over the makespan.

        ``gpu_seconds / (slots * makespan)`` for each generation the
        cluster carried; empty on untyped clusters.  This is the
        per-generation view the heterogeneous sweep and bench report
        — it shows where a placement policy actually lands work.
        """
        if not self.gpus_by_type or not self.finish_times:
            return {}
        horizon = self.makespan
        if horizon <= 0:
            return {name: 0.0 for name in self.gpus_by_type}
        return {
            name: (
                self.gpu_seconds_by_type.get(name, 0.0)
                / (slots * horizon)
            )
            for name, slots in sorted(self.gpus_by_type.items())
            if slots > 0
        }

    def summary(self) -> MetricsSummary:
        """Collapse the run into a :class:`MetricsSummary`."""
        # Both quantiles share one sort instead of re-sorting per call.
        ordered_jcts = sorted(self.jcts.values())
        return MetricsSummary(
            avg_jct=self.avg_jct,
            p50_jct=percentile(ordered_jcts, 50.0, presorted=True),
            p99_jct=percentile(ordered_jcts, 99.0, presorted=True),
            makespan=self.makespan,
            avg_queue_length=self.avg_queue_length,
            avg_blocking_index=self.avg_blocking_index,
            avg_utilization=self.avg_utilization(),
            total_preemptions=self.total_preemptions,
            num_jobs=self.num_jobs,
        )

    # -- serialization ------------------------------------------------------

    #: Schema version of :meth:`to_dict` payloads.
    FORMAT_VERSION = 1

    def to_dict(self) -> Dict:
        """Serialize to plain JSON-compatible data.

        Round-trips through :meth:`from_dict`; job-id keys become
        strings (JSON object keys), the time series a list of dicts.
        The per-generation dicts appear only when populated, so every
        pre-hetero payload (and committed baseline) is byte-stable.
        """
        payload = {
            "format_version": self.FORMAT_VERSION,
            "scheduler_name": self.scheduler_name,
            "trace_name": self.trace_name,
            "jcts": {str(k): v for k, v in self.jcts.items()},
            "finish_times": {str(k): v for k, v in self.finish_times.items()},
            "submit_times": {str(k): v for k, v in self.submit_times.items()},
            "total_preemptions": self.total_preemptions,
            "total_restart_time": self.total_restart_time,
            "wall_clock": self.wall_clock,
            "timeseries": [
                {
                    "time": p.time,
                    "span": p.span,
                    "queue_length": p.queue_length,
                    "running_jobs": p.running_jobs,
                    "blocking_index": p.blocking_index,
                    "utilization": list(p.utilization),
                }
                for p in self.timeseries
            ],
        }
        if self.gpu_seconds_by_type:
            payload["gpu_seconds_by_type"] = dict(
                sorted(self.gpu_seconds_by_type.items())
            )
        if self.gpus_by_type:
            payload["gpus_by_type"] = dict(sorted(self.gpus_by_type.items()))
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output.

        Raises:
            ValueError: On an unknown format version.
        """
        version = payload.get("format_version")
        if version != cls.FORMAT_VERSION:
            raise ValueError(
                f"unsupported result format version: {version!r}"
            )
        result = cls(
            scheduler_name=payload["scheduler_name"],
            trace_name=payload["trace_name"],
            jcts={int(k): v for k, v in payload["jcts"].items()},
            finish_times={
                int(k): v for k, v in payload["finish_times"].items()
            },
            submit_times={
                int(k): v for k, v in payload["submit_times"].items()
            },
            total_preemptions=payload["total_preemptions"],
            total_restart_time=payload["total_restart_time"],
            wall_clock=payload["wall_clock"],
        )
        result.timeseries = [
            TimePoint(
                time=p["time"],
                span=p["span"],
                queue_length=p["queue_length"],
                running_jobs=p["running_jobs"],
                blocking_index=p["blocking_index"],
                utilization=tuple(p["utilization"]),
            )
            for p in payload["timeseries"]
        ]
        result.gpu_seconds_by_type = dict(
            payload.get("gpu_seconds_by_type", {})
        )
        result.gpus_by_type = {
            name: int(slots)
            for name, slots in payload.get("gpus_by_type", {}).items()
        }
        return result

    def speedup_over(self, baseline: "SimulationResult") -> Dict[str, float]:
        """Baseline-normalized improvements (>1 means this run wins).

        Matches the paper's reporting: "Muri improves average JCT by
        2.03x" means baseline avg JCT / Muri avg JCT = 2.03.
        """
        return {
            "avg_jct": baseline.avg_jct / self.avg_jct,
            "makespan": baseline.makespan / self.makespan,
            "p99_jct": baseline.tail_jct(99.0) / self.tail_jct(99.0),
        }
