"""Discrete-event simulation of DL clusters."""

from repro.sim.contention import (
    DEFAULT_CONTENTION,
    IDEAL_CONTENTION,
    ContentionModel,
)
from repro.sim.decisions import Decision, DecisionLog
from repro.sim.engine import Event, EventKind, EventQueue
from repro.sim.faults import FaultInjector
from repro.sim.io import (
    load_comparison,
    load_result,
    save_comparison,
    save_result,
)
from repro.sim.metrics import (
    MetricsSummary,
    SimulationResult,
    TimePoint,
    percentile,
)
from repro.sim.monitor import (
    FaultReport,
    MachineSample,
    ProgressReport,
    WorkerMonitor,
)
from repro.sim.simulator import ClusterSimulator, SimulationError

__all__ = [
    "ClusterSimulator",
    "SimulationError",
    "SimulationResult",
    "MetricsSummary",
    "TimePoint",
    "percentile",
    "ContentionModel",
    "DEFAULT_CONTENTION",
    "IDEAL_CONTENTION",
    "FaultInjector",
    "Event",
    "EventKind",
    "EventQueue",
    "Decision",
    "DecisionLog",
    "WorkerMonitor",
    "MachineSample",
    "ProgressReport",
    "FaultReport",
    "save_result",
    "load_result",
    "save_comparison",
    "load_comparison",
]
