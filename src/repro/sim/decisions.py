"""Scheduling-decision audit log.

When a scheduler misbehaves — churns preemptions, starves a job,
leaves GPUs idle — the cluster-level metrics say *that* it happened but
not *why*.  :class:`DecisionLog` records every scheduler invocation:
when and why it ran, what it proposed, what was started, kept,
preempted, and what failed placement.  Attach it via
``ClusterSimulator(decision_log=...)``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

__all__ = ["Decision", "DecisionLog"]


@dataclass(frozen=True)
class Decision:
    """One scheduler invocation, summarized.

    Attributes:
        time: Simulation time of the invocation.
        reason: "tick" or "completion".
        proposed_groups: Groups the scheduler returned.
        kept: Groups already running that continue untouched.
        started: Groups newly placed this round.
        preempted: Groups stopped this round.
        unplaced: Proposed new groups that failed placement.
        queue_length: Pending jobs after the decision.
        free_gpus: Unallocated GPUs after the decision.
    """

    time: float
    reason: str
    proposed_groups: int
    kept: int
    started: int
    preempted: int
    unplaced: int
    queue_length: int
    free_gpus: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation of the decision."""
        return asdict(self)


class DecisionLog:
    """Collects :class:`Decision` records during a simulation."""

    def __init__(self) -> None:
        self._decisions: List[Decision] = []

    # -- ingestion ---------------------------------------------------------

    def record(self, decision: Decision) -> None:
        self._decisions.append(decision)

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._decisions)

    def __iter__(self):
        return iter(self._decisions)

    def decisions(self) -> List[Decision]:
        return list(self._decisions)

    def to_dicts(self) -> List[Dict[str, object]]:
        """Every decision as a JSON-compatible dict, in order."""
        return [decision.to_dict() for decision in self._decisions]

    @property
    def total_preemptions(self) -> int:
        """Groups stopped across all decisions (not per-job counts)."""
        return sum(d.preempted for d in self._decisions)

    @property
    def total_started(self) -> int:
        return sum(d.started for d in self._decisions)

    def churn_rate(self) -> float:
        """Fraction of decisions that preempted at least one group.

        High churn with an unchanged workload usually means the
        scheduler's plan is unstable round to round (see the seeding
        discussion in ``repro.core.grouping``).
        """
        if not self._decisions:
            return 0.0
        churny = sum(1 for d in self._decisions if d.preempted > 0)
        return churny / len(self._decisions)

    def idle_decisions(self) -> List[Decision]:
        """Decisions that left GPUs free while jobs queued — the
        signature of head-of-line blocking or fragmentation."""
        return [
            d for d in self._decisions
            if d.free_gpus > 0 and d.queue_length > 0
        ]

    def summary(self) -> Dict[str, float]:
        """Headline numbers for reports."""
        return {
            "decisions": float(len(self._decisions)),
            "started": float(self.total_started),
            "preempted_groups": float(self.total_preemptions),
            "churn_rate": self.churn_rate(),
            "idle_decisions": float(len(self.idle_decisions())),
        }
