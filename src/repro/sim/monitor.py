"""The worker monitor (Fig. 3).

The paper's worker monitor "collects the resource information of each
machine and tracks the progress of each job": per-machine GPU topology
and utilization, job progress reports from executors, and fault
notifications.  In the simulator it is an observer the
:class:`~repro.sim.simulator.ClusterSimulator` feeds during execution;
experiments use it for per-machine utilization breakdowns and
progress/fault audit trails that the cluster-wide metrics don't carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.jobs.resources import NUM_RESOURCES
from repro.observe.events import EventCategory
from repro.observe.tracer import Tracer

__all__ = ["MachineSample", "ProgressReport", "FaultReport", "WorkerMonitor"]


@dataclass(frozen=True)
class MachineSample:
    """One machine's state over a simulated span.

    Attributes:
        time: Span start.
        span: Span length in seconds.
        machine_id: The machine observed.
        allocated_gpus: GPU slots allocated on the machine.
        utilization: Busy fraction per resource on this machine,
            normalized by its GPU count.
    """

    time: float
    span: float
    machine_id: int
    allocated_gpus: int
    utilization: Tuple[float, ...]


@dataclass(frozen=True)
class ProgressReport:
    """An executor's periodic progress report for one job."""

    time: float
    job_id: int
    iterations_remaining: float
    attained_service: float


@dataclass(frozen=True)
class FaultReport:
    """An executor's fault notification (section 5)."""

    time: float
    job_id: int


class WorkerMonitor:
    """Collects machine samples, progress reports, and fault reports.

    Args:
        progress_interval: Minimum simulated seconds between stored
            progress reports per job (keeps the audit trail compact).
        tracer: Optional :class:`~repro.observe.Tracer`; when enabled,
            fault reports become trace events and sample/report volumes
            are counted.
    """

    def __init__(
        self,
        progress_interval: float = 60.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if progress_interval <= 0:
            raise ValueError("progress_interval must be > 0")
        self.progress_interval = progress_interval
        self.tracer = tracer
        self._machine_samples: Dict[int, List[MachineSample]] = {}
        self._progress: Dict[int, List[ProgressReport]] = {}
        self._faults: List[FaultReport] = []
        self._last_progress_time: Dict[int, float] = {}

    # -- ingestion (called by the simulator / executors) -------------------

    def record_machine(
        self,
        time: float,
        span: float,
        machine_id: int,
        allocated_gpus: int,
        utilization: Tuple[float, ...],
    ) -> None:
        """Store one machine-level utilization sample."""
        if self.tracer is not None:
            self.tracer.count("monitor.machine_samples")
        self._machine_samples.setdefault(machine_id, []).append(
            MachineSample(time, span, machine_id, allocated_gpus, utilization)
        )

    def report_progress(
        self,
        time: float,
        job_id: int,
        iterations_remaining: float,
        attained_service: float,
    ) -> None:
        """Store a job progress report, rate-limited per job."""
        last = self._last_progress_time.get(job_id)
        if last is not None and time - last < self.progress_interval:
            return
        self._last_progress_time[job_id] = time
        if self.tracer is not None:
            self.tracer.count("monitor.progress_reports")
        self._progress.setdefault(job_id, []).append(
            ProgressReport(time, job_id, iterations_remaining, attained_service)
        )

    def report_fault(self, time: float, job_id: int) -> None:
        """Store a fault notification."""
        if self.tracer is not None:
            self.tracer.emit(
                EventCategory.JOB, "monitor.fault_report", time, job=job_id
            )
        self._faults.append(FaultReport(time, job_id))

    # -- queries (what the scheduler asks the monitor) -----------------------

    def machine_ids(self) -> List[int]:
        return sorted(self._machine_samples)

    def machine_samples(self, machine_id: int) -> List[MachineSample]:
        return list(self._machine_samples.get(machine_id, []))

    def machine_utilization(self, machine_id: int) -> Tuple[float, ...]:
        """Time-weighted mean busy fraction per resource on a machine."""
        samples = self._machine_samples.get(machine_id, [])
        total = sum(s.span for s in samples)
        if total <= 0:
            return (0.0,) * NUM_RESOURCES
        return tuple(
            sum(s.utilization[r] * s.span for s in samples) / total
            for r in range(NUM_RESOURCES)
        )

    def busiest_machine(self) -> Optional[int]:
        """Machine with the highest mean GPU-stage utilization."""
        best_id, best_value = None, -1.0
        for machine_id in self._machine_samples:
            value = self.machine_utilization(machine_id)[2]
            if value > best_value:
                best_id, best_value = machine_id, value
        return best_id

    def progress_of(self, job_id: int) -> List[ProgressReport]:
        return list(self._progress.get(job_id, []))

    def faults(self) -> List[FaultReport]:
        return list(self._faults)

    def fault_count(self, job_id: Optional[int] = None) -> int:
        if job_id is None:
            return len(self._faults)
        return sum(1 for f in self._faults if f.job_id == job_id)
