"""Contention overheads of co-located jobs.

The paper's measured speedups fall short of the ideal because "even
though one stage mainly occupies one resource type, other resource
types may still be used in this stage.  Consequently, the resource
contention between different stages decreases the processing speed"
(section 6.2).  This matters for the Fig. 12 result that 3-job groups
can be worse than 2-job groups: the marginal interleaving benefit of a
third job can be smaller than the extra contention it causes.

:class:`ContentionModel` captures that as a multiplicative factor on a
group's interleaved iteration period, keyed by group size.  The default
factors are calibrated so that the Table 2 example lands near the
paper's measured 2.0x total normalized throughput (ideal would be
about 2.2x) and the Fig. 12 ordering (4-job best, 3-job sometimes
behind 2-job) can emerge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = ["ContentionModel", "DEFAULT_CONTENTION", "IDEAL_CONTENTION"]


@dataclass(frozen=True)
class ContentionModel:
    """Multiplicative slowdown of a group's period by group size.

    Attributes:
        factors: ``{group_size: factor}`` with factor >= 1.  Sizes not
            listed fall back to the largest listed size's factor.
        cross_machine_penalty: Extra factor applied when a group's GPU
            allocation spans machines (slower all-reduce over the
            inter-machine network).
    """

    factors: Mapping[int, float] = field(
        default_factory=lambda: {1: 1.0, 2: 1.05, 3: 1.12, 4: 1.14}
    )
    cross_machine_penalty: float = 1.05

    def __post_init__(self) -> None:
        if 1 not in self.factors:
            raise ValueError("factors must define group size 1")
        for size, factor in self.factors.items():
            if size < 1:
                raise ValueError("group sizes must be >= 1")
            if factor < 1.0:
                raise ValueError("contention factors must be >= 1")
        if self.cross_machine_penalty < 1.0:
            raise ValueError("cross_machine_penalty must be >= 1")

    def factor(self, group_size: int, spans_machines: bool = False) -> float:
        """Slowdown factor for a group of ``group_size`` jobs."""
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        if group_size in self.factors:
            base = self.factors[group_size]
        else:
            base = self.factors[max(self.factors)]
        if spans_machines:
            base *= self.cross_machine_penalty
        return base


#: Calibrated default used by the evaluation harness.
DEFAULT_CONTENTION = ContentionModel()

#: No contention at all: the ideal analytical model of section 4.
IDEAL_CONTENTION = ContentionModel(
    factors={1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0},
    cross_machine_penalty=1.0,
)
