"""Fault injection.

The paper's executor "reports the error information to the worker
monitor and terminates the training process.  The related DL job will
be pushed back to the job queue" (section 5).  The injector samples
memoryless fault times per running job; when a fault fires, the
simulator stops the job's group member, keeps its progress (training
resumes from the last checkpointed iteration), and requeues it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

__all__ = ["FaultInjector"]


@dataclass
class FaultInjector:
    """Exponential fault model.

    Attributes:
        mean_time_between_faults: Expected running seconds between
            faults for one job.  ``float('inf')`` disables faults.
        seed: RNG seed.
        progress_loss: Fraction of iterations completed since the last
            restart that is lost when a fault fires (checkpointing
            granularity); zero keeps all progress.
    """

    mean_time_between_faults: float = float("inf")
    seed: int = 0
    progress_loss: float = 0.0

    def __post_init__(self) -> None:
        # NaN slips through ordering comparisons (``nan <= 0`` is
        # False), which would arm the injector and poison the event
        # queue with NaN fault delays — reject it explicitly.
        if math.isnan(self.mean_time_between_faults):
            raise ValueError("mean_time_between_faults must not be NaN")
        if self.mean_time_between_faults <= 0:
            raise ValueError("mean_time_between_faults must be > 0")
        if math.isnan(self.progress_loss):
            raise ValueError("progress_loss must not be NaN")
        if not 0 <= self.progress_loss <= 1:
            raise ValueError("progress_loss must be in [0, 1]")
        self._rng = random.Random(self.seed)

    @property
    def enabled(self) -> bool:
        return self.mean_time_between_faults != float("inf")

    def sample_fault_delay(self) -> Optional[float]:
        """Running seconds until the next fault of a freshly started
        job, or None when faults are disabled."""
        if not self.enabled:
            return None
        return self._rng.expovariate(1.0 / self.mean_time_between_faults)
