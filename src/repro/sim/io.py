"""Persistence for simulation results.

Experiments that take minutes to run deserve durable outputs:
:func:`save_result` / :func:`load_result` round-trip a
:class:`~repro.sim.metrics.SimulationResult` (including the full time
series) through JSON, and :func:`save_comparison` stores a whole
scheduler-comparison dict in one document.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Union

from repro.sim.metrics import SimulationResult

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "save_comparison",
    "load_comparison",
]

_FORMAT_VERSION = SimulationResult.FORMAT_VERSION


def result_to_dict(result: SimulationResult) -> Dict:
    """Serialize a result; delegates to ``SimulationResult.to_dict``."""
    return result.to_dict()


def result_from_dict(payload: Mapping) -> SimulationResult:
    """Rebuild a result; delegates to ``SimulationResult.from_dict``.

    Raises:
        ValueError: On an unknown format version.
    """
    return SimulationResult.from_dict(payload)


def save_result(result: SimulationResult, path: Union[str, Path]) -> None:
    """Write one result as JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def load_result(path: Union[str, Path]) -> SimulationResult:
    """Read a result written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))


def save_comparison(
    results: Mapping[str, SimulationResult], path: Union[str, Path]
) -> None:
    """Write a ``{label: result}`` comparison as one JSON document."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "results": {
            label: result_to_dict(result) for label, result in results.items()
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_comparison(path: Union[str, Path]) -> Dict[str, SimulationResult]:
    """Read a comparison written by :func:`save_comparison`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ValueError("unsupported comparison format version")
    return {
        label: result_from_dict(entry)
        for label, entry in payload["results"].items()
    }
