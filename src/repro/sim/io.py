"""Persistence for simulation results.

Experiments that take minutes to run deserve durable outputs:
:func:`save_result` / :func:`load_result` round-trip a
:class:`~repro.sim.metrics.SimulationResult` (including the full time
series) through JSON, and :func:`save_comparison` stores a whole
scheduler-comparison dict in one document.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Union

from repro.sim.metrics import SimulationResult, TimePoint

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "save_comparison",
    "load_comparison",
]

_FORMAT_VERSION = 1


def result_to_dict(result: SimulationResult) -> Dict:
    """Serialize a result to plain JSON-compatible data."""
    return {
        "format_version": _FORMAT_VERSION,
        "scheduler_name": result.scheduler_name,
        "trace_name": result.trace_name,
        "jcts": {str(k): v for k, v in result.jcts.items()},
        "finish_times": {str(k): v for k, v in result.finish_times.items()},
        "submit_times": {str(k): v for k, v in result.submit_times.items()},
        "total_preemptions": result.total_preemptions,
        "total_restart_time": result.total_restart_time,
        "wall_clock": result.wall_clock,
        "timeseries": [
            {
                "time": p.time,
                "span": p.span,
                "queue_length": p.queue_length,
                "running_jobs": p.running_jobs,
                "blocking_index": p.blocking_index,
                "utilization": list(p.utilization),
            }
            for p in result.timeseries
        ],
    }


def result_from_dict(payload: Mapping) -> SimulationResult:
    """Rebuild a result from :func:`result_to_dict` output.

    Raises:
        ValueError: On an unknown format version.
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported result format version: {version!r}")
    result = SimulationResult(
        scheduler_name=payload["scheduler_name"],
        trace_name=payload["trace_name"],
        jcts={int(k): v for k, v in payload["jcts"].items()},
        finish_times={int(k): v for k, v in payload["finish_times"].items()},
        submit_times={int(k): v for k, v in payload["submit_times"].items()},
        total_preemptions=payload["total_preemptions"],
        total_restart_time=payload["total_restart_time"],
        wall_clock=payload["wall_clock"],
    )
    result.timeseries = [
        TimePoint(
            time=p["time"],
            span=p["span"],
            queue_length=p["queue_length"],
            running_jobs=p["running_jobs"],
            blocking_index=p["blocking_index"],
            utilization=tuple(p["utilization"]),
        )
        for p in payload["timeseries"]
    ]
    return result


def save_result(result: SimulationResult, path: Union[str, Path]) -> None:
    """Write one result as JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def load_result(path: Union[str, Path]) -> SimulationResult:
    """Read a result written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))


def save_comparison(
    results: Mapping[str, SimulationResult], path: Union[str, Path]
) -> None:
    """Write a ``{label: result}`` comparison as one JSON document."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "results": {
            label: result_to_dict(result) for label, result in results.items()
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_comparison(path: Union[str, Path]) -> Dict[str, SimulationResult]:
    """Read a comparison written by :func:`save_comparison`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ValueError("unsupported comparison format version")
    return {
        label: result_from_dict(entry)
        for label, entry in payload["results"].items()
    }
