"""A small discrete-event queue.

The simulator's externally scheduled events — job arrivals, scheduler
ticks, injected faults — go through this queue; completions are
recomputed from group state instead (they move whenever membership
changes, so queueing them would require invalidation).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, List, Optional, Tuple

from repro.observe.tracer import Tracer

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(Enum):
    """What an event represents."""

    ARRIVAL = "arrival"
    TICK = "tick"
    FAULT = "fault"


@dataclass(frozen=True, order=False)
class Event:
    """One scheduled event.

    Attributes:
        time: When the event fires.
        kind: Event category.
        payload: Kind-specific data (job id for arrivals/faults).
    """

    time: float
    kind: EventKind
    payload: Any = None


class EventQueue:
    """Min-heap of events ordered by (time, insertion order).

    Args:
        tracer: Optional :class:`~repro.observe.Tracer`; when enabled,
            pushes bump an ``engine.push.<kind>`` counter so traces show
            the external-event volume by kind.
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self.tracer = tracer

    def push(self, event: Event) -> None:
        """Schedule an event."""
        if event.time < 0:
            raise ValueError("event time must be >= 0")
        if self.tracer is not None:
            self.tracer.count(f"engine.push.{event.kind.value}")
        heapq.heappush(self._heap, (event.time, next(self._counter), event))

    def peek_time(self) -> Optional[float]:
        """Time of the next event, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises:
            IndexError: When the queue is empty.
        """
        return heapq.heappop(self._heap)[2]

    def pop_until(self, time: float) -> List[Event]:
        """Pop every event with ``event.time <= time``, in order."""
        events: List[Event] = []
        while self._heap and self._heap[0][0] <= time:
            events.append(self.pop())
        return events

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
