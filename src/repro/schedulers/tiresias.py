"""Tiresias (NSDI '19): duration-unaware DL scheduling with 2D-LAS.

Tiresias ranks jobs by *attained GPU service* (2D-LAS) when durations
are unknown.  To avoid constant preemption churn from continuously
changing attained service, it discretizes priorities into a small
number of queues split at exponentially growing service thresholds;
within a queue, jobs run FIFO.  We reproduce that discretized
two-dimensional LAS, plus the 2D-Gittins variant that Tiresias offers
when a duration *distribution* is known.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

from repro.core.group import JobGroup
from repro.jobs.job import Job
from repro.schedulers.base import Scheduler, fill_singletons, group_key

__all__ = ["TiresiasScheduler"]


class TiresiasScheduler(Scheduler):
    """Discretized 2D-LAS / 2D-Gittins scheduler.

    Args:
        num_queues: Number of discretized priority queues.
        starvation_knob: Promote a job back to the highest queue when
            its pending time exceeds ``starvation_knob`` times its
            attained service (Tiresias's PROMOTEKNOB); zero disables.
        base_quantum: Attained-GPU-service threshold of the first
            queue boundary, in GPU-seconds; boundaries grow by 10x.
        variant: "las" (default) or "gittins".
    """

    duration_aware = False

    def __init__(
        self,
        num_queues: int = 3,
        starvation_knob: float = 8.0,
        base_quantum: float = 3600.0,
        variant: str = "las",
    ) -> None:
        if num_queues < 1:
            raise ValueError("num_queues must be >= 1")
        if variant not in ("las", "gittins"):
            raise ValueError(f"unknown Tiresias variant {variant!r}")
        self.num_queues = num_queues
        self.starvation_knob = starvation_knob
        self.base_quantum = base_quantum
        self.variant = variant
        self.name = "Tiresias" if variant == "las" else "Tiresias-Gittins"

    # -- queue assignment ---------------------------------------------------

    def _queue_index(self, job: Job, now: float) -> int:
        attained = job.attained_gpu_service
        # Starvation guard: long-pending jobs get promoted to queue 0.
        if (
            self.starvation_knob > 0
            and job.attained_service > 0
            and job.pending_time(now) > self.starvation_knob * job.attained_service
        ):
            return 0
        boundary = self.base_quantum
        for queue in range(self.num_queues - 1):
            if attained < boundary:
                return queue
            boundary *= 10.0
        return self.num_queues - 1

    def _rank(self, job: Job, now: float):
        queue = self._queue_index(job, now)
        if self.variant == "gittins":
            # Gittins within a queue: prefer jobs whose attained service
            # is close to the queue boundary from below (most likely to
            # finish within the next quantum under heavy-tailed sizes).
            within = -job.attained_gpu_service
        else:
            # LAS within a queue: FIFO by submission (Tiresias's rule).
            within = job.spec.submit_time
        return (queue, within, job.spec.submit_time, job.job_id)

    def decide(
        self,
        now: float,
        jobs: Sequence[Job],
        running: Dict[FrozenSet[int], JobGroup],
        total_gpus: int,
        reason: str = "tick",
    ) -> List[JobGroup]:
        ordered = sorted(jobs, key=lambda job: self._rank(job, now))
        return fill_singletons(ordered, total_gpus)
