"""Scheduler interface shared by Muri and every baseline.

A scheduler looks at the current set of unfinished, already-submitted
jobs and proposes the groups that should occupy the cluster until the
next scheduling event.  The simulator diffs the proposal against what
is running: untouched groups keep executing, removed groups are
preempted, and new groups pay a restart penalty before making
progress.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence

from repro.core.group import JobGroup
from repro.jobs.job import Job

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe.tracer import Tracer

__all__ = ["Scheduler", "group_key", "fill_singletons"]


def group_key(group: JobGroup) -> FrozenSet[int]:
    """Identity of a group: the set of member job ids.

    The simulator treats a proposed group as "the same" as a running
    one when the member sets match, so it keeps running undisturbed.
    """
    return frozenset(job.job_id for job in group.jobs)


class Scheduler(ABC):
    """Base class for scheduling policies.

    Attributes:
        name: Display name used in reports.
        duration_aware: True when the policy needs job durations
            (SRTF/SRSF/Muri-S); False for LAS-family policies.
        preemptive: False for policies that never stop a running job
            (FIFO, AntMan).
        tracer: Optional :class:`~repro.observe.Tracer` set via
            :meth:`configure`; None means untraced.
    """

    name: str = "scheduler"
    duration_aware: bool = False
    preemptive: bool = True
    tracer: Optional["Tracer"] = None

    def configure(
        self,
        tracer: Optional["Tracer"] = None,
        event_regroup: Optional[bool] = None,
        workers: Optional[int] = None,
    ) -> "Scheduler":
        """Apply the uniform post-construction options and return self.

        This is the one signature :func:`~repro.schedulers.make_scheduler`
        and the fleet shard factory share: every scheduler accepts the
        same keywords, and policies that have no use for an option
        simply ignore it (a FIFO queue has nothing to regroup, so
        ``event_regroup`` is a no-op there).  Subclasses with more
        machinery — Muri's grouper — override this to thread the
        options through.

        Args:
            tracer: Tracer to attach; None leaves the current one.
            event_regroup: Run the full decision pass on
                arrival/completion events (Muri); ignored by policies
                without incremental state.
            workers: Process-pool width for policies with parallel
                internals (Muri's grouper); ignored elsewhere.

        Returns:
            ``self``, so construction chains:
            ``factory().configure(tracer=t)``.
        """
        if tracer is not None:
            self.tracer = tracer
        return self

    def notify_resize(self, job_id: int, old_gpus: int, new_gpus: int) -> None:
        """A job's GPU count changed (elastic resize); drop stale state.

        The simulator calls this after every applied resize, before the
        next :meth:`decide`.  Stateless policies have nothing to do;
        policies with decision caches keyed on GPU demand (Muri's plan
        memo, overflow reservoir, and per-bucket grouping cache)
        override this to invalidate them — a cached plan may reference
        the job at its old size.

        Args:
            job_id: The resized job.
            old_gpus: GPU count before the resize.
            new_gpus: GPU count after the resize.
        """

    @abstractmethod
    def decide(
        self,
        now: float,
        jobs: Sequence[Job],
        running: Dict[FrozenSet[int], JobGroup],
        total_gpus: int,
        reason: str = "tick",
    ) -> List[JobGroup]:
        """Propose the set of groups to run.

        Args:
            now: Current simulation time.
            jobs: Every submitted, unfinished job (pending or running).
            running: Groups currently executing, keyed by
                :func:`group_key`.
            total_gpus: Cluster GPU capacity.
            reason: "tick" for a periodic invocation, "completion" for
                an event-driven backfill opportunity.  Expensive
                policies may serve completions from a cached plan, as
                Muri's prototype recomputes grouping only on its
                six-minute interval.

        Returns:
            Proposed groups, highest priority first, with total GPU
            demand at most ``total_gpus``.  The simulator may drop
            trailing groups that fail placement.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


def fill_singletons(
    ordered_jobs: Sequence[Job],
    total_gpus: int,
    strict: bool = False,
) -> List[JobGroup]:
    """Greedily fill the cluster with one-job groups in the given order.

    Args:
        ordered_jobs: Jobs in descending scheduling priority.
        total_gpus: Capacity to fill.
        strict: If true, stop at the first job that does not fit
            (head-of-line blocking, classic FIFO); otherwise skip it
            and keep trying smaller jobs (backfill).
    """
    groups: List[JobGroup] = []
    free = total_gpus
    for job in ordered_jobs:
        if job.num_gpus <= free:
            groups.append(JobGroup.solo(job))
            free -= job.num_gpus
        elif strict:
            break
        if free == 0:
            break
    return groups
