"""Tetris-style multi-resource *space* packing (the Fig. 1(a) strawman).

Big-data multi-resource schedulers (Tetris, SIGCOMM '14; Graphene;
Carbyne) treat each job's demand as its *peak* usage per resource and
pack jobs onto machines so that the per-resource sums stay within
capacity — sharing in space, never overlapping in time.  The paper's
section 2 argues this cannot pack DL jobs: every DL job's peak GPU
demand is ~1 GPU-equivalent, so space packing degenerates to exclusive
GPU scheduling.

:class:`TetrisScheduler` reproduces that behaviour faithfully so the
claim is testable:

* each job's demand vector is its peak *fractional* usage of
  (storage, CPU, GPU, network) per GPU — for a staged DL job the peak
  on every used resource is 1.0 during its stage;
* candidate jobs are scored with Tetris's alignment heuristic (dot
  product of demand with remaining capacity) and packed greedily;
* two jobs may share a GPU set only if their *summed peak demands* fit
  into unit capacity — which staged DL jobs essentially never satisfy.

The scheduler therefore behaves like SRTF-with-alignment for DL
workloads, which is exactly the degeneration the paper predicts
("existing multi-resource schedulers degenerate to SRTF or its
variants", section 6.1).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.group import JobGroup
from repro.jobs.job import Job
from repro.jobs.resources import NUM_RESOURCES
from repro.schedulers.base import Scheduler, group_key

__all__ = ["TetrisScheduler", "peak_demand_vector"]


def peak_demand_vector(job: Job) -> Tuple[float, ...]:
    """Peak per-resource demand of a job, normalized to one GPU set.

    A staged job fully occupies a resource while its stage runs, so the
    peak demand on every resource with a non-zero stage is 1.0 — the
    paper's observation that peak-based packing sees DL jobs as
    unpackable.
    """
    return tuple(
        1.0 if job.profile.durations[r] > 0 else 0.0
        for r in range(min(NUM_RESOURCES, job.profile.num_resources))
    ) + (0.0,) * max(0, NUM_RESOURCES - job.profile.num_resources)


class TetrisScheduler(Scheduler):
    """Peak-demand space packing with Tetris's alignment score.

    Args:
        use_average_demand: If true, pack with *average* utilization
            (stage time / iteration time) instead of peak — an
            optimistic variant that over-packs and suffers interference
            (provided for the ablation bench; the faithful Tetris uses
            peaks).
        interference_penalty: Period factor per co-located job when
            ``use_average_demand`` forces time-overlapping shares; the
            executor's uncoordinated-group penalty also applies.
    """

    duration_aware = True
    preemptive = True

    def __init__(self, use_average_demand: bool = False) -> None:
        self.use_average_demand = use_average_demand
        self.name = "Tetris" + ("-avg" if use_average_demand else "")

    # -- demand ---------------------------------------------------------

    def _demand(self, job: Job) -> Tuple[float, ...]:
        if not self.use_average_demand:
            return peak_demand_vector(job)
        iteration = job.profile.iteration_time
        return tuple(
            job.profile.durations[r] / iteration
            for r in range(NUM_RESOURCES)
        )

    @staticmethod
    def _alignment(demand: Sequence[float], free: Sequence[float]) -> float:
        """Tetris's packing score: dot(demand, remaining capacity)."""
        return sum(d * f for d, f in zip(demand, free))

    # -- scheduling -----------------------------------------------------

    def decide(
        self,
        now: float,
        jobs: Sequence[Job],
        running: Dict[FrozenSet[int], JobGroup],
        total_gpus: int,
        reason: str = "tick",
    ) -> List[JobGroup]:
        # Shortest-remaining-first candidate order (the degeneration
        # the paper describes), packed greedily by alignment.
        ordered = sorted(
            jobs,
            key=lambda job: (
                job.remaining_gpu_service,
                job.spec.submit_time,
                job.job_id,
            ),
        )

        # Per-GPU-set resource headroom: slot i holds the residual
        # capacity vector of an already-packed share, keyed by the
        # members packed there.
        shares: List[Tuple[List[Job], List[float], int]] = []
        free_gpus = total_gpus
        for job in ordered:
            demand = self._demand(job)
            # Try to co-locate with an existing share of equal GPU
            # count (peak demands make this succeed essentially never
            # for DL jobs; the average variant over-packs).
            best_index, best_score = None, 0.0
            for index, (members, headroom, gpus) in enumerate(shares):
                if gpus != job.num_gpus:
                    continue
                if any(d > h + 1e-9 for d, h in zip(demand, headroom)):
                    continue
                score = self._alignment(demand, headroom)
                if best_index is None or score > best_score:
                    best_index, best_score = index, score
            if best_index is not None:
                members, headroom, gpus = shares[best_index]
                members.append(job)
                shares[best_index] = (
                    members,
                    [h - d for h, d in zip(headroom, demand)],
                    gpus,
                )
                continue
            if job.num_gpus <= free_gpus:
                shares.append(
                    ([job], [1.0 - d for d in demand], job.num_gpus)
                )
                free_gpus -= job.num_gpus

        plan: List[JobGroup] = []
        for members, _headroom, _gpus in shares:
            if len(members) == 1:
                plan.append(JobGroup.solo(members[0]))
            else:
                # Space sharing without stage coordination.
                profiles = tuple(job.profile for job in members)
                plan.append(
                    JobGroup(
                        jobs=tuple(members),
                        believed_profiles=profiles,
                        offsets=tuple(range(len(members))),
                        coordinated=False,
                    )
                )
        return plan
