"""Dominant Resource Fairness (Ghodsi et al., NSDI '11).

The classic multi-resource *fair* allocator the paper cites in related
work: each job's demand is a vector over resources; its *dominant
share* is the largest fraction of any cluster resource it holds; DRF
repeatedly grants resources to the user/job with the smallest dominant
share.

For DL jobs the dominant resource is effectively always the GPU (peak
GPU demand ≈ the whole device), so DRF degenerates to round-robin-like
fair sharing of GPUs — the same space-only limitation as Tetris, but
with fairness rather than packing as the objective.  It is included as
the fairness-family baseline: expect average JCT between FIFO and the
LAS family, with low variance in attained service.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.group import JobGroup
from repro.jobs.job import Job
from repro.jobs.resources import NUM_RESOURCES
from repro.schedulers.base import Scheduler

__all__ = ["DrfScheduler", "dominant_share"]


def dominant_share(job: Job, cluster_capacity: Sequence[float]) -> float:
    """A job's dominant share if granted its demand.

    The demand vector is (GPUs, plus the average per-resource stage
    utilization scaled by GPU count); capacity is per-resource cluster
    totals.  For DL jobs the GPU entry dominates.
    """
    iteration = job.profile.iteration_time
    shares = []
    for resource in range(min(NUM_RESOURCES, len(cluster_capacity))):
        if cluster_capacity[resource] <= 0:
            continue
        demand = (
            job.profile.durations[resource] / iteration * job.num_gpus
        )
        shares.append(demand / cluster_capacity[resource])
    return max(shares) if shares else 0.0


class DrfScheduler(Scheduler):
    """Progressive-filling DRF over attained dominant shares.

    Each round, jobs are granted GPUs in ascending order of their
    *attained* dominant share (GPU-seconds of service relative to what
    the cluster could have provided them), so service is equalized over
    time — the water-filling behaviour of DRF applied longitudinally,
    which is how fair schedulers operate on non-divisible DL jobs.
    """

    duration_aware = False
    preemptive = True

    def __init__(self) -> None:
        self.name = "DRF"

    def decide(
        self,
        now: float,
        jobs: Sequence[Job],
        running: Dict[FrozenSet[int], JobGroup],
        total_gpus: int,
        reason: str = "tick",
    ) -> List[JobGroup]:
        horizon = max(now, 1.0)

        def attained_share(job: Job) -> float:
            # Fraction of the cluster's GPU-time since its submission
            # that this job has received, normalized by demand size so
            # wide jobs are not inherently favoured.
            window = max(1.0, horizon - job.spec.submit_time)
            return job.attained_gpu_service / (window * job.num_gpus)

        ordered = sorted(
            jobs,
            key=lambda job: (
                attained_share(job),
                job.spec.submit_time,
                job.job_id,
            ),
        )
        plan: List[JobGroup] = []
        free = total_gpus
        for job in ordered:
            if job.num_gpus <= free:
                plan.append(JobGroup.solo(job))
                free -= job.num_gpus
            if free == 0:
                break
        return plan
