"""Classic priority schedulers: FIFO, SJF, SRTF, SRSF.

These allocate GPUs exclusively (one job per GPU set, no sharing) and
differ only in queue order.  SRTF and SRSF are the duration-aware
baselines of Table 4; SRSF is Tiresias's "remaining time x GPUs"
extension of SRTF to multi-GPU DL jobs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

from repro.core.group import JobGroup
from repro.core.priorities import PriorityPolicy, get_policy
from repro.jobs.job import Job
from repro.schedulers.base import Scheduler, fill_singletons, group_key

__all__ = [
    "PriorityScheduler",
    "FifoScheduler",
    "SjfScheduler",
    "SrtfScheduler",
    "SrsfScheduler",
]


class PriorityScheduler(Scheduler):
    """Exclusive-GPU scheduler ordered by a priority policy.

    Args:
        policy: Priority callable or policy name (lower value runs
            first).
        name: Display name.
        duration_aware: Whether the policy consumes durations.
        strict: Head-of-line blocking instead of backfilling.
    """

    def __init__(
        self,
        policy,
        name: str,
        duration_aware: bool,
        strict: bool = False,
    ) -> None:
        self.policy: PriorityPolicy = (
            get_policy(policy) if isinstance(policy, str) else policy
        )
        self.name = name
        self.duration_aware = duration_aware
        self.strict = strict

    def decide(
        self,
        now: float,
        jobs: Sequence[Job],
        running: Dict[FrozenSet[int], JobGroup],
        total_gpus: int,
        reason: str = "tick",
    ) -> List[JobGroup]:
        ordered = sorted(
            jobs,
            key=lambda job: (
                self.policy(job, now),
                job.spec.submit_time,
                job.job_id,
            ),
        )
        return fill_singletons(ordered, total_gpus, strict=self.strict)


class FifoScheduler(PriorityScheduler):
    """First-in-first-out with head-of-line blocking, non-preemptive."""

    preemptive = False

    def __init__(self) -> None:
        super().__init__("fifo", name="FIFO", duration_aware=False, strict=True)

    def decide(self, now, jobs, running, total_gpus, reason="tick"):
        # Never stop a running job: pin running jobs first, then extend
        # FIFO from the queue head.
        running_jobs = [
            job for group in running.values() for job in group.jobs
        ]
        running_ids = {job.job_id for job in running_jobs}
        pinned = [JobGroup.solo(job) for job in running_jobs]
        free = total_gpus - sum(job.num_gpus for job in running_jobs)
        pending = sorted(
            (job for job in jobs if job.job_id not in running_ids),
            key=lambda job: (job.spec.submit_time, job.job_id),
        )
        return pinned + fill_singletons(pending, free, strict=True)


class SjfScheduler(PriorityScheduler):
    """Shortest Job First (static total size)."""

    def __init__(self) -> None:
        super().__init__("sjf", name="SJF", duration_aware=True)


class SrtfScheduler(PriorityScheduler):
    """Shortest Remaining Time First (preemptive)."""

    def __init__(self) -> None:
        super().__init__("srtf", name="SRTF", duration_aware=True)


class SrsfScheduler(PriorityScheduler):
    """Shortest Remaining Service First: remaining time x GPU count."""

    def __init__(self) -> None:
        super().__init__("srsf", name="SRSF", duration_aware=True)
