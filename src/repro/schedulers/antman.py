"""AntMan (OSDI '20): non-preemptive FIFO with opportunistic GPU sharing.

AntMan packs multiple DL jobs onto one GPU with dynamic memory and
compute scaling.  Relative to Muri it differs in two ways the paper
leans on (section 6.3):

* jobs are scheduled FIFO and never preempted, so a long job at the
  head hurts average JCT;
* sharing is *not* stage-aware: co-located jobs contend rather than
  phase-shift, so the throughput benefit is smaller than Muri's
  interleaving.

We model an AntMan GPU share as a group whose stage ordering is the
naive identity assignment (no ordering search) with an extra sharing
slowdown applied by the executor, and cap sharing at two jobs per GPU
(its memory-scaling regime).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

from repro.core.group import JobGroup
from repro.core.ordering import identity_ordering
from repro.jobs.job import Job
from repro.schedulers.base import Scheduler, group_key

__all__ = ["AntManScheduler"]


class AntManScheduler(Scheduler):
    """FIFO, non-preemptive, 2-way GPU sharing.

    Args:
        max_sharing: Jobs per GPU set (2 in AntMan's typical regime).
    """

    duration_aware = False
    preemptive = False

    def __init__(self, max_sharing: int = 2) -> None:
        if max_sharing < 1:
            raise ValueError("max_sharing must be >= 1")
        self.max_sharing = max_sharing
        self.name = "AntMan"

    def decide(
        self,
        now: float,
        jobs: Sequence[Job],
        running: Dict[FrozenSet[int], JobGroup],
        total_gpus: int,
        reason: str = "tick",
    ) -> List[JobGroup]:
        # Keep every running group untouched (non-preemptive).
        plan: List[JobGroup] = list(running.values())
        used = sum(group.num_gpus for group in plan)
        running_ids = {
            job.job_id for group in plan for job in group.jobs
        }
        pending = sorted(
            (job for job in jobs if job.job_id not in running_ids),
            key=lambda job: (job.spec.submit_time, job.job_id),
        )

        # Fill free GPUs FIFO with dedicated jobs; once the cluster is
        # full, later jobs run opportunistically by sharing the GPUs of
        # a group with headroom and matching GPU count.
        for job in pending:
            if job.num_gpus <= total_gpus - used:
                plan.append(JobGroup.solo(job))
                used += job.num_gpus
                continue
            host_index = next(
                (
                    i
                    for i, group in enumerate(plan)
                    if group.size < self.max_sharing
                    and group.num_gpus == job.num_gpus
                ),
                None,
            )
            if host_index is None:
                # FIFO: do not let later jobs jump a blocked head.
                break
            plan[host_index] = self._share(plan[host_index], job)
        return plan

    def _share(self, host: JobGroup, job: Job) -> JobGroup:
        members = list(host.jobs) + [job]
        return self._pack(members)

    def _pack(self, members: Sequence[Job]) -> JobGroup:
        profiles = tuple(job.profile for job in members)
        offsets, _period = identity_ordering(profiles)
        return JobGroup(
            jobs=tuple(members),
            believed_profiles=profiles,
            offsets=offsets,
            coordinated=False,
        )
