"""Themis (NSDI '20): finish-time fairness via partial allocation auctions.

Themis targets *finish-time fairness*: the ratio rho between a job's
(projected) completion time in the shared cluster and its completion
time in an exclusively owned 1/n slice.  Each round, the jobs with the
worst rho (most unfairly treated) win the auction for the freed GPUs.

We reproduce the scheduling-relevant core: rho estimation from elapsed
plus remaining time against the job's ideal solo time, and a
highest-rho-first allocation with a visibility filter (Themis offers
resources to the worst (1-f) fraction to trade fairness for
efficiency; f = 0 considers everyone).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

from repro.core.group import JobGroup
from repro.jobs.job import Job
from repro.schedulers.base import Scheduler, fill_singletons, group_key

__all__ = ["ThemisScheduler"]


class ThemisScheduler(Scheduler):
    """Finish-time-fairness scheduler.

    Args:
        fairness_knob: Themis's f in [0, 1): each round only the worst
            (1 - f) fraction of jobs by rho is eligible, and the rest
            wait.  Zero auctions among all jobs.
        lease_seconds: Length of a winner's lease; winners keep their
            GPUs for at least this long in the real system.  It only
            affects rho projection here (the simulator's scheduling
            interval plays the lease role).
    """

    duration_aware = False

    def __init__(self, fairness_knob: float = 0.25, lease_seconds: float = 600.0) -> None:
        if not 0 <= fairness_knob < 1:
            raise ValueError("fairness_knob must be in [0, 1)")
        self.fairness_knob = fairness_knob
        self.lease_seconds = lease_seconds
        self.name = "Themis"

    def finish_time_fairness(self, job: Job, now: float) -> float:
        """Estimate rho = T_shared / T_ideal for a job.

        T_shared is the projected completion time if the job keeps its
        current effective rate: elapsed time so far plus remaining solo
        work (optimistic for running jobs, pessimistic for pending).
        T_ideal is the solo running time.  rho grows as a job waits.
        """
        ideal = job.spec.total_service_time
        if ideal <= 0:
            return 1.0
        elapsed = max(0.0, now - job.spec.submit_time)
        # Remaining work estimated from attained service: a
        # duration-unaware scheduler cannot read remaining iterations,
        # so Themis projects with what it can observe (attained vs
        # elapsed time).
        projected_total = elapsed + max(0.0, ideal - job.attained_service)
        return projected_total / ideal

    def decide(
        self,
        now: float,
        jobs: Sequence[Job],
        running: Dict[FrozenSet[int], JobGroup],
        total_gpus: int,
        reason: str = "tick",
    ) -> List[JobGroup]:
        scored = sorted(
            jobs,
            key=lambda job: (
                -self.finish_time_fairness(job, now),
                job.spec.submit_time,
                job.job_id,
            ),
        )
        if self.fairness_knob > 0 and len(scored) > 1:
            keep = max(1, int(len(scored) * (1.0 - self.fairness_knob)))
            scored = scored[:keep]
        return fill_singletons(scored, total_gpus)
