"""Scheduler registry: build any evaluated scheduler by name."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.profiler.profiler import ResourceProfiler
from repro.schedulers.antman import AntManScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.classic import (
    FifoScheduler,
    SjfScheduler,
    SrsfScheduler,
    SrtfScheduler,
)
from repro.schedulers.drf import DrfScheduler
from repro.schedulers.packing import TetrisScheduler
from repro.schedulers.themis import ThemisScheduler
from repro.schedulers.tiresias import TiresiasScheduler

__all__ = ["make_scheduler", "SCHEDULERS", "KNOWN_DURATION", "UNKNOWN_DURATION"]

def _muri(policy: str) -> Callable[[], Scheduler]:
    def factory() -> Scheduler:
        # Imported lazily: core.muri itself depends on schedulers.base.
        from repro.core.muri import MuriScheduler

        return MuriScheduler(policy=policy)

    return factory


SCHEDULERS: Dict[str, Callable[[], Scheduler]] = {
    "fifo": FifoScheduler,
    "sjf": SjfScheduler,
    "srtf": SrtfScheduler,
    "srsf": SrsfScheduler,
    "tiresias": TiresiasScheduler,
    "tiresias-gittins": lambda: TiresiasScheduler(variant="gittins"),
    "themis": ThemisScheduler,
    "antman": AntManScheduler,
    "tetris": TetrisScheduler,
    "drf": DrfScheduler,
    "muri-s": _muri("srsf"),
    "muri-l": _muri("las2d"),
}

#: Baseline sets per evaluation scenario (Tables 4 and 5).
KNOWN_DURATION = ("srtf", "srsf", "muri-s")
UNKNOWN_DURATION = ("tiresias", "themis", "antman", "muri-l")


def make_scheduler(
    name: str, profiler: Optional[ResourceProfiler] = None, **kwargs
) -> Scheduler:
    """Instantiate a scheduler by registry name.

    Args:
        name: One of ``SCHEDULERS`` (case-insensitive).
        profiler: Optional profiler, honoured by the Muri variants.
        **kwargs: Extra constructor arguments for Muri variants
            (``max_group_size``, ``matcher``, ``ordering``...).

    Raises:
        KeyError: For unknown names.
    """
    key = name.lower()
    if key not in SCHEDULERS:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {', '.join(sorted(SCHEDULERS))}"
        )
    if key.startswith("muri"):
        from repro.core.muri import MuriScheduler

        policy = "srsf" if key == "muri-s" else "las2d"
        return MuriScheduler(policy=policy, profiler=profiler, **kwargs)
    if kwargs:
        return SCHEDULERS[key](**kwargs)  # type: ignore[call-arg]
    return SCHEDULERS[key]()
