"""Scheduler registry: build any evaluated scheduler by name.

:func:`make_scheduler` is the single supported construction path for
schedulers — the CLI, the experiment harness, and the examples all go
through it.  :func:`register_scheduler` adds project-local policies to
the same namespace, and :func:`available_schedulers` lists what can be
built.  Indexing :data:`SCHEDULERS` directly for construction still
works but is deprecated in favour of the factory.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional

from repro.observe.tracer import Tracer
from repro.profiler.profiler import ResourceProfiler
from repro.schedulers.antman import AntManScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.classic import (
    FifoScheduler,
    SjfScheduler,
    SrsfScheduler,
    SrtfScheduler,
)
from repro.schedulers.drf import DrfScheduler
from repro.schedulers.packing import TetrisScheduler
from repro.schedulers.themis import ThemisScheduler
from repro.schedulers.tiresias import TiresiasScheduler

__all__ = [
    "make_scheduler",
    "register_scheduler",
    "available_schedulers",
    "SCHEDULERS",
    "KNOWN_DURATION",
    "UNKNOWN_DURATION",
]

def _muri(policy: str) -> Callable[..., Scheduler]:
    def factory(**kwargs) -> Scheduler:
        # Imported lazily: core.muri itself depends on schedulers.base.
        from repro.core.muri import MuriScheduler

        return MuriScheduler(policy=policy, **kwargs)

    return factory


def _elastic_muri(policy: str) -> Callable[..., Scheduler]:
    def factory(**kwargs) -> Scheduler:
        # Imported lazily: repro.elastic depends on core.muri.
        from repro.elastic.scheduler import ElasticMuriScheduler

        return ElasticMuriScheduler(policy=policy, **kwargs)

    return factory


class _Registry(Dict[str, Callable[..., Scheduler]]):
    """The scheduler-name -> factory table.

    Direct indexing for construction (``SCHEDULERS["srsf"]()``) is the
    pre-factory idiom and warns; use :func:`make_scheduler` instead.
    Membership tests, iteration, and ``.get`` stay silent — they are
    how the factory itself and the CLI inspect the table.
    """

    def __getitem__(self, key: str) -> Callable[..., Scheduler]:
        warnings.warn(
            "constructing schedulers via SCHEDULERS[name]() is deprecated; "
            "use repro.make_scheduler(name, ...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return super().__getitem__(key)


SCHEDULERS: Dict[str, Callable[..., Scheduler]] = _Registry({
    "fifo": FifoScheduler,
    "sjf": SjfScheduler,
    "srtf": SrtfScheduler,
    "srsf": SrsfScheduler,
    "tiresias": TiresiasScheduler,
    "tiresias-gittins": lambda: TiresiasScheduler(variant="gittins"),
    "themis": ThemisScheduler,
    "antman": AntManScheduler,
    "tetris": TetrisScheduler,
    "drf": DrfScheduler,
    "muri-s": _muri("srsf"),
    "muri-l": _muri("las2d"),
    "elastic-muri": _elastic_muri("srsf"),
    "elastic-muri-l": _elastic_muri("las2d"),
})

#: Baseline sets per evaluation scenario (Tables 4 and 5).
KNOWN_DURATION = ("srtf", "srsf", "muri-s")
UNKNOWN_DURATION = ("tiresias", "themis", "antman", "muri-l")


def available_schedulers() -> List[str]:
    """Every registry name :func:`make_scheduler` accepts, sorted."""
    return sorted(SCHEDULERS)


def register_scheduler(
    name: str,
    factory: Callable[..., Scheduler],
    replace: bool = False,
) -> None:
    """Add a scheduler factory under ``name`` (case-insensitive).

    Args:
        name: Registry name for :func:`make_scheduler`.
        factory: Callable returning a new scheduler; extra
            ``make_scheduler`` kwargs are forwarded to it, and the
            uniform options (tracer, event_regroup, workers) are
            applied afterwards via ``Scheduler.configure``.
        replace: Allow overwriting an existing registration.

    Raises:
        ValueError: When ``name`` is already registered and ``replace``
            is False.
    """
    key = name.lower()
    if key in SCHEDULERS and not replace:
        raise ValueError(
            f"scheduler {name!r} is already registered; "
            "pass replace=True to overwrite"
        )
    dict.__setitem__(SCHEDULERS, key, factory)


def make_scheduler(
    name: str,
    profiler: Optional[ResourceProfiler] = None,
    tracer: Optional[Tracer] = None,
    event_regroup: Optional[bool] = None,
    workers: Optional[int] = None,
    **kwargs,
) -> Scheduler:
    """Instantiate a scheduler by registry name.

    The single supported construction path: every built-in policy and
    anything added via :func:`register_scheduler` is available here.
    Every name — built-in or registered — is built the same way: the
    factory receives the constructor ``kwargs``, then
    :meth:`~repro.schedulers.base.Scheduler.configure` applies the
    uniform options (``tracer``, ``event_regroup``, ``workers``).  The
    fleet shard factory (:func:`repro.fleet.make_shard`) shares this
    exact keyword signature.

    Args:
        name: One of :func:`available_schedulers` (case-insensitive).
        profiler: Optional profiler, honoured by the Muri variants
            (forwarded to their factory when given).
        tracer: Optional :class:`~repro.observe.Tracer`; applied via
            ``configure`` so registered policies can be traced or
            invariant-checked without a custom factory.
        event_regroup: Run the full decision pass on arrival and
            completion events; ignored by policies without incremental
            state (see ``Scheduler.configure``).
        workers: Parallel-internals width (Muri's grouper pool);
            ignored elsewhere.
        **kwargs: Extra constructor arguments for Muri variants
            (``max_group_size``, ``matcher``, ``ordering``...).

    Raises:
        KeyError: For unknown names.
    """
    key = name.lower()
    if key not in SCHEDULERS:
        raise KeyError(
            f"unknown scheduler {name!r}; available: "
            f"{', '.join(available_schedulers())}"
        )
    factory = SCHEDULERS.get(key)
    if profiler is not None:
        kwargs["profiler"] = profiler
    scheduler = factory(**kwargs) if kwargs else factory()  # type: ignore[call-arg]
    return scheduler.configure(
        tracer=tracer, event_regroup=event_regroup, workers=workers
    )
