"""Schedulers: Muri and every baseline the paper compares against."""

from repro.schedulers.antman import AntManScheduler
from repro.schedulers.base import Scheduler, fill_singletons, group_key
from repro.schedulers.classic import (
    FifoScheduler,
    PriorityScheduler,
    SjfScheduler,
    SrsfScheduler,
    SrtfScheduler,
)
from repro.schedulers.drf import DrfScheduler
from repro.schedulers.packing import TetrisScheduler
from repro.schedulers.registry import (
    KNOWN_DURATION,
    SCHEDULERS,
    UNKNOWN_DURATION,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)
from repro.schedulers.themis import ThemisScheduler
from repro.schedulers.tiresias import TiresiasScheduler

__all__ = [
    "Scheduler",
    "group_key",
    "fill_singletons",
    "PriorityScheduler",
    "FifoScheduler",
    "SjfScheduler",
    "SrtfScheduler",
    "SrsfScheduler",
    "TiresiasScheduler",
    "ThemisScheduler",
    "AntManScheduler",
    "TetrisScheduler",
    "DrfScheduler",
    "make_scheduler",
    "register_scheduler",
    "available_schedulers",
    "SCHEDULERS",
    "KNOWN_DURATION",
    "UNKNOWN_DURATION",
]
