"""The wire protocol: newline-delimited JSON over a local socket.

Every request and response is one JSON object per line.  Requests
carry an ``op`` — ``submit``, ``status``, ``cancel``, ``drain``,
``result``, or ``ping`` — plus op-specific fields; responses carry
``ok`` (bool) plus either the op's payload or ``error`` (a structured
code, e.g. an admission-control rejection) and ``message``.

Job specs cross the wire as plain dicts (:func:`spec_to_dict` /
:func:`spec_from_dict`); only the scheduling-relevant fields travel —
stage durations, GPU count, submit time, iterations, and labels.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile

__all__ = [
    "spec_to_dict",
    "spec_from_dict",
    "encode_line",
    "decode_line",
    "error_response",
]

#: Ops a server accepts; anything else is a ``bad_request``.
KNOWN_OPS = ("submit", "status", "cancel", "drain", "result", "ping")


def spec_to_dict(spec: JobSpec) -> Dict[str, Any]:
    """Serialize a :class:`JobSpec` for the wire (JSON-compatible)."""
    return {
        "durations": list(spec.profile.durations),
        "num_gpus": spec.num_gpus,
        "submit_time": spec.submit_time,
        "num_iterations": spec.num_iterations,
        "model": spec.model,
        "name": spec.name,
    }


def spec_from_dict(payload: Dict[str, Any]) -> JobSpec:
    """Rebuild a :class:`JobSpec` from :func:`spec_to_dict` output.

    The job id is never taken from the wire: the service assigns ids so
    two clients cannot collide.

    Raises:
        KeyError: When ``durations`` is missing.
        ValueError: When a field fails :class:`JobSpec` validation.
    """
    return JobSpec(
        profile=StageProfile(tuple(float(d) for d in payload["durations"])),
        num_gpus=int(payload.get("num_gpus", 1)),
        submit_time=float(payload.get("submit_time", 0.0)),
        num_iterations=int(payload.get("num_iterations", 1)),
        model=str(payload.get("model", "custom")),
        name=payload.get("name"),
    )


def encode_line(message: Dict[str, Any]) -> bytes:
    """One protocol message as a JSON line (UTF-8, trailing newline)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message dict.

    Raises:
        ValueError: On malformed JSON or a non-object payload.
    """
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("protocol messages must be JSON objects")
    return message


def error_response(code: str, message: str) -> Dict[str, Any]:
    """A failure response with a structured error code."""
    return {"ok": False, "error": code, "message": message}
