"""The versioned wire protocol: typed messages over newline JSON.

Every request and response is one JSON object per line on a local
socket.  Since protocol **version 2** each message kind has a typed
dataclass with ``to_wire`` / ``from_wire`` — requests carry an ``op``
(``submit``, ``status``, ``cancel``, ``drain``, ``result``, ``ping``),
a ``version`` field, and for submissions a tenant id and an optional
virtual-cluster hint; responses carry ``ok`` (bool) plus either the
op's payload or a structured error code and message.

**Version 1** (PR 5's plain-dict format, no ``version`` field) remains
fully decodable: :func:`request_from_wire` treats a message without a
``version`` as version 1 and fills the defaults (tenant
``"default"``, no VC hint), and every response keeps the version-1
field names so old clients keep working against new servers.  See
``docs/fleet.md`` for the migration notes.

Job specs cross the wire as plain dicts (:func:`spec_to_dict` /
:func:`spec_from_dict`); only the scheduling-relevant fields travel —
stage durations, GPU count, submit time, iterations, and labels.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Optional, Type, Union

from repro.jobs.job import JobSpec
from repro.jobs.stage import StageProfile
from repro.sim.metrics import SimulationResult

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_TENANT",
    "KNOWN_OPS",
    "REJECTION_CODES",
    "Request",
    "SubmitRequest",
    "StatusRequest",
    "CancelRequest",
    "DrainRequest",
    "ResultRequest",
    "PingRequest",
    "Response",
    "SubmitResult",
    "StatusResult",
    "CancelResult",
    "DrainResult",
    "ResultPoll",
    "PingResult",
    "ErrorResult",
    "request_from_wire",
    "response_from_wire",
    "spec_to_dict",
    "spec_from_dict",
    "encode_line",
    "decode_line",
    "error_response",
]

#: Current protocol version.  Version 1 is PR 5's dict format (no
#: ``version`` field); version 2 added typed messages, tenant ids and
#: virtual-cluster routing hints for the fleet front-end.
PROTOCOL_VERSION = 2

#: Tenant a version-1 client (which cannot name one) submits under.
DEFAULT_TENANT = "default"

#: Ops a server accepts; anything else is a ``bad_request``.
KNOWN_OPS = ("submit", "status", "cancel", "drain", "result", "ping")

#: Admission-control error codes: the server refused the submission
#: (client surfaces :class:`~repro.service.daemon.SubmitRejected`).
#: Single-daemon codes come from PR 5; the tenant-scoped codes are
#: raised by the fleet front-end's quota and credit checks.
REJECTION_CODES = (
    "queue_full",
    "draining",
    "too_large",
    "stopped",
    "unknown_tenant",
    "quota_exceeded",
    "credits_exhausted",
    "no_shard",
)


def spec_to_dict(spec: JobSpec) -> Dict[str, Any]:
    """Serialize a :class:`JobSpec` for the wire (JSON-compatible)."""
    return {
        "durations": list(spec.profile.durations),
        "num_gpus": spec.num_gpus,
        "submit_time": spec.submit_time,
        "num_iterations": spec.num_iterations,
        "model": spec.model,
        "name": spec.name,
    }


def spec_from_dict(payload: Dict[str, Any]) -> JobSpec:
    """Rebuild a :class:`JobSpec` from :func:`spec_to_dict` output.

    The job id is never taken from the wire: the service assigns ids so
    two clients cannot collide.

    Raises:
        KeyError: When ``durations`` is missing.
        ValueError: When a field fails :class:`JobSpec` validation.
    """
    return JobSpec(
        profile=StageProfile(tuple(float(d) for d in payload["durations"])),
        num_gpus=int(payload.get("num_gpus", 1)),
        submit_time=float(payload.get("submit_time", 0.0)),
        num_iterations=int(payload.get("num_iterations", 1)),
        model=str(payload.get("model", "custom")),
        name=payload.get("name"),
    )


def _wire_version(payload: Dict[str, Any]) -> int:
    """The version a wire message claims; absent means version 1."""
    return int(payload.get("version", 1))


# -- requests ---------------------------------------------------------------


@dataclass(frozen=True)
class Request:
    """Base class of the typed client-to-server messages.

    Subclasses set :attr:`op` and implement :meth:`to_wire` /
    :meth:`from_wire`.  ``version`` records the protocol version the
    message arrived as (or will be sent as); version-1 messages decode
    with ``version=1`` so servers can count legacy traffic.
    """

    op: ClassVar[str] = ""

    def to_wire(self) -> Dict[str, Any]:
        """This request as a version-stamped wire dict."""
        raise NotImplementedError

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "Request":
        """Decode one wire dict into a typed request."""
        raise NotImplementedError


@dataclass(frozen=True)
class SubmitRequest(Request):
    """Submit one job, optionally on behalf of a tenant.

    Attributes:
        spec: The job being submitted.
        tenant: Tenant the submission is accounted to; version-1
            clients always submit as :data:`DEFAULT_TENANT`.
        vc: Optional virtual-cluster routing hint for the fleet
            front-end; a single daemon ignores it.
        version: Protocol version the message travelled as.
    """

    op: ClassVar[str] = "submit"

    spec: JobSpec
    tenant: str = DEFAULT_TENANT
    vc: Optional[str] = None
    version: int = PROTOCOL_VERSION

    def to_wire(self) -> Dict[str, Any]:
        """Wire form; version 1 drops the tenant/vc fields it predates."""
        wire: Dict[str, Any] = {"op": self.op, "spec": spec_to_dict(self.spec)}
        if self.version >= 2:
            wire["version"] = self.version
            wire["tenant"] = self.tenant
            if self.vc is not None:
                wire["vc"] = self.vc
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "SubmitRequest":
        """Decode; a message without ``version`` is version 1.

        Raises:
            KeyError: When the spec payload is missing or incomplete.
            ValueError: When a spec field fails validation.
        """
        return cls(
            spec=spec_from_dict(payload["spec"]),
            tenant=str(payload.get("tenant", DEFAULT_TENANT)),
            vc=payload.get("vc"),
            version=_wire_version(payload),
        )


@dataclass(frozen=True)
class StatusRequest(Request):
    """Service-wide counters, or one job's state when ``job_id`` given."""

    op: ClassVar[str] = "status"

    job_id: Optional[int] = None
    version: int = PROTOCOL_VERSION

    def to_wire(self) -> Dict[str, Any]:
        """Wire form; ``job_id`` only travels when set."""
        wire: Dict[str, Any] = {"op": self.op}
        if self.version >= 2:
            wire["version"] = self.version
        if self.job_id is not None:
            wire["job_id"] = self.job_id
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "StatusRequest":
        """Decode; a message without ``version`` is version 1."""
        job_id = payload.get("job_id")
        return cls(
            job_id=None if job_id is None else int(job_id),
            version=_wire_version(payload),
        )


@dataclass(frozen=True)
class CancelRequest(Request):
    """Cancel one job by id."""

    op: ClassVar[str] = "cancel"

    job_id: int = 0
    version: int = PROTOCOL_VERSION

    def to_wire(self) -> Dict[str, Any]:
        """Wire form."""
        wire: Dict[str, Any] = {"op": self.op, "job_id": self.job_id}
        if self.version >= 2:
            wire["version"] = self.version
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "CancelRequest":
        """Decode; a message without ``version`` is version 1.

        Raises:
            KeyError: When ``job_id`` is missing.
        """
        return cls(
            job_id=int(payload["job_id"]),
            version=_wire_version(payload),
        )


@dataclass(frozen=True)
class _FieldlessRequest(Request):
    """Shared shape of the requests that carry no operands."""

    version: int = PROTOCOL_VERSION

    def to_wire(self) -> Dict[str, Any]:
        """Wire form: just the op (and the version, from v2 on)."""
        wire: Dict[str, Any] = {"op": self.op}
        if self.version >= 2:
            wire["version"] = self.version
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "_FieldlessRequest":
        """Decode; a message without ``version`` is version 1."""
        return cls(version=_wire_version(payload))


@dataclass(frozen=True)
class DrainRequest(_FieldlessRequest):
    """Stop admitting; run admitted work to completion."""

    op: ClassVar[str] = "drain"


@dataclass(frozen=True)
class ResultRequest(_FieldlessRequest):
    """Poll for the drained final result."""

    op: ClassVar[str] = "result"


@dataclass(frozen=True)
class PingRequest(_FieldlessRequest):
    """Liveness check."""

    op: ClassVar[str] = "ping"


_REQUEST_TYPES: Dict[str, Type[Request]] = {
    cls.op: cls
    for cls in (
        SubmitRequest,
        StatusRequest,
        CancelRequest,
        DrainRequest,
        ResultRequest,
        PingRequest,
    )
}


def request_from_wire(payload: Dict[str, Any]) -> Request:
    """Decode one wire dict into its typed request.

    Messages without a ``version`` field are decoded as protocol
    version 1 (the PR-5 format); everything else must carry a version
    no newer than :data:`PROTOCOL_VERSION`.

    Raises:
        ValueError: For an unknown ``op`` or an unsupported version.
        KeyError: When an op-specific required field is missing.
    """
    op = payload.get("op")
    request_type = _REQUEST_TYPES.get(op)  # type: ignore[arg-type]
    if request_type is None:
        raise ValueError(f"unknown op {op!r}")
    version = _wire_version(payload)
    if version < 1 or version > PROTOCOL_VERSION:
        raise ValueError(
            f"unsupported protocol version {version} "
            f"(this server speaks 1..{PROTOCOL_VERSION})"
        )
    return request_type.from_wire(payload)


# -- responses --------------------------------------------------------------


@dataclass(frozen=True)
class Response:
    """Base class of the typed server-to-client messages.

    Every response's wire form keeps the version-1 field names, so a
    legacy client reading ``response["job_id"]`` (etc.) keeps working
    regardless of the server's protocol version.
    """

    def to_wire(self) -> Dict[str, Any]:
        """This response as a wire dict (``ok`` plus the payload)."""
        raise NotImplementedError


@dataclass(frozen=True)
class SubmitResult(Response):
    """A successful submission: the assigned id and where it landed.

    Attributes:
        job_id: Service-assigned job id.
        tenant: Tenant the job was accounted to.
        vc: Virtual cluster the fleet routed the job to; None from a
            single (unsharded) daemon.
        version: Protocol version of the response.
    """

    job_id: int
    tenant: str = DEFAULT_TENANT
    vc: Optional[str] = None
    version: int = PROTOCOL_VERSION

    def __int__(self) -> int:
        """The assigned job id, for terse call sites."""
        return self.job_id

    def to_wire(self) -> Dict[str, Any]:
        """Wire form; ``job_id`` stays where version-1 clients read it."""
        wire: Dict[str, Any] = {
            "ok": True,
            "version": self.version,
            "job_id": self.job_id,
            "tenant": self.tenant,
        }
        if self.vc is not None:
            wire["vc"] = self.vc
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "SubmitResult":
        """Decode a successful submit response."""
        return cls(
            job_id=int(payload["job_id"]),
            tenant=str(payload.get("tenant", DEFAULT_TENANT)),
            vc=payload.get("vc"),
            version=_wire_version(payload),
        )


@dataclass(frozen=True)
class StatusResult(Response):
    """A status snapshot (service-wide or one job's).

    The snapshot keys mirror :meth:`SchedulerService.status`; the
    mapping interface (``result["pending"]``, ``result.get(...)``)
    keeps call sites terse while the object itself is versioned and
    typed.
    """

    data: Dict[str, Any] = field(default_factory=dict)
    version: int = PROTOCOL_VERSION

    def __getitem__(self, key: str) -> Any:
        """Indexing delegates to the snapshot mapping."""
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        """``dict.get`` over the snapshot mapping."""
        return self.data.get(key, default)

    def __contains__(self, key: str) -> bool:
        """Membership delegates to the snapshot mapping."""
        return key in self.data

    def to_wire(self) -> Dict[str, Any]:
        """Wire form; the snapshot stays under ``status`` as in v1."""
        return {"ok": True, "version": self.version, "status": dict(self.data)}

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "StatusResult":
        """Decode a successful status response."""
        return cls(
            data=dict(payload.get("status", {})),
            version=_wire_version(payload),
        )


@dataclass(frozen=True)
class CancelResult(Response):
    """Outcome of a cancel: whether the job existed and was stopped."""

    cancelled: bool = False
    version: int = PROTOCOL_VERSION

    def __bool__(self) -> bool:
        """Truthiness is the cancellation outcome."""
        return self.cancelled

    def to_wire(self) -> Dict[str, Any]:
        """Wire form."""
        return {
            "ok": True,
            "version": self.version,
            "cancelled": self.cancelled,
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "CancelResult":
        """Decode a successful cancel response."""
        return cls(
            cancelled=bool(payload.get("cancelled")),
            version=_wire_version(payload),
        )


@dataclass(frozen=True)
class DrainResult(Response):
    """The service acknowledged a drain request."""

    draining: bool = True
    version: int = PROTOCOL_VERSION

    def to_wire(self) -> Dict[str, Any]:
        """Wire form."""
        return {
            "ok": True,
            "version": self.version,
            "draining": self.draining,
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "DrainResult":
        """Decode a successful drain response."""
        return cls(
            draining=bool(payload.get("draining")),
            version=_wire_version(payload),
        )


@dataclass(frozen=True)
class ResultPoll(Response):
    """One poll for the drained result: done or not, plus the payload."""

    done: bool = False
    result: Optional[SimulationResult] = None
    version: int = PROTOCOL_VERSION

    def to_wire(self) -> Dict[str, Any]:
        """Wire form; the result dict only travels once drained."""
        wire: Dict[str, Any] = {
            "ok": True,
            "version": self.version,
            "done": self.done,
        }
        if self.done and self.result is not None:
            wire["result"] = self.result.to_dict()
        return wire

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "ResultPoll":
        """Decode a successful result poll."""
        raw = payload.get("result")
        return cls(
            done=bool(payload.get("done")),
            result=None if raw is None else SimulationResult.from_dict(raw),
            version=_wire_version(payload),
        )


@dataclass(frozen=True)
class PingResult(Response):
    """Liveness acknowledgement."""

    pong: bool = True
    version: int = PROTOCOL_VERSION

    def to_wire(self) -> Dict[str, Any]:
        """Wire form."""
        return {"ok": True, "version": self.version, "pong": self.pong}

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "PingResult":
        """Decode a successful ping response."""
        return cls(
            pong=bool(payload.get("pong")),
            version=_wire_version(payload),
        )


@dataclass(frozen=True)
class ErrorResult(Response):
    """A failure response with a structured error code.

    Attributes:
        code: Machine-readable error code; admission-control codes are
            listed in :data:`REJECTION_CODES`.
        message: Human-readable context.
    """

    code: str = "unknown"
    message: str = ""
    version: int = PROTOCOL_VERSION

    def to_wire(self) -> Dict[str, Any]:
        """Wire form; field names match version 1 exactly."""
        return {
            "ok": False,
            "version": self.version,
            "error": self.code,
            "message": self.message,
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "ErrorResult":
        """Decode a failure response."""
        return cls(
            code=str(payload.get("error", "unknown")),
            message=str(payload.get("message", "")),
            version=_wire_version(payload),
        )


_RESPONSE_TYPES: Dict[str, Type[Response]] = {
    "submit": SubmitResult,
    "status": StatusResult,
    "cancel": CancelResult,
    "drain": DrainResult,
    "result": ResultPoll,
    "ping": PingResult,
}


def response_from_wire(op: str, payload: Dict[str, Any]) -> Response:
    """Decode one wire response for ``op`` into its typed form.

    Failures (``ok`` false) decode as :class:`ErrorResult` regardless
    of the op.

    Raises:
        ValueError: For an unknown ``op`` on a successful response.
    """
    if not payload.get("ok"):
        return ErrorResult.from_wire(payload)
    response_type = _RESPONSE_TYPES.get(op)
    if response_type is None:
        raise ValueError(f"unknown op {op!r}")
    return response_type.from_wire(payload)


# -- line codec -------------------------------------------------------------


def encode_line(message: Union[Dict[str, Any], Request, Response]) -> bytes:
    """One protocol message as a JSON line (UTF-8, trailing newline).

    Typed messages are serialized through their ``to_wire``; raw dicts
    are accepted for version-1 compatibility and low-level tests.
    """
    if isinstance(message, (Request, Response)):
        message = message.to_wire()
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message dict.

    Raises:
        ValueError: On malformed JSON or a non-object payload.
    """
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("protocol messages must be JSON objects")
    return message


def error_response(code: str, message: str) -> Dict[str, Any]:
    """A version-1 failure response dict (kept for wire compatibility).

    New code should build an :class:`ErrorResult`; this helper remains
    because version-1 peers expect exactly this three-field shape.
    """
    return {"ok": False, "error": code, "message": message}
