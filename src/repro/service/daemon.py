"""The scheduler daemon: online submission over the batch machinery.

A :class:`SchedulerService` holds one
:class:`~repro.sim.simulator.ClusterSimulator` open (via its
``begin``/``step``/``finalize`` API) and exposes the client surface of
an always-on scheduler:

* **submit** — admission-controlled: oversized jobs, a full pending
  queue, or a draining service yield a structured
  :class:`SubmitRejected` instead of silent queue growth;
* **status** — service-wide counts or one job's lifecycle state;
* **cancel** — drops a queued job, or stops a running job's group and
  requeues its partners;
* **drain** — stop admitting, let admitted work finish, then flush a
  final :class:`~repro.sim.metrics.SimulationResult`.

State mutations are plain synchronous methods, so the service is
driven either by :meth:`run_sync` (deterministic virtual time — tests,
CI, `repro serve --drain`) or by the asyncio :meth:`run` loop paced by
a :class:`~repro.service.clock.VirtualClock` or
:class:`~repro.service.clock.WallClock` (the socket daemon).  All
methods must be called from one thread/event loop; cross-process
clients go through :class:`~repro.service.server.ServiceServer`.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro.jobs.job import JobSpec, JobStatus
from repro.observe.events import EventCategory
from repro.observe.tracer import Tracer
from repro.service.clock import VirtualClock
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import ClusterSimulator

__all__ = ["SchedulerService", "SubmitRejected"]


class SubmitRejected(Exception):
    """Admission control refused a submission.

    Attributes:
        code: Machine-readable rejection reason.  Single-daemon codes
            are ``"queue_full"``, ``"draining"``, ``"too_large"``, and
            ``"stopped"``; the fleet front-end adds the tenant-scoped
            codes ``"unknown_tenant"``, ``"quota_exceeded"``,
            ``"credits_exhausted"``, and ``"no_shard"`` (the full list
            is :data:`repro.service.protocol.REJECTION_CODES`).
        tenant: Tenant whose submission was refused, when known.
        details: Structured context for the refusal (e.g. the quota
            bound that was hit); empty for plain daemon rejects.
    """

    def __init__(
        self,
        code: str,
        message: str,
        tenant: Optional[str] = None,
        details: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.tenant = tenant
        self.details = details or {}


class SchedulerService:
    """An always-on scheduling service over one simulator.

    Args:
        simulator: The configured simulator to hold open.  For the
            paper-faithful event-driven mode, build it with
            ``reschedule_on_arrival=True``, ``arrival_reason="arrival"``
            and ``backfill_on_completion=True``, and give Muri
            ``event_regroup=True`` so arrival/completion events regroup
            (incrementally, via the per-bucket decision cache) instead
            of serving a stale backfill reservoir.
        max_pending: Admission bound on jobs in the PENDING state
            (queued, arrived-but-waiting, or preempted).  Submissions
            beyond it are rejected with code ``"queue_full"``.
        clock: Pacing driver for :meth:`run`; defaults to a
            :class:`~repro.service.clock.VirtualClock`.
        trace_name: Workload label on the final result.
        tracer: Optional tracer for service events/counters; defaults
            to the simulator's tracer, so one
            :class:`~repro.verify.InvariantChecker` can arm the whole
            live loop.
    """

    def __init__(
        self,
        simulator: ClusterSimulator,
        max_pending: int = 1024,
        clock: Optional[object] = None,
        trace_name: str = "service",
        tracer: Optional[Tracer] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.simulator = simulator
        self.max_pending = max_pending
        self.clock = clock if clock is not None else VirtualClock()
        self.tracer = tracer if tracer is not None else simulator.tracer
        self.state = simulator.begin([], trace_name, allow_empty=True)
        self.draining = False
        self.result: Optional[SimulationResult] = None
        self._wake: Optional[asyncio.Event] = None

    # -- client API --------------------------------------------------------

    def submit(self, spec: JobSpec) -> int:
        """Admit one job; returns its id.

        Raises:
            SubmitRejected: With a structured code when admission
                control refuses the job (see class docstring).
        """
        if self.result is not None or self.state.finalized:
            self._reject("stopped", spec, "service already drained")
        if self.draining:
            self._reject("draining", spec, "service is draining")
        total_gpus = self.simulator.cluster.total_gpus
        if spec.num_gpus > total_gpus:
            self._reject(
                "too_large", spec,
                f"{spec.name} needs {spec.num_gpus} GPUs but the "
                f"cluster has {total_gpus}",
            )
        if self.pending_count >= self.max_pending:
            self._reject(
                "queue_full", spec,
                f"pending queue is at its bound ({self.max_pending})",
            )
        job = self.simulator.inject(self.state, spec)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                EventCategory.SERVICE,
                "service.submit",
                self.state.now,
                job=job.job_id,
                gpus=spec.num_gpus,
                submit_time=spec.submit_time,
            )
            tracer.count("service.submitted")
        self._notify()
        return job.job_id

    def cancel(self, job_id: int) -> bool:
        """Cancel one job; True when it existed and was not terminal."""
        cancelled = self.simulator.cancel(self.state, job_id)
        tracer = self.tracer
        if cancelled and tracer is not None and tracer.enabled:
            tracer.emit(
                EventCategory.SERVICE,
                "service.cancel",
                self.state.now,
                job=job_id,
            )
            tracer.count("service.cancelled")
        if cancelled:
            self._notify()
        return cancelled

    def status(self, job_id: Optional[int] = None) -> Dict[str, Any]:
        """Service-wide counters, or one job's state when ``job_id`` given.

        Raises:
            KeyError: For an unknown ``job_id``.
        """
        state = self.state
        if job_id is not None:
            job = state.jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job id {job_id}")
            return {
                "job_id": job_id,
                "status": job.status.value,
                "submit_time": job.spec.submit_time,
                "remaining_iterations": job.remaining_iterations,
                "finish_time": job.finish_time,
            }
        by_status = {status: 0 for status in JobStatus}
        for job in state.jobs.values():
            by_status[job.status] += 1
        return {
            "now": state.now,
            "draining": self.draining,
            "done": self.is_done,
            "jobs": len(state.jobs),
            "pending": by_status[JobStatus.PENDING],
            "running": by_status[JobStatus.RUNNING],
            "finished": by_status[JobStatus.FINISHED],
            "cancelled": by_status[JobStatus.FAILED],
            "free_gpus": self.simulator.cluster.free_gpus,
            "max_pending": self.max_pending,
        }

    def drain(self) -> None:
        """Stop admitting; admitted work runs to completion.

        Idempotent.  Once every admitted job is terminal the driver
        loop flushes the final result (see :meth:`finish`).
        """
        if self.draining:
            return
        self.draining = True
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                EventCategory.SERVICE,
                "service.drain",
                self.state.now,
                jobs=len(self.state.jobs),
                unfinished=self.state.unfinished,
            )
        self._notify()

    # -- lifecycle ---------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Jobs currently occupying pending-queue slots.

        Every non-terminal job is either RUNNING (a member of a live
        group) or PENDING (queued, not-yet-arrived, or preempted), so
        the count is derived from the simulator's maintained active
        counter minus the running members — O(groups), not O(jobs),
        which keeps admission control flat on long streams.
        """
        running = sum(
            len(rgroup.active) for rgroup in self.state.running.values()
        )
        return self.state.unfinished - running

    @property
    def is_done(self) -> bool:
        """Draining and every admitted job is terminal."""
        return self.draining and self.state.unfinished == 0

    def step(self) -> None:
        """Advance the underlying simulation by one iteration."""
        self.simulator.step(self.state)

    def run_sync(self, drain: bool = True) -> SimulationResult:
        """Drive the service to completion synchronously.

        Deterministic (virtual-time) driver for tests and
        ``repro serve --drain``: no asyncio, no clock.

        Args:
            drain: Call :meth:`drain` first (the default); pass False
                when a drain was already requested.

        Returns:
            The final flushed result.
        """
        if drain:
            self.drain()
        while not self.is_done:
            self.simulator.step(self.state)
        return self.finish()

    async def run(self) -> SimulationResult:
        """The daemon main loop: drive until drained and complete.

        Each iteration steps the simulation (which jumps simulated
        time to the next event horizon) and then pauses on the
        configured clock until real time catches up to that horizon;
        while no admitted work remains and no drain was requested the
        loop idles without burning scheduler ticks.  Submissions,
        cancels, and drain requests wake the loop immediately; a live
        submission therefore lands on the next horizon boundary.
        """
        self._wake = asyncio.Event()
        try:
            while not self.is_done:
                if self.state.unfinished == 0:
                    # Idle: wait for a submission or a drain request.
                    await self._wake.wait()
                    self._wake.clear()
                    continue
                previous = self.state.now
                self.simulator.step(self.state)
                # Let real time catch up to the horizon the step
                # advanced to before its events are processed (or the
                # drained result is reported) in the next iteration.
                await self.clock.pause(previous, self.state.now, self._wake)
                self._wake.clear()
        finally:
            self._wake = None
        return self.finish()

    def finish(self) -> SimulationResult:
        """Flush and return the final result (idempotent)."""
        if self.result is None:
            self.result = self.simulator.finalize(self.state)
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.emit(
                    EventCategory.SERVICE,
                    "service.drained",
                    self.state.now,
                    jobs=len(self.state.jobs),
                    finished=len(self.result.jcts),
                )
        return self.result

    # -- internals ---------------------------------------------------------

    def _reject(self, code: str, spec: JobSpec, message: str) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                EventCategory.SERVICE,
                "service.reject",
                self.state.now,
                code=code,
                job=spec.job_id,
                gpus=spec.num_gpus,
            )
            tracer.count(f"service.rejected.{code}")
        raise SubmitRejected(code, message)

    def _notify(self) -> None:
        if self._wake is not None:
            self._wake.set()
