"""Online scheduling service: a long-lived daemon over the simulator.

The paper's prototype is an always-on scheduler — jobs arrive
continuously and Muri regroups on scheduling events (section 5).  This
package wraps the batch machinery (:class:`~repro.sim.ClusterSimulator`
+ any :class:`~repro.schedulers.base.Scheduler`) behind an event loop
with an online submission path:

* :class:`SchedulerService` — the daemon core: ``submit`` / ``status``
  / ``cancel`` / ``drain`` with admission control and a graceful-drain
  lifecycle, usable in-process or behind a socket;
* :class:`VirtualClock` / :class:`WallClock` — deterministic
  (test/CI) and real-time pacing drivers for the daemon loop;
* :class:`ServiceServer` / :class:`ServiceClient` — a versioned,
  typed newline-delimited-JSON protocol over a local Unix socket
  (``repro serve``); client methods return typed results
  (:class:`SubmitResult` and friends), and the PR-5 dict format stays
  decodable as protocol version 1.

The sharded multi-tenant front-end built on top of this daemon lives
in :mod:`repro.fleet`.  See ``docs/service.md`` and ``docs/fleet.md``
for lifecycle, semantics, and wire-versioning notes.
"""

from repro.service.clock import VirtualClock, WallClock
from repro.service.daemon import SchedulerService, SubmitRejected
from repro.service.protocol import (
    PROTOCOL_VERSION,
    REJECTION_CODES,
    CancelRequest,
    CancelResult,
    DrainRequest,
    DrainResult,
    PingRequest,
    PingResult,
    Request,
    Response,
    ResultPoll,
    ResultRequest,
    StatusRequest,
    StatusResult,
    SubmitRequest,
    SubmitResult,
    spec_from_dict,
    spec_to_dict,
)
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.server import LineServer, ServiceServer

__all__ = [
    "SchedulerService",
    "SubmitRejected",
    "VirtualClock",
    "WallClock",
    "LineServer",
    "ServiceServer",
    "ServiceClient",
    "ServiceClientError",
    "PROTOCOL_VERSION",
    "REJECTION_CODES",
    "Request",
    "Response",
    "SubmitRequest",
    "StatusRequest",
    "CancelRequest",
    "DrainRequest",
    "ResultRequest",
    "PingRequest",
    "SubmitResult",
    "StatusResult",
    "CancelResult",
    "DrainResult",
    "ResultPoll",
    "PingResult",
    "spec_to_dict",
    "spec_from_dict",
]
