"""Online scheduling service: a long-lived daemon over the simulator.

The paper's prototype is an always-on scheduler — jobs arrive
continuously and Muri regroups on scheduling events (section 5).  This
package wraps the batch machinery (:class:`~repro.sim.ClusterSimulator`
+ any :class:`~repro.schedulers.base.Scheduler`) behind an event loop
with an online submission path:

* :class:`SchedulerService` — the daemon core: ``submit`` / ``status``
  / ``cancel`` / ``drain`` with admission control and a graceful-drain
  lifecycle, usable in-process or behind a socket;
* :class:`VirtualClock` / :class:`WallClock` — deterministic
  (test/CI) and real-time pacing drivers for the daemon loop;
* :class:`ServiceServer` / :class:`ServiceClient` — a
  newline-delimited-JSON protocol over a local Unix socket
  (``repro serve``).

See ``docs/service.md`` for the lifecycle and semantics.
"""

from repro.service.clock import VirtualClock, WallClock
from repro.service.daemon import SchedulerService, SubmitRejected
from repro.service.protocol import spec_from_dict, spec_to_dict
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.server import ServiceServer

__all__ = [
    "SchedulerService",
    "SubmitRejected",
    "VirtualClock",
    "WallClock",
    "ServiceServer",
    "ServiceClient",
    "ServiceClientError",
    "spec_to_dict",
    "spec_from_dict",
]
