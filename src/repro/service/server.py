"""Unix-socket front end for the scheduler daemon.

One asyncio task drives :meth:`SchedulerService.run`; a Unix-socket
server shares the same event loop and dispatches protocol requests
(see :mod:`repro.service.protocol`) into the service's synchronous
client API.  Because both run on one loop, no locking is needed: a
request is handled between simulator steps, never during one.

The connection plumbing lives in :class:`LineServer`, which the fleet
front-end (:class:`repro.fleet.server.FleetServer`) reuses: a subclass
implements :meth:`LineServer.dispatch` and inherits the line loop, the
post-drain linger, and socket cleanup.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Any, Dict

from repro.service.daemon import SchedulerService, SubmitRejected
from repro.service.protocol import (
    CancelRequest,
    CancelResult,
    DrainRequest,
    DrainResult,
    PingRequest,
    PingResult,
    Request,
    Response,
    ResultPoll,
    ResultRequest,
    StatusRequest,
    StatusResult,
    SubmitRequest,
    SubmitResult,
    decode_line,
    encode_line,
    error_response,
    request_from_wire,
)
from repro.sim.metrics import SimulationResult

__all__ = ["LineServer", "ServiceServer"]


class LineServer:
    """Newline-JSON request/response loop on a Unix socket.

    The transport shared by the single-daemon server and the fleet
    front-end: accepts connections, reads one request per line,
    answers one response per line, and — after the served workload
    drains — lingers briefly so connected clients can still fetch the
    final result before the socket goes away.

    Args:
        path: Filesystem path of the Unix socket; created by
            :meth:`serve_sockets` and removed on exit.
        linger: Grace period (real seconds) after the drain completes
            during which connected clients can still poll before the
            server hangs up on them.
    """

    def __init__(self, path: str, linger: float = 5.0) -> None:
        self.path = path
        self.linger = linger
        self._writers: set = set()

    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one wire request; return the wire response.

        Subclasses implement this; it must never raise (protocol
        errors become ``error_response`` dicts).
        """
        raise NotImplementedError

    async def serve_sockets(self, run) -> SimulationResult:
        """Accept connections while awaiting ``run``; then wind down.

        Args:
            run: Awaitable driving the served workload (the daemon's
                or fleet's main loop); its result is returned once the
                linger period ends.
        """
        server = await asyncio.start_unix_server(
            self._handle_client, path=self.path
        )
        try:
            async with server:
                result = await run
            # The run is drained but connected clients may still be
            # polling for the final result: linger until they hang up
            # (or the grace period passes), then close any stragglers
            # so handler tasks end via EOF instead of being cancelled
            # at loop teardown (which asyncio logs as an error).
            deadline = time.monotonic() + self.linger
            while self._writers and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
            for writer in list(self._writers):
                writer.close()
            for _ in range(100):
                if not self._writers:
                    break
                await asyncio.sleep(0)
            return result
        finally:
            try:
                os.unlink(self.path)
            except OSError:
                pass

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One client connection: a request/response line loop."""
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = decode_line(line)
                except ValueError as error:
                    response = error_response("bad_request", str(error))
                else:
                    response = self.dispatch(request)
                writer.write(encode_line(response))
                await writer.drain()
        finally:
            self._writers.discard(writer)
            writer.close()


class ServiceServer(LineServer):
    """Serves one :class:`SchedulerService` on a Unix socket.

    Args:
        service: The daemon to expose.
        path: Filesystem path of the Unix socket; created on
            :meth:`serve` and removed on exit.
        linger: Grace period (real seconds) after the drain completes
            during which connected clients can still fetch the final
            result before the server hangs up on them.
    """

    def __init__(
        self,
        service: SchedulerService,
        path: str,
        linger: float = 5.0,
    ) -> None:
        super().__init__(path, linger)
        self.service = service

    async def serve(self) -> SimulationResult:
        """Run the daemon and the socket server until drained.

        Returns:
            The final flushed result once the service drains (a client
            ``drain`` op, or a drain requested before the call).
        """
        return await self.serve_sockets(self.service.run())

    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one wire request to the service; never raises.

        Version-1 dicts (no ``version`` field) and version-2 messages
        both decode through :func:`request_from_wire`; the response is
        the typed handler's wire form.
        """
        try:
            message = request_from_wire(request)
        except ValueError as error:
            return error_response("bad_request", str(error))
        except KeyError as error:
            return error_response("bad_request", f"missing field {error}")
        try:
            return self.handle(message).to_wire()
        except SubmitRejected as rejection:
            wire = error_response(rejection.code, str(rejection))
            if rejection.tenant is not None:
                wire["tenant"] = rejection.tenant
            if rejection.details:
                wire["details"] = rejection.details
            return wire
        except KeyError as error:
            return error_response("unknown_job", str(error))
        except (TypeError, ValueError) as error:
            return error_response("bad_request", str(error))

    def handle(self, message: Request) -> Response:
        """Apply one typed request to the service; returns the result.

        Raises:
            SubmitRejected: When admission control refuses a submit.
            KeyError: For a status/cancel naming an unknown job.
        """
        service = self.service
        if isinstance(message, PingRequest):
            return PingResult()
        if isinstance(message, SubmitRequest):
            job_id = service.submit(message.spec)
            return SubmitResult(job_id=job_id, tenant=message.tenant)
        if isinstance(message, StatusRequest):
            return StatusResult(data=service.status(message.job_id))
        if isinstance(message, CancelRequest):
            return CancelResult(cancelled=service.cancel(message.job_id))
        if isinstance(message, DrainRequest):
            service.drain()
            return DrainResult()
        if isinstance(message, ResultRequest):
            if service.result is None:
                return ResultPoll(done=False)
            return ResultPoll(done=True, result=service.result)
        raise ValueError(f"unhandled request type {type(message).__name__}")
