"""Unix-socket front end for the scheduler daemon.

One asyncio task drives :meth:`SchedulerService.run`; a Unix-socket
server shares the same event loop and dispatches protocol requests
(see :mod:`repro.service.protocol`) into the service's synchronous
client API.  Because both run on one loop, no locking is needed: a
request is handled between simulator steps, never during one.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Any, Dict

from repro.service.daemon import SchedulerService, SubmitRejected
from repro.service.protocol import (
    KNOWN_OPS,
    decode_line,
    encode_line,
    error_response,
    spec_from_dict,
)
from repro.sim.metrics import SimulationResult

__all__ = ["ServiceServer"]


class ServiceServer:
    """Serves one :class:`SchedulerService` on a Unix socket.

    Args:
        service: The daemon to expose.
        path: Filesystem path of the Unix socket; created on
            :meth:`serve` and removed on exit.
        linger: Grace period (real seconds) after the drain completes
            during which connected clients can still fetch the final
            result before the server hangs up on them.
    """

    def __init__(
        self,
        service: SchedulerService,
        path: str,
        linger: float = 5.0,
    ) -> None:
        self.service = service
        self.path = path
        self.linger = linger
        self._writers: set = set()

    async def serve(self) -> SimulationResult:
        """Run the daemon and the socket server until drained.

        Returns:
            The final flushed result once the service drains (a client
            ``drain`` op, or a drain requested before the call).
        """
        server = await asyncio.start_unix_server(
            self._handle_client, path=self.path
        )
        try:
            async with server:
                result = await self.service.run()
            # The run is drained but connected clients may still be
            # polling for the final result: linger until they hang up
            # (or the grace period passes), then close any stragglers
            # so handler tasks end via EOF instead of being cancelled
            # at loop teardown (which asyncio logs as an error).
            deadline = time.monotonic() + self.linger
            while self._writers and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
            for writer in list(self._writers):
                writer.close()
            for _ in range(100):
                if not self._writers:
                    break
                await asyncio.sleep(0)
            return result
        finally:
            try:
                os.unlink(self.path)
            except OSError:
                pass

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One client connection: a request/response line loop."""
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = decode_line(line)
                except ValueError as error:
                    response = error_response("bad_request", str(error))
                else:
                    response = self.dispatch(request)
                writer.write(encode_line(response))
                await writer.drain()
        finally:
            self._writers.discard(writer)
            writer.close()

    def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one protocol request to the service; never raises."""
        op = request.get("op")
        if op not in KNOWN_OPS:
            return error_response("bad_request", f"unknown op {op!r}")
        try:
            return self._dispatch_known(op, request)
        except SubmitRejected as rejection:
            return error_response(rejection.code, str(rejection))
        except KeyError as error:
            return error_response("unknown_job", str(error))
        except (TypeError, ValueError) as error:
            return error_response("bad_request", str(error))

    def _dispatch_known(
        self, op: str, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        service = self.service
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "submit":
            spec = spec_from_dict(request["spec"])
            return {"ok": True, "job_id": service.submit(spec)}
        if op == "status":
            job_id = request.get("job_id")
            payload = service.status(
                None if job_id is None else int(job_id)
            )
            return {"ok": True, "status": payload}
        if op == "cancel":
            cancelled = service.cancel(int(request["job_id"]))
            return {"ok": True, "cancelled": cancelled}
        if op == "drain":
            service.drain()
            return {"ok": True, "draining": True}
        # op == "result": poll for the drained result.
        if service.result is None:
            return {"ok": True, "done": False}
        return {
            "ok": True,
            "done": True,
            "result": service.result.to_dict(),
        }
