"""Pacing drivers for the service loop.

The daemon advances the simulation from one event horizon to the next;
the clock decides how long to *really* wait after each jump before the
loop acts on it (processes the horizon's events, reports a drain).

* :class:`VirtualClock` never waits: simulated time jumps straight
  through the horizons, so a drained run is deterministic and as fast
  as the machine allows (the test/CI driver).
* :class:`WallClock` anchors simulated time to the wall clock: the
  effects of simulated time ``t`` become visible no earlier than
  ``t * time_scale`` real seconds after the service started, and the
  sleep is cut short whenever a client submission, cancel, or drain
  arrives (the wake event).
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

__all__ = ["VirtualClock", "WallClock"]


class VirtualClock:
    """Deterministic driver: never blocks on real time.

    ``pause`` yields control once (so socket clients sharing the event
    loop are served) and returns immediately — simulated time is free
    to jump to the next horizon.
    """

    async def pause(
        self,
        sim_now: float,
        sim_deadline: Optional[float],
        wake: Optional[asyncio.Event] = None,
    ) -> None:
        """Yield to other tasks without waiting for real time."""
        await asyncio.sleep(0)


class WallClock:
    """Real-time driver: simulated seconds map to real seconds.

    Args:
        time_scale: Real seconds per simulated second.  ``1.0`` runs
            in real time; ``0.01`` runs 100x faster (useful for
            demos).  Must be > 0.

    The mapping is anchored at the first :meth:`pause`, so a long
    simulation does not drift: each horizon gets an absolute real
    deadline instead of accumulating per-sleep rounding.
    """

    def __init__(self, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be > 0")
        self.time_scale = time_scale
        self._epoch_real: Optional[float] = None
        self._epoch_sim = 0.0

    async def pause(
        self,
        sim_now: float,
        sim_deadline: Optional[float],
        wake: Optional[asyncio.Event] = None,
    ) -> None:
        """Sleep until ``sim_deadline``'s real time, or until woken.

        Args:
            sim_now: Current simulated time.
            sim_deadline: Simulated time of the next event; None means
                nothing is scheduled (no wait).
            wake: Optional event that interrupts the sleep early (a
                submission or drain changed the horizon).
        """
        if sim_deadline is None:
            await asyncio.sleep(0)
            return
        if self._epoch_real is None:
            self._epoch_real = time.monotonic()
            self._epoch_sim = sim_now
        real_deadline = self._epoch_real + (
            (sim_deadline - self._epoch_sim) * self.time_scale
        )
        delay = real_deadline - time.monotonic()
        if delay <= 0:
            await asyncio.sleep(0)
            return
        if wake is None:
            await asyncio.sleep(delay)
            return
        try:
            await asyncio.wait_for(wake.wait(), timeout=delay)
        except asyncio.TimeoutError:
            pass
