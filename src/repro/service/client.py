"""Blocking client for the scheduler daemon's Unix socket.

A thin synchronous wrapper over the line protocol
(:mod:`repro.service.protocol`): one request out, one response in.
This is the stable public client surface — :meth:`ServiceClient.submit`,
:meth:`~ServiceClient.cancel`, :meth:`~ServiceClient.status`, and
:meth:`~ServiceClient.drain` return the protocol's typed result
objects (:class:`~repro.service.protocol.SubmitResult` and friends)
rather than raw dicts.  Suitable for scripts, tests, and the CI smoke
test; anything needing concurrency should talk to the socket with its
own asyncio streams.
"""

from __future__ import annotations

import socket
import time
import warnings
from typing import Any, Dict, Optional, Union

from repro.jobs.job import JobSpec
from repro.service.daemon import SubmitRejected
from repro.service.protocol import (
    DEFAULT_TENANT,
    REJECTION_CODES,
    CancelRequest,
    CancelResult,
    DrainRequest,
    DrainResult,
    PingRequest,
    Request,
    ResultRequest,
    StatusRequest,
    StatusResult,
    SubmitRequest,
    SubmitResult,
    decode_line,
    encode_line,
    response_from_wire,
    spec_from_dict,
)
from repro.sim.metrics import SimulationResult

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(RuntimeError):
    """The server answered with a non-admission error.

    Attributes:
        code: The structured error code from the response.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class ServiceClient:
    """Talks to a :class:`~repro.service.server.ServiceServer` socket.

    Args:
        path: Unix-socket path the server listens on.
        timeout: Per-response socket timeout in seconds.

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: str, timeout: float = 30.0) -> None:
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(path)
        self._file = self._sock.makefile("rb")

    # -- plumbing ----------------------------------------------------------

    def call(self, **request: Any) -> Dict[str, Any]:
        """Send one raw request dict; return the (successful) response.

        The low-level escape hatch under the typed methods; it speaks
        wire dicts directly, so version-1 payloads pass through
        unchanged.

        Raises:
            SubmitRejected: When the server rejected an admission.
            ServiceClientError: For any other error response or a
                closed connection.
        """
        self._sock.sendall(encode_line(request))
        line = self._file.readline()
        if not line:
            raise ServiceClientError("closed", "server closed the connection")
        response = decode_line(line)
        if response.get("ok"):
            return response
        code = response.get("error", "unknown")
        message = response.get("message", "")
        if code in REJECTION_CODES:
            raise SubmitRejected(
                code,
                message,
                tenant=response.get("tenant"),
                details=response.get("details"),
            )
        raise ServiceClientError(code, message)

    def request(self, message: Request) -> Dict[str, Any]:
        """Send one typed request; return the successful wire response.

        Raises:
            SubmitRejected: When the server rejected an admission.
            ServiceClientError: For any other error response.
        """
        return self.call(**message.to_wire())

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: the connected client itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    # -- client API --------------------------------------------------------

    def ping(self) -> bool:
        """True when the server answers."""
        return bool(self.request(PingRequest()).get("pong"))

    def submit(
        self,
        spec: Union[JobSpec, Dict[str, Any]],
        tenant: Optional[str] = None,
        vc: Optional[str] = None,
    ) -> SubmitResult:
        """Submit one job; returns the typed submission result.

        Args:
            spec: The job to submit.  Passing an already-serialized
                dict is the deprecated version-1 idiom and warns; build
                a :class:`JobSpec` instead.
            tenant: Tenant to account the submission to; defaults to
                the protocol's default tenant.
            vc: Optional virtual-cluster routing hint (fleet only).

        Returns:
            :class:`SubmitResult` with the assigned ``job_id`` (its
            ``int()`` is the id, for terse call sites) and where the
            fleet routed the job.

        Raises:
            SubmitRejected: When admission control refused the job.
        """
        if not isinstance(spec, JobSpec):
            warnings.warn(
                "submitting raw spec dicts is deprecated; "
                "pass a JobSpec (see repro.service.protocol.spec_from_dict)",
                DeprecationWarning,
                stacklevel=2,
            )
            spec = spec_from_dict(spec)
        message = SubmitRequest(
            spec=spec,
            tenant=DEFAULT_TENANT if tenant is None else tenant,
            vc=vc,
        )
        return SubmitResult.from_wire(self.request(message))

    def status(self, job_id: Optional[int] = None) -> StatusResult:
        """Service-wide status, or one job's when ``job_id`` is given.

        Returns:
            :class:`StatusResult`; index it like the underlying
            snapshot mapping (``status["pending"]``).
        """
        response = self.request(StatusRequest(job_id=job_id))
        return StatusResult.from_wire(response)

    def cancel(self, job_id: int) -> CancelResult:
        """Cancel one job.

        Returns:
            :class:`CancelResult`; truthy when the job existed and was
            cancelled.
        """
        return CancelResult.from_wire(self.request(CancelRequest(job_id)))

    def drain(self) -> DrainResult:
        """Ask the service to stop admitting and run down."""
        return DrainResult.from_wire(self.request(DrainRequest()))

    def result(
        self,
        poll_interval: float = 0.05,
        timeout: Optional[float] = 60.0,
    ) -> SimulationResult:
        """Poll until the drained result is flushed; return it.

        Raises:
            TimeoutError: When the result does not appear in time.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            poll = response_from_wire("result", self.request(ResultRequest()))
            if poll.done and poll.result is not None:
                return poll.result
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("timed out waiting for the drained result")
            time.sleep(poll_interval)
