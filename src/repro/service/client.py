"""Blocking client for the scheduler daemon's Unix socket.

A thin synchronous wrapper over the line protocol
(:mod:`repro.service.protocol`): one request out, one response in.
Suitable for scripts, tests, and the CI smoke test; anything needing
concurrency should talk to the socket with its own asyncio streams.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional, Union

from repro.jobs.job import JobSpec
from repro.service.daemon import SubmitRejected
from repro.service.protocol import decode_line, encode_line, spec_to_dict
from repro.sim.metrics import SimulationResult

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(RuntimeError):
    """The server answered with a non-admission error.

    Attributes:
        code: The structured error code from the response.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code

#: Admission-control codes surfaced as :class:`SubmitRejected`.
_REJECTION_CODES = ("queue_full", "draining", "too_large", "stopped")


class ServiceClient:
    """Talks to a :class:`~repro.service.server.ServiceServer` socket.

    Args:
        path: Unix-socket path the server listens on.
        timeout: Per-response socket timeout in seconds.

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: str, timeout: float = 30.0) -> None:
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(path)
        self._file = self._sock.makefile("rb")

    # -- plumbing ----------------------------------------------------------

    def call(self, **request: Any) -> Dict[str, Any]:
        """Send one request dict; return the (successful) response.

        Raises:
            SubmitRejected: When the server rejected an admission.
            ServiceClientError: For any other error response or a
                closed connection.
        """
        self._sock.sendall(encode_line(request))
        line = self._file.readline()
        if not line:
            raise ServiceClientError("closed", "server closed the connection")
        response = decode_line(line)
        if response.get("ok"):
            return response
        code = response.get("error", "unknown")
        message = response.get("message", "")
        if code in _REJECTION_CODES:
            raise SubmitRejected(code, message)
        raise ServiceClientError(code, message)

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: the connected client itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    # -- client API --------------------------------------------------------

    def ping(self) -> bool:
        """True when the server answers."""
        return bool(self.call(op="ping").get("pong"))

    def submit(self, spec: Union[JobSpec, Dict[str, Any]]) -> int:
        """Submit one job (spec or already-serialized dict); returns its id."""
        payload = spec_to_dict(spec) if isinstance(spec, JobSpec) else spec
        return int(self.call(op="submit", spec=payload)["job_id"])

    def status(self, job_id: Optional[int] = None) -> Dict[str, Any]:
        """Service-wide status, or one job's when ``job_id`` is given."""
        request: Dict[str, Any] = {"op": "status"}
        if job_id is not None:
            request["job_id"] = job_id
        return self.call(**request)["status"]

    def cancel(self, job_id: int) -> bool:
        """Cancel one job; True when it existed and was cancelled."""
        return bool(self.call(op="cancel", job_id=job_id)["cancelled"])

    def drain(self) -> None:
        """Ask the service to stop admitting and run down."""
        self.call(op="drain")

    def result(
        self,
        poll_interval: float = 0.05,
        timeout: Optional[float] = 60.0,
    ) -> SimulationResult:
        """Poll until the drained result is flushed; return it.

        Raises:
            TimeoutError: When the result does not appear in time.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            response = self.call(op="result")
            if response.get("done"):
                return SimulationResult.from_dict(response["result"])
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("timed out waiting for the drained result")
            time.sleep(poll_interval)
