"""Model zoo: the eight DL models the paper evaluates (Table 3).

For each model we record:

* the raw stage-duration percentages the paper publishes in Table 1
  (measured with PyTorch Profiler on 16 V100 GPUs) where available,
  and percentages synthesized from the stated bottleneck otherwise;
* a reference per-iteration time calibrated so that simulated
  throughputs of 16-GPU jobs land near the "Separate Tput" row of
  Table 2 (samples/sec);
* the batch size, dataset, task type, and bottleneck of Table 3.

Raw percentages do not necessarily sum to 100% (the paper explains the
overlap/idle-time effects in section 2.2); :class:`ModelProfile`
normalizes them into sequential stage durations for the simulator
while keeping the raw numbers for the Table 1 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.jobs.memory import MemoryFootprint
from repro.jobs.resources import RESOURCE_ORDER, Resource
from repro.jobs.stage import StageProfile

__all__ = [
    "ModelProfile",
    "MODEL_ZOO",
    "DEFAULT_MODELS",
    "MODELS_BY_BOTTLENECK",
    "get_model",
    "list_models",
    "models_for_bottlenecks",
]


@dataclass(frozen=True)
class ModelProfile:
    """Static description of one DL model's training behaviour.

    Attributes:
        name: Model name as used in the paper.
        task: Workload family: "CV", "NLP", or "RL".
        dataset: Training dataset or RL environment.
        batch_size: Per-GPU batch size (Table 3).
        bottleneck: The resource the model is bottlenecked on.
        stage_percentages: Raw per-stage duration percentages in
            data-path order (storage, CPU, GPU, network); Table 1 values
            where the paper publishes them.
        iteration_time: Reference solo per-iteration time in seconds
            for one worker.
        memory: Per-GPU memory footprint (weights + peak activations);
            GPT-2's is the largest, per the paper's section 2.2 note.
        published: True if ``stage_percentages`` come straight from
            Table 1, false if synthesized from the stated bottleneck.
    """

    name: str
    task: str
    dataset: str
    batch_size: int
    bottleneck: Resource
    stage_percentages: Tuple[float, float, float, float]
    iteration_time: float
    memory: MemoryFootprint = MemoryFootprint(0.5, 2.0)
    published: bool = False

    def __post_init__(self) -> None:
        if self.iteration_time <= 0:
            raise ValueError("iteration_time must be > 0")
        if len(self.stage_percentages) != len(RESOURCE_ORDER):
            raise ValueError("need one percentage per resource")
        if max(self.stage_percentages) <= 0:
            raise ValueError("at least one stage percentage must be > 0")

    def stage_profile(
        self,
        num_gpus: int = 1,
        network_scaling: float = 0.0,
        speed_factor: float = 1.0,
    ) -> StageProfile:
        """Build the per-worker :class:`StageProfile` for this model.

        Following the paper's methodology, the profile is measured once
        per model and reused for every job training it regardless of
        worker count (the synchronization stage covers gradient
        aggregation and parameter update, which exists — against local
        or remote peers — at any scale).

        Args:
            num_gpus: Number of workers in the job.
            network_scaling: Optional fractional growth of the
                synchronization stage per worker-count doubling beyond
                eight GPUs, modelling all-reduce cost growth.  Zero
                (the default) keeps the Table 1 percentages unchanged.
            speed_factor: Relative speed of the GPU generation the job
                runs on (see :class:`repro.cluster.GpuType`); every
                stage duration is divided by it.  1.0 (the default,
                the paper's V100 baseline) leaves durations unchanged.
        """
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if not speed_factor > 0:
            raise ValueError("speed_factor must be > 0")
        fractions: Dict[Resource, float] = dict(
            zip(RESOURCE_ORDER, self.stage_percentages)
        )
        profile = StageProfile.from_fractions(self.iteration_time, fractions)
        if num_gpus > 1 and network_scaling > 0:
            doublings = max(0, (num_gpus - 1).bit_length() - 3)
            factor = 1.0 + network_scaling * doublings
            profile = profile.with_duration(
                Resource.NETWORK,
                profile.duration(Resource.NETWORK) * factor,
            )
        if speed_factor != 1.0:
            profile = profile.scaled(1.0 / speed_factor)
        return profile

    def throughput(self, num_gpus: int = 1) -> float:
        """Samples/second of the whole job when running alone."""
        profile = self.stage_profile(num_gpus)
        return self.batch_size * num_gpus / profile.iteration_time

    def normalized_percentages(self) -> Dict[Resource, float]:
        """Stage percentages normalized to sum to one."""
        total = sum(self.stage_percentages)
        return {
            resource: pct / total
            for resource, pct in zip(RESOURCE_ORDER, self.stage_percentages)
        }


def _profile(
    name: str,
    task: str,
    dataset: str,
    batch_size: int,
    bottleneck: Resource,
    percentages: Tuple[float, float, float, float],
    iteration_time: float,
    published: bool,
    memory: MemoryFootprint,
) -> ModelProfile:
    return ModelProfile(
        name=name,
        task=task,
        dataset=dataset,
        batch_size=batch_size,
        bottleneck=bottleneck,
        stage_percentages=percentages,
        iteration_time=iteration_time,
        memory=memory,
        published=published,
    )


#: All eight models of Table 3.  Percentages in data-path order:
#: (load_data/storage, preprocess/CPU, propagate/GPU, synchronize/network).
MODEL_ZOO: Dict[str, ModelProfile] = {
    profile.name: profile
    for profile in (
        # Table 1 rows (published percentages).
        _profile(
            "ShuffleNet", "CV", "ImageNet", 128,
            Resource.STORAGE, (60.0, 18.0, 6.0, 2.0), 1.00, True,
            MemoryFootprint(weights_gb=0.1, activations_gb=1.2),
        ),
        _profile(
            "VGG19", "CV", "ImageNet", 16,
            Resource.NETWORK, (24.0, 4.0, 26.0, 41.0), 0.35, True,
            MemoryFootprint(weights_gb=0.8, activations_gb=2.8),
        ),
        _profile(
            "GPT-2", "NLP", "WikiText", 4,
            Resource.GPU, (0.06, 0.03, 85.0, 28.0), 0.478, True,
            MemoryFootprint(weights_gb=5.5, activations_gb=8.5),
        ),
        _profile(
            "A2C", "RL", "Breakout", 64,
            Resource.CPU, (0.0, 91.0, 3.0, 0.2), 0.565, True,
            MemoryFootprint(weights_gb=0.05, activations_gb=0.4),
        ),
        # Remaining Table 3 models (synthesized from the stated
        # bottleneck, consistent with their published siblings).
        _profile(
            "ResNet18", "CV", "ImageNet", 128,
            Resource.STORAGE, (52.0, 20.0, 20.0, 8.0), 0.60, False,
            MemoryFootprint(weights_gb=0.2, activations_gb=2.0),
        ),
        _profile(
            "VGG16", "CV", "ImageNet", 16,
            Resource.NETWORK, (20.0, 4.0, 28.0, 48.0), 0.288, False,
            MemoryFootprint(weights_gb=0.7, activations_gb=2.6),
        ),
        _profile(
            "Bert", "NLP", "WikiText", 4,
            Resource.GPU, (0.5, 1.0, 76.0, 22.5), 0.60, False,
            MemoryFootprint(weights_gb=3.5, activations_gb=6.0),
        ),
        _profile(
            "DQN", "RL", "Breakout", 128,
            Resource.CPU, (2.0, 80.0, 14.0, 2.0), 0.42, False,
            MemoryFootprint(weights_gb=0.1, activations_gb=0.8),
        ),
    )
}

#: The canonical evaluation mix (Table 3 order).
DEFAULT_MODELS: List[str] = [
    "ResNet18",
    "ShuffleNet",
    "VGG16",
    "VGG19",
    "Bert",
    "GPT-2",
    "A2C",
    "DQN",
]

#: Models grouped by their bottleneck resource (used by the Fig. 13
#: workload-distribution experiment).
MODELS_BY_BOTTLENECK: Dict[Resource, List[str]] = {}
for _name, _p in MODEL_ZOO.items():
    MODELS_BY_BOTTLENECK.setdefault(_p.bottleneck, []).append(_name)


def get_model(name: str) -> ModelProfile:
    """Look up a model by name (case-insensitive).

    Raises:
        KeyError: If the model is not in the zoo.
    """
    if name in MODEL_ZOO:
        return MODEL_ZOO[name]
    lowered = {key.lower(): key for key in MODEL_ZOO}
    if name.lower() in lowered:
        return MODEL_ZOO[lowered[name.lower()]]
    raise KeyError(
        f"unknown model {name!r}; available: {', '.join(sorted(MODEL_ZOO))}"
    )


def list_models() -> List[str]:
    """Names of all models in the zoo, Table 3 order."""
    return list(DEFAULT_MODELS)


def models_for_bottlenecks(
    bottlenecks: Optional[Mapping[Resource, bool]] = None,
    num_types: Optional[int] = None,
) -> List[str]:
    """Select models whose bottleneck is in a chosen resource set.

    Used by the Fig. 13 experiment, which sweeps the number of distinct
    bottleneck types in the workload from one to four.

    Args:
        bottlenecks: Optional explicit map ``{resource: include}``.
        num_types: If given, take the first ``num_types`` resources in
            the order (storage, CPU, GPU, network), mirroring the
            paper's "vary the number of job types" sweep.

    Returns:
        Model names whose bottleneck resource is selected.
    """
    if (bottlenecks is None) == (num_types is None):
        raise ValueError("pass exactly one of bottlenecks / num_types")
    if num_types is not None:
        if not 1 <= num_types <= len(RESOURCE_ORDER):
            raise ValueError("num_types must be between 1 and 4")
        chosen = set(RESOURCE_ORDER[:num_types])
    else:
        chosen = {r for r, include in bottlenecks.items() if include}
    names = [
        name for name in DEFAULT_MODELS
        if MODEL_ZOO[name].bottleneck in chosen
    ]
    if not names:
        raise ValueError("no models match the requested bottlenecks")
    return names
