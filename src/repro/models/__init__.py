"""Model zoo with the stage profiles of the paper's Tables 1 and 3."""

from repro.models.zoo import (
    DEFAULT_MODELS,
    MODEL_ZOO,
    MODELS_BY_BOTTLENECK,
    ModelProfile,
    get_model,
    list_models,
    models_for_bottlenecks,
)

__all__ = [
    "ModelProfile",
    "MODEL_ZOO",
    "DEFAULT_MODELS",
    "MODELS_BY_BOTTLENECK",
    "get_model",
    "list_models",
    "models_for_bottlenecks",
]
