"""Benchmark implementations for ``repro bench``.

Two suites, each writing one JSON document:

* the **grouping** suite (``BENCH_grouping.json``) times Algorithm 1
  itself — cold :class:`~repro.core.grouping.MultiRoundGrouper` runs
  at pinned queue sizes, and the warm ``event_regroup`` decision
  latency of a :class:`~repro.core.muri.MuriScheduler` fed a stream of
  queue-perturbing events (the per-bucket decision cache and the
  whole-plan memo are both on this path);
* the **service** suite (``BENCH_service.json``) times the scheduler
  embedded in its consumers — per-``decide`` latency during a drained
  service-style simulation (arrival events are the service's
  submit-to-decision path), and the serial throughput of the sweep
  runner on a small experiment grid;
* the **fleet** suite (``BENCH_fleet.json``) times the multi-tenant
  front-end of :mod:`repro.fleet` — per-submission admission+routing
  wall latency (tenant ledger, deterministic routing, shard
  admission) over a seeded multi-tenant stream, and the aggregate
  drain throughput of the sharded run as seconds per job;
* the **replay** suite (``BENCH_replay.json``) times production-scale
  trace replay end to end — CSV ingestion throughput of the Philly
  adapter, and the batch event-driven harness over a constant-load
  synthetic trace (100k jobs full, 10k quick) as per-job wall seconds
  plus p50/p99 simulator-step latency;
* the **hetero** suite (``BENCH_hetero.json``) pins the
  throughput-aware placement claim — the Gavel-style
  :class:`~repro.cluster.placement.ThroughputAwarePlacer` against the
  default descending placer on one seeded mixed k80+a100 workload —
  as a simulated-makespan ratio (deterministic, gated) next to the
  wall cost of the heterogeneous scheduling path.

Every benchmark entry carries raw ``*_seconds`` plus machine-speed
normalized ``*_normalized`` values (seconds divided by the
:func:`calibrate` workload's time).  Only the normalized values are
gated by ``tools/diff_metrics.py --bench``; gating raw seconds would
tie the baseline to one machine.  Workload generation is fully seeded,
so the *work* benchmarked is identical everywhere — only the clock
differs.
"""

from __future__ import annotations

import json
import platform
import random
import statistics
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.muri import MuriScheduler
from repro.jobs.job import Job, JobSpec
from repro.jobs.stage import StageProfile
from repro.jobs.resources import NUM_RESOURCES

__all__ = [
    "ELASTIC_BENCH_FILE",
    "FLEET_BENCH_FILE",
    "GROUPING_BENCH_FILE",
    "HETERO_BENCH_FILE",
    "REPLAY_BENCH_FILE",
    "SERVICE_BENCH_FILE",
    "SCHEMA_VERSION",
    "calibrate",
    "gated_metrics",
    "load_bench",
    "run_elastic_suite",
    "run_fleet_suite",
    "run_grouping_suite",
    "run_hetero_suite",
    "run_replay_suite",
    "run_service_suite",
    "write_bench",
]

#: File names the suites write at the repo root (committed baselines).
GROUPING_BENCH_FILE = "BENCH_grouping.json"
SERVICE_BENCH_FILE = "BENCH_service.json"
FLEET_BENCH_FILE = "BENCH_fleet.json"
ELASTIC_BENCH_FILE = "BENCH_elastic.json"
REPLAY_BENCH_FILE = "BENCH_replay.json"
HETERO_BENCH_FILE = "BENCH_hetero.json"

#: Bumped whenever the benchmark workloads change incompatibly; the
#: diff gate refuses to compare documents with different schemas.
SCHEMA_VERSION = 1

#: Progress callback: one short human-readable line per benchmark.
Progress = Optional[Callable[[str], None]]


def calibrate(repeats: int = 3) -> float:
    """Time the fixed calibration workload; return the best of ``repeats``.

    The workload mirrors the instruction mix of the benchmarks —
    interpreter-bound loops over small tuples and dicts, the same mix
    the blossom and grouping inner loops execute — so dividing a
    benchmark's seconds by this time cancels machine speed to first
    order.  Taking the minimum of several runs discards scheduling
    jitter, which only ever adds time.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        acc = 0
        table: Dict[int, int] = {}
        row = (3, 1, 4, 1, 5, 9, 2, 6)
        for i in range(120_000):
            key = i & 1023
            table[key] = table.get(key, 0) + 1
            acc += row[i & 7] * (i & 15)
            if acc > 1 << 30:
                acc >>= 8
        pairs = sorted((v, k) for k, v in table.items())
        acc += pairs[0][1]
        best = min(best, time.perf_counter() - start)
    return best


def _make_jobs(
    count: int,
    seed: int,
    gpu_choices: Sequence[int] = (1, 1, 2, 4, 8),
) -> List[Job]:
    """A seeded mixed-GPU job queue for the grouping benchmarks.

    Stage durations are drawn uniformly per resource, giving the
    matcher a realistic spread of bottlenecks; the GPU-count choices
    weight small jobs the way the paper's traces do.
    """
    rng = random.Random(seed)
    jobs = []
    for _ in range(count):
        rows = tuple(
            round(rng.uniform(0.05, 5.0), 3) for _ in range(NUM_RESOURCES)
        )
        jobs.append(
            Job(
                JobSpec(
                    profile=StageProfile(rows),
                    num_gpus=rng.choice(list(gpu_choices)),
                    num_iterations=100,
                )
            )
        )
    return jobs


def _attach_normalized(
    benchmarks: Dict[str, Dict[str, float]], fallback: float
) -> None:
    """Fill in ``*_normalized`` next to every ``*_seconds`` metric.

    Each benchmark entry that recorded its own adjacent
    ``calibration`` sample (taken interleaved with its repeats) is
    normalized by that; entries without one fall back to the suite
    calibration.  Adjacent calibration matters on shared machines:
    background load drifts on minute timescales, and dividing a
    benchmark by the machine speed measured *around it* cancels that
    drift far better than one suite-wide sample.
    """
    for entry in benchmarks.values():
        calibration = entry.get("calibration", fallback)
        for name in list(entry):
            if name == "seconds":
                entry["normalized"] = entry[name] / calibration
            elif name.endswith("_seconds"):
                stem = name[: -len("_seconds")]
                entry[f"{stem}_normalized"] = entry[name] / calibration


def _percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (``fraction`` in [0, 1])."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _cold_group(size: int, seed: int, repeats: int) -> Dict[str, float]:
    """Time a cold grouping of ``size`` jobs; best of ``repeats`` runs.

    Every repeat uses a freshly built grouper, so no cache survives
    between runs — this is the from-scratch decision latency the
    paper's "1,000 jobs in a few seconds" claim is about.  Jobs come
    from the repo's own trace generator (trace "1", the same workload
    ``repro simulate`` runs), whose model-zoo profiles repeat across
    jobs — the duplicate-heavy regime the weight cache is built for.
    """
    from repro.trace.philly import generate_trace
    from repro.trace.workload import build_jobs

    specs = build_jobs(generate_trace("1", num_jobs=size, seed=seed), seed=seed)
    jobs = [Job(spec) for spec in specs]
    best = float("inf")
    calibration = float("inf")
    groups = 0
    total_efficiency = 0.0
    for _ in range(max(1, repeats)):
        calibration = min(calibration, calibrate(repeats=1))
        scheduler = MuriScheduler()
        start = time.perf_counter()
        result = scheduler.grouper.group(jobs, capacity=None)
        best = min(best, time.perf_counter() - start)
        groups = len(result.groups)
        total_efficiency = result.total_efficiency
    calibration = min(calibration, calibrate(repeats=1))
    return {
        "jobs": len(jobs),
        "seconds": best,
        "groups": groups,
        "total_efficiency": total_efficiency,
        "calibration": calibration,
    }


def _warm_regroup(
    size: int, events: int, seed: int, repeats: int = 3
) -> Dict[str, float]:
    """Latency distribution of warm ``event_regroup`` decisions.

    The whole event stream is replayed ``repeats`` times (fresh
    scheduler and queue each time — the stream consumes the queue) and
    the best percentile across replays is reported: the work is
    deterministic, so differences between replays are pure scheduler
    jitter, which only ever inflates the tail.

    A :class:`MuriScheduler` with ``event_regroup=True`` is warmed with
    one cold decide, then fed ``events`` queue perturbations in the
    scheduler's own priority order: removals from the priority *tail*
    (completions past the dequeue budget — the whole-plan memo's case)
    alternating with removals from the priority *head* (batch-changing
    events, served by the per-bucket decision cache).  Reported p50/p99
    therefore cover both warm paths, with p99 dominated by the
    cache-assisted regroups.

    The queue draws GPU counts uniformly from (1, 2, 4, 8) so no
    single GPU-count bucket dominates the dequeued batch: a
    batch-changing event then re-matches a bucket of a few dozen
    nodes, which is the service-loop regime the <10 ms p99 target is
    pinned for (priority-weighted mixes concentrate 1-GPU jobs at the
    queue head and grow that bucket past 100 nodes, where a single
    dense blossom rematch alone exceeds the budget — that regime is
    covered by the cold benchmarks instead).
    """
    capacity = 64
    best_p50 = float("inf")
    best_p99 = float("inf")
    calibration = float("inf")
    observed = 0
    for _ in range(max(1, repeats)):
        calibration = min(calibration, calibrate(repeats=1))
        scheduler = MuriScheduler(event_regroup=True)
        queue = _make_jobs(size, seed, gpu_choices=(1, 2, 4, 8))
        scheduler.decide(0.0, queue, {}, capacity, reason="arrival")
        # The scheduler's queue order: priority tuple, then submit
        # time, then id — removing from this list's tail leaves the
        # dequeued batch untouched, removing from its head perturbs it.
        ranked = sorted(
            queue,
            key=lambda job: (
                scheduler.policy(job, 0.0),
                job.spec.submit_time,
                job.job_id,
            ),
        )
        latencies: List[float] = []
        now = 1.0
        for event in range(events):
            if len(ranked) < 8:
                break
            victim = ranked.pop() if event % 2 == 0 else ranked.pop(0)
            queue = [job for job in queue if job is not victim]
            start = time.perf_counter()
            scheduler.decide(now, queue, {}, capacity, reason="completion")
            latencies.append(time.perf_counter() - start)
            now += 1.0
        observed = len(latencies)
        best_p50 = min(best_p50, _percentile(latencies, 0.50))
        best_p99 = min(best_p99, _percentile(latencies, 0.99))
    calibration = min(calibration, calibrate(repeats=1))
    return {
        "jobs": size,
        "events": observed,
        "p50_seconds": best_p50,
        "p99_seconds": best_p99,
        "calibration": calibration,
    }


def _environment() -> Dict[str, object]:
    """Context recorded alongside the numbers (never gated)."""
    import os

    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


def run_grouping_suite(
    quick: bool = False, seed: int = 0, progress: Progress = None
) -> Dict[str, object]:
    """Run the grouping suite; return the ``BENCH_grouping.json`` document.

    Args:
        quick: Skip the largest cold size (the CI configuration).
            Every benchmark quick mode *does* run uses the exact full
            workload, so quick results are a strict, comparable subset
            of full results and gate cleanly against a committed full
            baseline.
        seed: Workload seed; the default is what the committed
            baselines use.
        progress: Optional callback receiving one line per benchmark.
    """

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    calibration = calibrate()
    note(f"calibration {calibration * 1e3:.1f} ms")
    sizes = (512, 1024) if quick else (512, 1024, 4096)
    benchmarks: Dict[str, Dict[str, float]] = {}
    for size in sizes:
        entry = _cold_group(size, seed, repeats=2)
        benchmarks[f"cold_group_{size}"] = entry
        note(
            f"cold_group_{size}: {entry['seconds']:.3f} s "
            f"({entry['groups']} groups)"
        )
    warm = _warm_regroup(128, 100, seed)
    benchmarks["warm_regroup"] = warm
    note(
        f"warm_regroup: p50 {warm['p50_seconds'] * 1e3:.2f} ms, "
        f"p99 {warm['p99_seconds'] * 1e3:.2f} ms over {warm['events']} events"
    )
    calibration = min(calibration, calibrate())
    _attach_normalized(benchmarks, calibration)
    return {
        "schema": SCHEMA_VERSION,
        "suite": "grouping",
        "quick": quick,
        "seed": seed,
        "calibration_seconds": calibration,
        "env": _environment(),
        "benchmarks": benchmarks,
    }


def run_service_suite(
    quick: bool = False, seed: int = 0, progress: Progress = None
) -> Dict[str, object]:
    """Run the service suite; return the ``BENCH_service.json`` document.

    Args:
        quick: Accepted for CLI symmetry with the grouping suite; the
            service workloads are already cheap, and shrinking them
            would make quick-run metrics incomparable with the
            committed full baseline, so the flag changes nothing here.
        seed: Workload seed for the trace generator and sweep cells.
        progress: Optional callback receiving one line per benchmark.
    """
    from repro.cluster.cluster import Cluster
    from repro.sim.simulator import ClusterSimulator
    from repro.sweep import SweepRunner, experiment_cells
    from repro.trace.philly import generate_trace
    from repro.trace.workload import build_jobs

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    calibration = calibrate()
    note(f"calibration {calibration * 1e3:.1f} ms")

    # Submit-to-decision: a drained service-style run (arrivals
    # reschedule immediately, completions regroup incrementally) with
    # every scheduler.decide call timed.  Arrival-reason latencies are
    # exactly what a service client waits between submit and decision.
    # The simulation is deterministic, so each repeat times identical
    # work; taking the best percentile over repeats discards scheduler
    # jitter, which only ever inflates the tail.
    num_jobs = 200
    repeats = 3
    trace = generate_trace("1", num_jobs=num_jobs, seed=seed)
    specs = build_jobs(trace, seed=seed)
    cluster = Cluster(8, 8)
    specs = [s for s in specs if s.num_gpus <= cluster.total_gpus]
    best_p50 = float("inf")
    best_p99 = float("inf")
    submit_cal = float("inf")
    decisions = 0
    arrival_count = 0
    for _ in range(repeats):
        submit_cal = min(submit_cal, calibrate(repeats=1))
        scheduler = MuriScheduler(event_regroup=True)
        latencies: Dict[str, List[float]] = {}
        inner_decide = scheduler.decide

        def timed_decide(now, jobs, running, total_gpus, reason="tick"):
            """Record per-reason wall time around the real decide call."""
            start = time.perf_counter()
            plan = inner_decide(now, jobs, running, total_gpus, reason)
            latencies.setdefault(reason, []).append(
                time.perf_counter() - start
            )
            return plan

        scheduler.decide = timed_decide  # type: ignore[method-assign]
        simulator = ClusterSimulator(
            scheduler,
            cluster=Cluster(8, 8),
            reschedule_on_arrival=True,
            arrival_reason="arrival",
            backfill_on_completion=True,
        )
        simulator.run(specs, trace.name)
        arrivals = latencies.get("arrival", [0.0])
        decisions = sum(len(samples) for samples in latencies.values())
        arrival_count = len(arrivals)
        best_p50 = min(best_p50, _percentile(arrivals, 0.50))
        best_p99 = min(best_p99, _percentile(arrivals, 0.99))
    submit_cal = min(submit_cal, calibrate(repeats=1))
    submit = {
        "jobs": len(specs),
        "decisions": decisions,
        "arrivals": arrival_count,
        "p50_seconds": best_p50,
        "p99_seconds": best_p99,
        "calibration": submit_cal,
    }
    note(
        f"submit_decide: p50 {submit['p50_seconds'] * 1e3:.2f} ms, "
        f"p99 {submit['p99_seconds'] * 1e3:.2f} ms "
        f"over {submit['arrivals']} arrivals"
    )

    # Sweep throughput: the serial runner on a pinned slice of the
    # fig11 ablation grid, best of a few repeats.  Gated as
    # seconds-per-cell so the direction matches every other metric
    # (higher = regression).
    cells = experiment_cells("fig11", num_jobs=40, seed=seed)[:4]
    elapsed = float("inf")
    sweep_cal = float("inf")
    results: Dict[str, object] = {}
    for _ in range(repeats):
        sweep_cal = min(sweep_cal, calibrate(repeats=1))
        runner = SweepRunner(max_workers=1)
        start = time.perf_counter()
        results = runner.run(cells)
        elapsed = min(elapsed, time.perf_counter() - start)
    sweep_cal = min(sweep_cal, calibrate(repeats=1))
    failed = sum(1 for run in results.values() if not run.ok)
    per_cell = elapsed / max(1, len(results))
    sweep = {
        "cells": len(results),
        "failed": failed,
        "cell_seconds": per_cell,
        "calibration": sweep_cal,
    }
    note(
        f"sweep_serial: {len(results)} cells in {elapsed:.2f} s "
        f"({per_cell:.2f} s/cell)"
    )
    benchmarks = {"submit_decide": submit, "sweep_serial": sweep}
    calibration = min(calibration, calibrate())
    _attach_normalized(benchmarks, calibration)
    return {
        "schema": SCHEMA_VERSION,
        "suite": "service",
        "quick": quick,
        "seed": seed,
        "calibration_seconds": calibration,
        "env": _environment(),
        "benchmarks": benchmarks,
    }


def run_fleet_suite(
    quick: bool = False, seed: int = 0, progress: Progress = None
) -> Dict[str, object]:
    """Run the fleet suite; return the ``BENCH_fleet.json`` document.

    A seeded three-tenant stream is submitted through a four-shard
    fleet (``partition_cluster(8, 8, 4)``), measuring what the fleet
    layer itself adds:

    * **fleet_submit** — per-submission admission+routing wall
      latency (ledger charge, open-job sweep, deterministic routing,
      shard admission), pooled across tenants; best p50/p99 over
      repeats since the seeded stream makes every repeat identical
      work;
    * **fleet_drain** — aggregate drain throughput of ``run_sync``
      over all shards, gated as seconds per job.

    Shards run FIFO: scheduler cost is the *service* suite's subject,
    and a cheap ``decide`` keeps this suite sensitive to the plumbing
    (routing, tenancy, merge) rather than re-measuring grouping.

    Args:
        quick: Accepted for CLI symmetry; the fleet workload is
            already cheap, so the flag changes nothing here.
        seed: Workload seed for the job stream.
        progress: Optional callback receiving one line per benchmark.
    """
    from repro.fleet import FleetFrontEnd, partition_cluster

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    calibration = calibrate()
    note(f"calibration {calibration * 1e3:.1f} ms")

    num_jobs = 400
    repeats = 3
    tenants = ("alice", "bob", "carol")
    topology = partition_cluster(8, 8, 4)
    # VCs are 2x8 = 16 GPUs, so every choice fits every shard and the
    # routing decision is always a genuine least-pending comparison.
    specs = [
        job.spec
        for job in _make_jobs(num_jobs, seed, gpu_choices=(1, 1, 2, 4, 8))
    ]

    best_p50 = float("inf")
    best_p99 = float("inf")
    best_drain = float("inf")
    submit_cal = float("inf")
    finished = 0
    for _ in range(repeats):
        submit_cal = min(submit_cal, calibrate(repeats=1))
        frontend = FleetFrontEnd.build(topology, scheduler="fifo")
        for index, spec in enumerate(specs):
            frontend.submit(spec, tenant=tenants[index % len(tenants)])
        pooled = [
            value
            for samples in frontend.submit_latencies.values()
            for value in samples
        ]
        best_p50 = min(best_p50, _percentile(pooled, 0.50))
        best_p99 = min(best_p99, _percentile(pooled, 0.99))
        start = time.perf_counter()
        result = frontend.run_sync()
        best_drain = min(best_drain, time.perf_counter() - start)
        finished = len(result.jcts)
    submit_cal = min(submit_cal, calibrate(repeats=1))

    submit = {
        "jobs": num_jobs,
        "shards": len(topology.vcs),
        "tenants": len(tenants),
        "p50_seconds": best_p50,
        "p99_seconds": best_p99,
        "calibration": submit_cal,
    }
    note(
        f"fleet_submit: p50 {submit['p50_seconds'] * 1e6:.1f} us, "
        f"p99 {submit['p99_seconds'] * 1e6:.1f} us "
        f"over {num_jobs} submissions"
    )
    drain = {
        "jobs": num_jobs,
        "finished": finished,
        "job_seconds": best_drain / max(1, finished),
        "calibration": submit_cal,
    }
    note(
        f"fleet_drain: {finished} jobs in {best_drain:.2f} s "
        f"({drain['job_seconds'] * 1e3:.2f} ms/job)"
    )
    benchmarks = {"fleet_submit": submit, "fleet_drain": drain}
    calibration = min(calibration, calibrate())
    _attach_normalized(benchmarks, calibration)
    return {
        "schema": SCHEMA_VERSION,
        "suite": "fleet",
        "quick": quick,
        "seed": seed,
        "calibration_seconds": calibration,
        "env": _environment(),
        "benchmarks": benchmarks,
    }


def run_elastic_suite(
    quick: bool = False, seed: int = 0, progress: Progress = None
) -> Dict[str, object]:
    """Run the elastic suite; return the ``BENCH_elastic.json`` document.

    Times what the elastic arm adds on top of Muri, on a seeded
    half-elastic trace-"1" workload:

    * **cold_elastic_group** — one full cold scheduling step: a fresh
      :class:`~repro.elastic.ElasticMuriScheduler` renegotiates GPU
      counts, the resizes are applied (with per-resize cache
      invalidation, as the simulator would), and Algorithm-1 grouping
      runs on the resized buckets;
    * **renegotiate_step** — p50/p99 latency of the per-tick
      renegotiation step alone (allocator water-fill plus resize
      application) over a stream of queue-perturbing events.

    Args:
        quick: Accepted for CLI symmetry; the elastic workloads are
            already cheap, and shrinking them would make quick-run
            metrics incomparable with the committed full baseline, so
            the flag changes nothing here.
        seed: Workload seed; the default is what the committed
            baseline uses.
        progress: Optional callback receiving one line per benchmark.
    """
    from repro.elastic.scheduler import ElasticMuriScheduler
    from repro.elastic.workload import attach_scalability
    from repro.trace.philly import generate_trace
    from repro.trace.workload import build_jobs

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    calibration = calibrate()
    note(f"calibration {calibration * 1e3:.1f} ms")

    capacity = 64
    num_jobs = 512
    repeats = 3
    specs = build_jobs(
        generate_trace("1", num_jobs=num_jobs, seed=seed), seed=seed
    )
    specs = [s for s in specs if s.num_gpus <= capacity]
    especs = attach_scalability(specs, fraction=0.5, seed=seed)

    def apply_targets(scheduler, by_id, targets) -> None:
        for job_id in sorted(targets):
            old = by_id[job_id].resize(targets[job_id])
            scheduler.notify_resize(job_id, old, targets[job_id])

    # Cold full step: renegotiate + apply + group, fresh every repeat
    # (resizes mutate the jobs, so each repeat rebuilds them).
    best = float("inf")
    cold_cal = float("inf")
    resizes = 0
    groups = 0
    for _ in range(repeats):
        cold_cal = min(cold_cal, calibrate(repeats=1))
        jobs = [Job(spec) for spec in especs]
        by_id = {job.job_id: job for job in jobs}
        scheduler = ElasticMuriScheduler()
        start = time.perf_counter()
        targets = scheduler.renegotiate(0.0, jobs, capacity)
        apply_targets(scheduler, by_id, targets)
        plan = scheduler.decide(0.0, jobs, {}, capacity, reason="tick")
        best = min(best, time.perf_counter() - start)
        resizes = len(targets)
        groups = len(plan)
    cold_cal = min(cold_cal, calibrate(repeats=1))
    cold = {
        "jobs": len(especs),
        "resizes": resizes,
        "groups": groups,
        "seconds": best,
        "calibration": cold_cal,
    }
    note(
        f"cold_elastic_group: {cold['seconds']:.3f} s "
        f"({resizes} resizes, {groups} groups)"
    )

    # Renegotiation-step latency on an evolving queue: each event
    # removes one job (alternating priority tail/head, as the warm
    # regroup benchmark does) and times renegotiate + apply alone.
    events = 100
    best_p50 = float("inf")
    best_p99 = float("inf")
    step_cal = float("inf")
    observed = 0
    for _ in range(repeats):
        step_cal = min(step_cal, calibrate(repeats=1))
        queue = [Job(spec) for spec in especs]
        by_id = {job.job_id: job for job in queue}
        scheduler = ElasticMuriScheduler()
        ranked = sorted(
            queue,
            key=lambda job: (
                scheduler.policy(job, 0.0),
                job.spec.submit_time,
                job.job_id,
            ),
        )
        latencies: List[float] = []
        now = 1.0
        for event in range(events):
            if len(ranked) < 8:
                break
            victim = ranked.pop() if event % 2 == 0 else ranked.pop(0)
            queue = [job for job in queue if job is not victim]
            start = time.perf_counter()
            targets = scheduler.renegotiate(now, queue, capacity)
            apply_targets(scheduler, by_id, targets)
            latencies.append(time.perf_counter() - start)
            now += 1.0
        observed = len(latencies)
        best_p50 = min(best_p50, _percentile(latencies, 0.50))
        best_p99 = min(best_p99, _percentile(latencies, 0.99))
    step_cal = min(step_cal, calibrate(repeats=1))
    step = {
        "jobs": len(especs),
        "events": observed,
        "p50_seconds": best_p50,
        "p99_seconds": best_p99,
        "calibration": step_cal,
    }
    note(
        f"renegotiate_step: p50 {step['p50_seconds'] * 1e3:.2f} ms, "
        f"p99 {step['p99_seconds'] * 1e3:.2f} ms over {observed} events"
    )

    benchmarks = {"cold_elastic_group": cold, "renegotiate_step": step}
    calibration = min(calibration, calibrate())
    _attach_normalized(benchmarks, calibration)
    return {
        "schema": SCHEMA_VERSION,
        "suite": "elastic",
        "quick": quick,
        "seed": seed,
        "calibration_seconds": calibration,
        "env": _environment(),
        "benchmarks": benchmarks,
    }


def run_replay_suite(
    quick: bool = False, seed: int = 0, progress: Progress = None
) -> Dict[str, object]:
    """Run the replay suite; return the ``BENCH_replay.json`` document.

    The full path of a production-scale replay, on a constant-load
    :func:`~repro.replay.workload.synthetic_trace` (100k jobs over 20
    simulated days; the quick configuration replays the same recipe at
    10k jobs — **not** a subset, so quick runs gate only against a
    quick baseline, which is what CI commits):

    * **csv_ingest** — Philly CSV adapter throughput: the trace is
      serialized with ``write_philly_csv`` and ingested back with
      ``load_philly_csv``, gated as seconds per job row;
    * **replay_run** — the batch event-driven harness end to end
      (FIFO shards the cost to the harness and simulator rather than
      the grouping paths other suites own), gated as wall seconds per
      job plus the p99 simulator-step latency from
      :class:`~repro.replay.ReplayStats`.

    Args:
        quick: Replay 10k jobs instead of 100k (the CI configuration).
        seed: Workload seed; the default is what the committed
            baseline uses.
        progress: Optional callback receiving one line per benchmark.
    """
    import tempfile

    from repro.cluster.cluster import Cluster
    from repro.replay import replay_trace
    from repro.replay.workload import synthetic_trace
    from repro.schedulers.registry import make_scheduler
    from repro.sim.simulator import ClusterSimulator
    from repro.trace.philly_csv import load_philly_csv, write_philly_csv
    from repro.trace.workload import build_jobs

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    calibration = calibrate()
    note(f"calibration {calibration * 1e3:.1f} ms")

    num_jobs = 10_000 if quick else 100_000
    trace = synthetic_trace(num_jobs, seed=seed)

    # CSV ingestion: serialize + parse the whole trace through the
    # Philly adapter; cheap enough to take the best of two rounds.
    ingest_cal = float("inf")
    best_ingest = float("inf")
    loaded = 0
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "replay.csv"
        for _ in range(2):
            ingest_cal = min(ingest_cal, calibrate(repeats=1))
            start = time.perf_counter()
            write_philly_csv(trace, csv_path)
            ingested, report = load_philly_csv(csv_path, min_duration=0.0)
            best_ingest = min(best_ingest, time.perf_counter() - start)
            loaded = report.jobs_loaded
    ingest_cal = min(ingest_cal, calibrate(repeats=1))
    ingest = {
        "jobs": num_jobs,
        "loaded": loaded,
        "job_seconds": best_ingest / max(1, loaded),
        "calibration": ingest_cal,
    }
    note(
        f"csv_ingest: {loaded} jobs in {best_ingest:.2f} s "
        f"({ingest['job_seconds'] * 1e6:.1f} us/job)"
    )

    # The replay itself: one round — the run is deterministic and
    # minutes long at full size, so repeats would only resample
    # scheduler jitter the adjacent calibration already cancels.
    specs = build_jobs(ingested, seed=seed)
    simulator = ClusterSimulator(
        make_scheduler("fifo"), cluster=Cluster(256, 8)
    )
    replay_cal = calibrate(repeats=1)
    result, stats = replay_trace(
        simulator, specs, ingested.name, batch_step_seconds=300.0
    )
    replay_cal = min(replay_cal, calibrate(repeats=1))
    run = {
        "jobs": num_jobs,
        "finished": len(result.jcts),
        "steps": stats.sim_steps,
        "rounds": stats.rounds,
        "job_seconds": stats.wall_clock / max(1, num_jobs),
        "p50_step_seconds": stats.step_seconds_p50,
        "p99_step_seconds": stats.step_seconds_p99,
        "calibration": replay_cal,
    }
    note(
        f"replay_run: {num_jobs} jobs in {stats.wall_clock:.1f} s "
        f"({num_jobs / max(stats.wall_clock, 1e-9):.0f} jobs/s), "
        f"step p50 {stats.step_seconds_p50 * 1e3:.2f} ms, "
        f"p99 {stats.step_seconds_p99 * 1e3:.2f} ms"
    )

    benchmarks = {"csv_ingest": ingest, "replay_run": run}
    calibration = min(calibration, calibrate())
    _attach_normalized(benchmarks, calibration)
    return {
        "schema": SCHEMA_VERSION,
        "suite": "replay",
        "quick": quick,
        "seed": seed,
        "calibration_seconds": calibration,
        "env": _environment(),
        "benchmarks": benchmarks,
    }


def run_hetero_suite(
    quick: bool = False, seed: int = 0, progress: Progress = None
) -> Dict[str, object]:
    """Run the hetero suite; return the ``BENCH_hetero.json`` document.

    One seeded workload pinned/preferred onto a mixed k80+a100
    cluster, run through Muri-S twice — default descending placer vs
    the Gavel-style throughput-aware placer — with landing-speed
    scaling active on both arms, so the *only* difference is where
    preferred and unaffine groups land:

    * **hetero_placement** — the headline claim.
      ``makespan_ratio_normalized`` is the aware arm's simulated
      makespan divided by the baseline arm's: deterministic for the
      seed (simulated time, no clock involved — it needs no
      calibration, the ``_normalized`` suffix opts it into the gate),
      lower is better, and strictly below 1.0 while throughput-aware
      placement actually beats affinity-only placement.  Per-arm
      makespans and per-generation occupancy ride along for humans,
      and ``run_seconds`` (both arms' wall time, calibrated) gates
      the cost of the heterogeneous scheduling path itself.
    """
    from repro.cluster.placement import ThroughputAwarePlacer
    from repro.hetero.types import DEFAULT_TYPE_SCALING
    from repro.hetero.workload import make_hetero_cluster, pin_jobs
    from repro.schedulers.registry import make_scheduler
    from repro.sim.simulator import ClusterSimulator
    from repro.trace.philly import generate_trace
    from repro.trace.workload import build_jobs

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    calibration = calibrate()
    note(f"calibration {calibration * 1e3:.1f} ms")

    num_jobs = 256 if quick else 1_024
    type_names = ("k80", "a100")
    specs = build_jobs(
        generate_trace("1", num_jobs=num_jobs, seed=seed), seed=seed
    )
    pinned = pin_jobs(
        specs, list(type_names), seed=seed, prefer_fraction=0.6
    )

    arm_cal = calibrate(repeats=1)
    makespans: Dict[str, float] = {}
    occupancy: Dict[str, Dict[str, float]] = {}
    wall = 0.0
    for label, placer in (
        ("baseline", None),
        ("aware", ThroughputAwarePlacer()),
    ):
        cluster = make_hetero_cluster(
            8, 8, type_names=type_names, seed=seed
        )
        simulator = ClusterSimulator(
            make_scheduler("muri-s"),
            cluster=cluster,
            landing_speed_scaling=DEFAULT_TYPE_SCALING,
            placer=placer,
        )
        start = time.perf_counter()
        result = simulator.run(pinned, "hetero-bench")
        wall += time.perf_counter() - start
        makespans[label] = result.makespan
        occupancy[label] = {
            name: round(value, 4)
            for name, value in result.utilization_by_type().items()
        }
    arm_cal = min(arm_cal, calibrate(repeats=1))

    placement = {
        "jobs": num_jobs,
        "makespan_baseline": makespans["baseline"],
        "makespan_aware": makespans["aware"],
        "improvement": 1.0 - makespans["aware"] / makespans["baseline"],
        "makespan_ratio_normalized": (
            makespans["aware"] / makespans["baseline"]
        ),
        "utilization_by_type": occupancy,
        "run_seconds": wall,
        "calibration": arm_cal,
    }
    note(
        f"hetero_placement: baseline {makespans['baseline']:.0f} s, "
        f"aware {makespans['aware']:.0f} s "
        f"({placement['improvement']:.1%} better) in {wall:.1f} s wall"
    )

    benchmarks = {"hetero_placement": placement}
    calibration = min(calibration, calibrate())
    _attach_normalized(benchmarks, calibration)
    return {
        "schema": SCHEMA_VERSION,
        "suite": "hetero",
        "quick": quick,
        "seed": seed,
        "calibration_seconds": calibration,
        "env": _environment(),
        "benchmarks": benchmarks,
    }


def write_bench(document: Dict[str, object], path: Path) -> None:
    """Write one suite document as stable, diff-friendly JSON."""
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_bench(path: Path) -> Dict[str, object]:
    """Read a suite document written by :func:`write_bench`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def gated_metrics(document: Dict[str, object]) -> Dict[str, float]:
    """Flatten a suite document to its gated (normalized) metrics.

    Returns ``{"benchmark.metric": value}`` for every metric named
    ``normalized`` or ending in ``_normalized``, except medians:
    ``p50_*`` values are recorded for humans but never gated, because
    the warm paths are bimodal (memo hit vs cache-assisted regroup)
    and a sub-millisecond median sitting on that boundary jitters far
    beyond any honest tolerance — the tail (p99) is the latency
    contract.  The gated values are machine-speed invariant to first
    order, and all of them are lower-is-better.
    """
    flat: Dict[str, float] = {}
    for bench_name, entry in sorted(document.get("benchmarks", {}).items()):
        for metric, value in sorted(entry.items()):
            if metric.startswith("p50"):
                continue
            if metric == "normalized" or metric.endswith("_normalized"):
                flat[f"{bench_name}.{metric}"] = float(value)
    return flat
