"""The pinned performance benchmark suite behind ``repro bench``.

Perf claims in this repo are not prose — they are committed numbers.
``repro bench`` runs a fixed suite (cold grouping at several queue
sizes, warm event-regroup latency percentiles, the service loop's
submit-to-decision latency, sweep throughput, the fleet front-end's
admission latency and drain throughput, the elastic arm's cold
renegotiate-and-group step and per-tick renegotiation latency, and
the production-scale trace-replay path: CSV ingestion plus the batch
event-driven harness, and the heterogeneous placement arm's
throughput-aware-vs-default makespan ratio) and writes the results to
``BENCH_grouping.json`` / ``BENCH_service.json`` /
``BENCH_fleet.json`` / ``BENCH_elastic.json`` / ``BENCH_replay.json``
/ ``BENCH_hetero.json`` at the repo root.
Those files are committed; CI re-runs the quick suite and fails when a
gated metric regresses more than the tolerance
(``tools/diff_metrics.py --bench``).

Raw seconds are machine-speed dependent, so every benchmark also
reports a *normalized* value: its time divided by the time of a fixed
interpreter-bound calibration workload measured in the same process
(:func:`~repro.bench.suite.calibrate`).  Gating happens on the
normalized numbers, which transfer across machines to first order.
See ``docs/performance.md`` for the model and the re-baselining
procedure.
"""

from repro.bench.suite import (
    ELASTIC_BENCH_FILE,
    FLEET_BENCH_FILE,
    GROUPING_BENCH_FILE,
    HETERO_BENCH_FILE,
    REPLAY_BENCH_FILE,
    SCHEMA_VERSION,
    SERVICE_BENCH_FILE,
    calibrate,
    gated_metrics,
    load_bench,
    run_elastic_suite,
    run_fleet_suite,
    run_grouping_suite,
    run_hetero_suite,
    run_replay_suite,
    run_service_suite,
    write_bench,
)

__all__ = [
    "ELASTIC_BENCH_FILE",
    "FLEET_BENCH_FILE",
    "GROUPING_BENCH_FILE",
    "HETERO_BENCH_FILE",
    "REPLAY_BENCH_FILE",
    "SERVICE_BENCH_FILE",
    "SCHEMA_VERSION",
    "calibrate",
    "gated_metrics",
    "load_bench",
    "run_elastic_suite",
    "run_fleet_suite",
    "run_grouping_suite",
    "run_hetero_suite",
    "run_replay_suite",
    "run_service_suite",
    "write_bench",
]
