#!/usr/bin/env python3
"""Quickstart: interleave four DL jobs and schedule a small cluster.

Walks through the core ideas of Muri in five minutes:

1. define jobs with staged per-iteration profiles (or pull them from
   the model zoo);
2. compute interleaving efficiency (Eq. 4) and the best stage ordering;
3. run the Blossom-based grouping algorithm;
4. simulate Muri vs SRSF on a congested cluster and compare JCTs.

Run:  python examples/quickstart.py
"""

from repro import (
    ClusterSimulator,
    Job,
    JobSpec,
    MultiRoundGrouper,
    Resource,
    StageProfile,
    best_ordering,
    group_speedup,
    interleaving_efficiency,
)
from repro.cluster import Cluster
from repro.models import get_model
from repro.schedulers import make_scheduler
from repro.trace import build_jobs, generate_trace


def step1_profiles():
    print("=" * 70)
    print("Step 1 — staged job profiles")
    print("=" * 70)
    # A profile lists seconds per iteration spent on each resource:
    # (storage, CPU, GPU, network).
    custom = StageProfile.from_mapping(
        {Resource.STORAGE: 0.6, Resource.CPU: 0.2, Resource.GPU: 0.1,
         Resource.NETWORK: 0.1}
    )
    print(f"custom job: iteration={custom.iteration_time:.2f}s "
          f"bottleneck={custom.bottleneck.name}")

    # Or take one of the paper's models (Table 1/3 profiles).
    for name in ("ShuffleNet", "A2C", "GPT-2", "VGG16"):
        profile = get_model(name).stage_profile(num_gpus=16)
        fractions = ", ".join(
            f"{resource.stage_name}={profile.fraction(resource):.0%}"
            for resource in Resource
        )
        print(f"{name:10s}: {fractions}")
    return custom


def step2_efficiency():
    print()
    print("=" * 70)
    print("Step 2 — interleaving efficiency and stage ordering")
    print("=" * 70)
    profiles = [
        get_model(name).stage_profile(16)
        for name in ("ShuffleNet", "A2C", "GPT-2", "VGG16")
    ]
    offsets, period = best_ordering(profiles)
    gamma = interleaving_efficiency(profiles)
    speedup = group_speedup(profiles)
    print(f"best phase offsets: {offsets}")
    print(f"interleaved iteration period T = {period:.3f}s")
    print(f"interleaving efficiency gamma = {gamma:.2f}")
    print(f"total normalized throughput   = {speedup:.2f}x "
          f"(the paper's Table 2 measures 2.0x)")


def step3_grouping():
    print()
    print("=" * 70)
    print("Step 3 — Blossom-based multi-round grouping (Algorithm 1)")
    print("=" * 70)
    jobs = [
        Job(JobSpec(profile=get_model(name).stage_profile(1),
                    num_iterations=1000, model=name))
        for name in ("ShuffleNet", "ShuffleNet", "A2C", "GPT-2",
                     "VGG16", "Bert", "DQN", "ResNet18")
    ]
    grouper = MultiRoundGrouper(max_group_size=4)
    result = grouper.group(jobs, capacity=2)  # pretend only 2 GPUs free
    for group in result.groups:
        members = ", ".join(job.spec.model for job in group.jobs)
        print(f"group on {group.num_gpus} GPU(s): [{members}] "
              f"gamma={group.believed_efficiency:.2f}")
    print(f"total matching efficiency: {result.total_efficiency:.2f} "
          f"({result.rounds} rounds)")


def step4_simulate():
    print()
    print("=" * 70)
    print("Step 4 — simulate Muri-S vs SRSF on a congested 16-GPU cluster")
    print("=" * 70)
    trace = generate_trace("1", num_jobs=150, seed=7, at_time_zero=True)
    specs = [s for s in build_jobs(trace, seed=7) if s.num_gpus <= 16]

    for scheduler in (make_scheduler("srsf"), make_scheduler("muri-s")):
        simulator = ClusterSimulator(scheduler, cluster=Cluster(2, 8))
        result = simulator.run(specs, trace.name)
        print(f"{scheduler.name:8s}: avg JCT {result.avg_jct:8.0f}s   "
              f"p99 {result.tail_jct(99):8.0f}s   "
              f"makespan {result.makespan:8.0f}s")


if __name__ == "__main__":
    step1_profiles()
    step2_efficiency()
    step3_grouping()
    step4_simulate()
