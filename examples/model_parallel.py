#!/usr/bin/env python3
"""Model-parallel (pipeline) training under Muri — the paper's §7 sketch.

Builds pipeline-parallel jobs (per-worker staged profiles: receive /
compute / send, with loading on the first worker and gradient sync on
the last), shows where each pipeline idles, and demonstrates that
Muri's grouping interleaves a compute-bound pipeline with an IO-bound
one on the same GPUs.

Run:  python examples/model_parallel.py
"""

from repro import ClusterSimulator, Job
from repro.analysis import format_table, render_group_schedule
from repro.cluster import Cluster
from repro.core import MultiRoundGrouper
from repro.jobs import make_model_parallel_job
from repro.schedulers import make_scheduler


def build_pipelines():
    # A GPT-style model: compute-dominant, modest activations.
    llm = make_model_parallel_job(
        num_stages=4,
        compute_time=1.6,
        activation_time=0.08,
        load_time=0.02,
        preprocess_time=0.02,
        sync_time=0.30,
        num_iterations=400,
        model="pipeline-llm",
        name="llm",
    )
    # A multimodal encoder: heavy data loading on the first stage.
    encoder = make_model_parallel_job(
        num_stages=4,
        compute_time=0.6,
        activation_time=0.10,
        load_time=0.70,
        preprocess_time=0.25,
        sync_time=0.15,
        num_iterations=400,
        model="pipeline-encoder",
        name="encoder",
    )
    return llm, encoder


def show_pipeline(job):
    print(f"\n{job.spec.name}: {job.num_stages} stages, "
          f"steady-state period {job.pipeline_period:.2f}s/iter, "
          f"bottleneck = worker {job.bottleneck_worker.index} "
          f"({job.bottleneck_worker.role})")
    rows = []
    for worker, utilization in zip(job.workers, job.worker_utilizations()):
        p = worker.profile
        rows.append((
            worker.index, worker.role,
            p.durations[0], p.durations[1], p.durations[2], p.durations[3],
            utilization,
        ))
    print(format_table(
        ["Worker", "Role", "storage", "cpu", "gpu", "network", "busy frac"],
        rows,
    ))


def main():
    llm, encoder = build_pipelines()
    show_pipeline(llm)
    show_pipeline(encoder)

    print("\nInterleaving the two pipelines (both occupy 4 GPUs, so they")
    print("share one 4-GPU set under Muri's grouping):\n")
    jobs = [Job(llm.spec), Job(encoder.spec)]
    result = MultiRoundGrouper().group(jobs, capacity=4)
    group = result.groups[0]
    print(render_group_schedule(group, width=64))

    print("\nScheduling both pipelines plus a queue of single-GPU jobs on")
    print("an 8-GPU machine, Muri-S vs SRSF:")
    from repro.models import get_model
    from repro.jobs import JobSpec

    fill = [
        JobSpec(profile=get_model(m).stage_profile(1), num_iterations=600,
                model=m)
        for m in ("ShuffleNet", "A2C", "Bert", "DQN") * 2
    ]
    specs = [llm.spec, encoder.spec] + fill
    for name in ("srsf", "muri-s"):
        scheduler = make_scheduler(name)
        run = ClusterSimulator(scheduler, cluster=Cluster(1, 8)).run(
            specs, "pipelines"
        )
        print(f"  {scheduler.name:8s} avg JCT {run.avg_jct:7.0f}s  "
              f"makespan {run.makespan:7.0f}s")


if __name__ == "__main__":
    main()
