#!/usr/bin/env python3
"""Fault handling: jobs crash, get requeued, and still finish.

The paper's executor terminates a faulted training process, reports the
error, and pushes the job back into the queue (section 5).  This
example injects faults at different rates and checkpoint granularities
and measures the JCT cost under Muri-L.

Run:  python examples/fault_tolerance.py
"""

from repro import ClusterSimulator, FaultInjector, make_scheduler
from repro.analysis import format_table
from repro.cluster import Cluster
from repro.trace import build_jobs, generate_trace


def run(mtbf_hours, progress_loss):
    trace = generate_trace("1", num_jobs=120, seed=5, at_time_zero=True)
    specs = [s for s in build_jobs(trace, seed=5) if s.num_gpus <= 16]
    injector = FaultInjector(
        mean_time_between_faults=(
            mtbf_hours * 3600.0 if mtbf_hours else float("inf")
        ),
        seed=1,
        progress_loss=progress_loss,
    )
    simulator = ClusterSimulator(
        make_scheduler("muri-l"),
        cluster=Cluster(2, 8),
        fault_injector=injector,
    )
    return simulator.run(specs, trace.name)


def main():
    baseline = run(mtbf_hours=None, progress_loss=0.0)
    rows = [("no faults", baseline.avg_jct / 3600.0, 1.00,
             baseline.total_preemptions)]
    for mtbf_hours, loss in ((8.0, 0.0), (2.0, 0.0), (2.0, 0.5), (0.5, 0.0)):
        result = run(mtbf_hours, loss)
        rows.append((
            f"MTBF {mtbf_hours:g}h, loss {loss:.0%}",
            result.avg_jct / 3600.0,
            result.avg_jct / baseline.avg_jct,
            result.total_preemptions,
        ))
    print(format_table(
        ["Fault model", "Avg JCT (h)", "vs fault-free", "Stop/restarts"],
        rows,
        title="Muri-L under fault injection (120 jobs, 16 GPUs)",
    ))
    print("\nEvery job completes in every configuration; faults cost time")
    print("(requeueing + lost progress), never correctness.")


if __name__ == "__main__":
    main()
