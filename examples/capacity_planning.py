#!/usr/bin/env python3
"""Capacity planning: how many GPUs does interleaving save?

The operator's question: "my cluster runs this workload under SRSF
today — if I switch to Muri, how much smaller could the cluster be for
the same service level?"  This example answers it with the capacity
API, then checks the claim's robustness across seeds with bootstrap
confidence intervals.

Run:  python examples/capacity_planning.py
"""

from repro.analysis import (
    bootstrap_mean_ci,
    capacity_sweep,
    equivalent_capacity,
    format_table,
    multi_seed_speedups,
)
from repro.cluster import Cluster
from repro.schedulers import make_scheduler
from repro.sim import ClusterSimulator
from repro.trace import build_jobs, generate_trace

GPUS_PER_MACHINE = 8


def build_workload(seed):
    # The all-at-t=0 variant: a saturated cluster, where the capacity
    # question is sharpest (interleaving pays when GPUs are scarce).
    trace = generate_trace("2", num_jobs=180, seed=seed, at_time_zero=True)
    return trace, [
        s for s in build_jobs(trace, seed=seed) if s.num_gpus <= 16
    ]


def main():
    trace, specs = build_workload(seed=21)

    # 1. Sweep cluster sizes under both schedulers.
    sweep = capacity_sweep(
        specs,
        {
            "SRSF": lambda: make_scheduler("srsf"),
            "Muri-S": lambda: make_scheduler("muri-s"),
        },
        machine_counts=(2, 3, 4, 6, 8),
        gpus_per_machine=GPUS_PER_MACHINE,
        trace_name=trace.name,
    )
    rows = [
        (m * GPUS_PER_MACHINE,
         sweep[m]["SRSF"].avg_jct / 3600.0,
         sweep[m]["Muri-S"].avg_jct / 3600.0)
        for m in sorted(sweep)
    ]
    print(format_table(
        ["GPUs", "SRSF avg JCT (h)", "Muri-S avg JCT (h)"],
        rows,
        title=f"Capacity sweep on {trace.name} ({len(specs)} jobs)",
    ))

    # 2. Find the smallest Muri cluster matching SRSF's 8-machine JCT.
    target = sweep[8]["SRSF"].avg_jct * 1.05
    needed = equivalent_capacity(
        specs,
        lambda: make_scheduler("muri-s"),
        target_value=target,
        machine_range=(1, 8),
        gpus_per_machine=GPUS_PER_MACHINE,
        trace_name=trace.name,
    )
    if needed is not None:
        saved = (8 - needed) * GPUS_PER_MACHINE
        print(f"\nMuri-S matches SRSF@64 GPUs (within 5%) with "
              f"{needed * GPUS_PER_MACHINE} GPUs — {saved} GPUs saved.")

    # 3. Robustness: the constrained-capacity win across seeds.
    def one_seed(seed):
        _trace, workload = build_workload(seed)
        results = {}
        for name in ("srsf", "muri-s"):
            results[name] = ClusterSimulator(
                make_scheduler(name), cluster=Cluster(3, GPUS_PER_MACHINE)
            ).run(workload, "capacity-robustness")
        return results["srsf"].avg_jct, results["muri-s"].avg_jct

    speedups = multi_seed_speedups(one_seed, seeds=range(4))
    interval = bootstrap_mean_ci(speedups)
    print(f"\nAt 24 GPUs (capacity-constrained), Muri-S/SRSF JCT speedup "
          f"across 4 seeds: mean {interval.estimate:.2f}x, "
          f"95% CI [{interval.low:.2f}, {interval.high:.2f}]")


if __name__ == "__main__":
    main()
