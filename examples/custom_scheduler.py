#!/usr/bin/env python3
"""Writing your own scheduler on top of the framework.

The library's scheduler interface is one method.  This example builds
**Muri-FTF** — a hybrid that orders the queue by Themis-style
finish-time fairness but packs with Muri's Blossom-based interleaving —
and races it against its two parents.  It demonstrates:

* subclassing :class:`repro.schedulers.Scheduler`;
* reusing the grouping machinery (`MultiRoundGrouper`);
* the contract with the simulator (return groups within capacity;
  groups with the same member set keep running untouched).

Run:  python examples/custom_scheduler.py
"""

from typing import Dict, FrozenSet, List, Sequence

from repro import ClusterSimulator
from repro.analysis import format_table
from repro.cluster import Cluster
from repro.core import JobGroup, MultiRoundGrouper
from repro.jobs import Job
from repro.schedulers import Scheduler, make_scheduler
from repro.schedulers.themis import ThemisScheduler
from repro.trace import build_jobs, generate_trace


class MuriFtfScheduler(Scheduler):
    """Finish-time-fair queue order + Muri-style interleaved packing."""

    duration_aware = False
    preemptive = True

    def __init__(self) -> None:
        self.name = "Muri-FTF"
        self._rho = ThemisScheduler().finish_time_fairness
        self._grouper = MultiRoundGrouper()

    def decide(
        self,
        now: float,
        jobs: Sequence[Job],
        running: Dict[FrozenSet[int], JobGroup],
        total_gpus: int,
        reason: str = "tick",
    ) -> List[JobGroup]:
        # 1. Most unfairly treated first (highest rho).
        priority = {
            job.job_id: (-self._rho(job, now), job.spec.submit_time)
            for job in jobs
        }
        ordered = sorted(jobs, key=lambda job: priority[job.job_id])

        # 2. Interleave the head of the queue; keep running groups as
        #    seeds so unchanged plans don't thrash restarts.
        budget = 4 * total_gpus
        batch, demand = [], 0
        for job in ordered:
            if demand + job.num_gpus > budget:
                break
            batch.append(job)
            demand += job.num_gpus
        result = self._grouper.group(
            batch,
            capacity=total_gpus,
            preformed=[tuple(key) for key in running],
        )

        # 3. Fill the cluster, fairest groups first.
        groups = sorted(
            result.groups,
            key=lambda g: min(priority[j.job_id] for j in g.jobs),
        )
        plan, free = [], total_gpus
        for group in groups:
            if group.num_gpus <= free:
                plan.append(group)
                free -= group.num_gpus
        return plan


def main():
    trace = generate_trace("2", num_jobs=200, seed=13)
    specs = [s for s in build_jobs(trace, seed=13) if s.num_gpus <= 32]

    rows = []
    for scheduler in (make_scheduler("themis"), make_scheduler("muri-l"),
                      MuriFtfScheduler()):
        result = ClusterSimulator(scheduler, cluster=Cluster(4, 8)).run(
            specs, trace.name
        )
        rows.append((
            scheduler.name,
            result.avg_jct,
            result.tail_jct(99),
            result.makespan,
            result.avg_blocking_index,
        ))
    print(format_table(
        ["Scheduler", "Avg JCT (s)", "p99 JCT (s)", "Makespan (s)",
         "Blocking idx"],
        rows,
        title="A custom hybrid vs its parents (200 jobs, 32 GPUs)",
    ))
    print("\nMuri-FTF inherits Themis's fairness ordering and Muri's")
    print("throughput — compare its tail JCT and blocking index to both.")


if __name__ == "__main__":
    main()
