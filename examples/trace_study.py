#!/usr/bin/env python3
"""Trace-driven scheduler study with persistent artifacts.

Generates a Philly-like trace, saves it to CSV, runs the full scheduler
matrix on it, prints the comparison, and writes the resulting metrics
to JSON — the workflow for running your own what-if studies on top of
this library.

Run:  python examples/trace_study.py [num_jobs]
"""

import json
import sys
from pathlib import Path

from repro import ClusterSimulator
from repro.analysis import format_table
from repro.cluster import Cluster
from repro.schedulers import make_scheduler
from repro.sim import DecisionLog
from repro.trace import Trace, build_jobs, generate_trace

OUTPUT_DIR = Path(__file__).parent / "output"
SCHEDULERS = ("fifo", "srtf", "srsf", "tiresias", "themis", "antman",
              "muri-s", "muri-l")


def main():
    num_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    OUTPUT_DIR.mkdir(exist_ok=True)

    # 1. Generate and persist the trace (CSV round-trips losslessly).
    trace = generate_trace("2", num_jobs=num_jobs, seed=42)
    trace_path = OUTPUT_DIR / "trace.csv"
    trace.to_csv(trace_path)
    reloaded = Trace.from_csv(trace_path, name=trace.name)
    assert len(reloaded) == len(trace)
    print(f"trace: {len(trace)} jobs, load {trace.load_factor(64):.1f}x "
          f"over 64 GPUs  -> {trace_path}")

    # 2. Materialize jobs (models assigned like the paper: uniformly
    #    from the Table 3 mix).
    specs = build_jobs(trace, seed=42)

    # 3. Run the scheduler matrix.
    rows = []
    metrics = {}
    for name in SCHEDULERS:
        scheduler = make_scheduler(name)
        decision_log = DecisionLog()
        result = ClusterSimulator(
            scheduler, cluster=Cluster(8, 8), decision_log=decision_log
        ).run(specs, trace.name)
        summary = result.summary()
        rows.append((
            scheduler.name,
            summary.avg_jct / 3600.0,
            summary.p99_jct / 3600.0,
            summary.makespan / 3600.0,
            summary.avg_queue_length,
            summary.total_preemptions,
        ))
        metrics[scheduler.name] = {
            "avg_jct_s": summary.avg_jct,
            "p50_jct_s": summary.p50_jct,
            "p99_jct_s": summary.p99_jct,
            "makespan_s": summary.makespan,
            "avg_queue_length": summary.avg_queue_length,
            "avg_blocking_index": summary.avg_blocking_index,
            "avg_utilization": list(summary.avg_utilization),
            "preemptions": summary.total_preemptions,
            "jct_cdf": result.jct_cdf(points=10),
            "decisions": decision_log.summary(),
        }

    print()
    print(format_table(
        ["Scheduler", "Avg JCT (h)", "p99 (h)", "Makespan (h)",
         "Avg queue", "Preemptions"],
        rows,
        title=f"Scheduler comparison on {trace.name} ({num_jobs} jobs, 64 GPUs)",
    ))

    # 4. Persist the metrics for downstream analysis.
    metrics_path = OUTPUT_DIR / "metrics.json"
    metrics_path.write_text(json.dumps(metrics, indent=2))
    print(f"\nmetrics written to {metrics_path}")


if __name__ == "__main__":
    main()
