#!/usr/bin/env python3
"""The profiler pipeline: from raw usage samples to grouping decisions.

Reproduces the "handling multi-resource usage in practice" machinery of
section 4.2 end to end:

1. synthesize a raw multi-resource utilization timeline for a job (the
   kind of data PyTorch Profiler + node monitors produce);
2. reduce it to per-stage durations (normalize to peaks, argmax per
   sample, threshold filter);
3. feed the measured profiles through the ResourceProfiler with
   configurable dry runs and noise;
4. show how noise changes the scheduler's grouping decision quality.

Run:  python examples/profiling_pipeline.py
"""

from repro import JobSpec, ResourceProfiler, UniformNoise
from repro.analysis import format_table
from repro.core import MultiRoundGrouper, interleaving_efficiency
from repro.jobs import Job, Resource
from repro.models import get_model
from repro.profiler import synthesize_timeline


def step1_timeline_reduction():
    print("=" * 70)
    print("Step 1 — reduce a raw usage timeline to stage durations")
    print("=" * 70)
    rows = []
    for name in ("ShuffleNet", "VGG19", "GPT-2", "A2C"):
        truth = get_model(name).stage_profile(16)
        timeline = synthesize_timeline(truth, sample_interval=0.001, seed=3)
        measured = timeline.to_stage_profile(threshold=0.3)
        rows.append((
            name,
            f"{truth.duration(Resource.STORAGE):.3f}/{measured.duration(Resource.STORAGE):.3f}",
            f"{truth.duration(Resource.CPU):.3f}/{measured.duration(Resource.CPU):.3f}",
            f"{truth.duration(Resource.GPU):.3f}/{measured.duration(Resource.GPU):.3f}",
            f"{truth.duration(Resource.NETWORK):.3f}/{measured.duration(Resource.NETWORK):.3f}",
        ))
    print(format_table(
        ["Model", "storage t/m", "cpu t/m", "gpu t/m", "network t/m"],
        rows,
        title="true vs measured stage seconds (t/m)",
    ))


def step2_profiler_cache():
    print()
    print("=" * 70)
    print("Step 2 — dry runs and the per-model profile cache")
    print("=" * 70)
    profiler = ResourceProfiler(num_dry_runs=10)
    specs = [
        JobSpec(profile=get_model(m).stage_profile(1), num_iterations=100, model=m)
        for m in ("Bert", "Bert", "Bert", "DQN")
    ]
    for spec in specs:
        profiler.profile(spec)
    print(f"dry runs executed : {profiler.stats.dry_runs} "
          "(10 per distinct model@gpus, as the paper's profiler reuses")
    print(f"cache hits/misses : {profiler.stats.cache_hits}/"
          f"{profiler.stats.cache_misses}  profiles across same-model jobs)")


def step3_noise_and_grouping():
    print()
    print("=" * 70)
    print("Step 3 — profiling noise degrades grouping decisions (Fig. 14)")
    print("=" * 70)
    models = ("ShuffleNet", "A2C", "GPT-2", "VGG16", "Bert", "DQN",
              "ResNet18", "VGG19")
    jobs = [
        Job(JobSpec(profile=get_model(m).stage_profile(1),
                    num_iterations=100, model=m))
        for m in models
    ]

    rows = []
    for level in (0.0, 0.2, 0.5, 1.0):
        profiler = ResourceProfiler(
            noise=UniformNoise(level), num_dry_runs=1, seed=1,
            cache_by_model=False,
        )
        believed = [profiler.profile(job.spec) for job in jobs]
        result = MultiRoundGrouper().group(jobs, believed, capacity=2)
        # Score the plan with TRUE profiles: what the executor will see.
        realized = sum(
            interleaving_efficiency([j.profile for j in group.jobs])
            for group in result.groups if group.size > 1
        )
        rows.append((level, result.total_efficiency, realized))
    print(format_table(
        ["noise n_p", "believed efficiency", "realized efficiency"],
        rows,
        title="grouping quality under measurement noise",
    ))
    print("\nWith noise the scheduler believes its plan is better than it")
    print("actually is; the realized column is what execution delivers.")


if __name__ == "__main__":
    step1_timeline_reduction()
    step2_profiler_cache()
    step3_noise_and_grouping()
