#!/usr/bin/env python3
"""A production-style mixed cluster: the paper's motivating scenario.

The introduction motivates Muri with three workload families that are
NOT GPU-bound:

* tiny CV models for IoT/edge deployment — bottlenecked on storage IO
  (reading samples outpaces the GPU);
* reinforcement learning — bottlenecked on CPU simulation;
* large distributed NLP models — bottlenecked on network IO for
  gradient synchronization;

plus the classic GPU-bound transformer training.

This example builds such a mixed tenancy (40% edge CV sweeps, 25% RL,
20% distributed NLP, 15% large transformers), runs every scheduler and
reports per-family average JCTs, showing where multi-resource
interleaving pays off.

Run:  python examples/mixed_bottleneck_cluster.py
"""

import random
from collections import defaultdict

from repro import ClusterSimulator, JobSpec
from repro.analysis import format_table
from repro.cluster import Cluster
from repro.models import get_model
from repro.schedulers import make_scheduler

FAMILIES = {
    # family: (models, gpu choices, iteration counts, share of jobs)
    "edge-cv": (("ShuffleNet", "ResNet18"), (1, 1, 2), (400, 2000), 0.40),
    "rl": (("A2C", "DQN"), (1, 2, 4), (500, 3000), 0.25),
    "distributed-nlp": (("VGG16", "VGG19"), (8, 16), (300, 1500), 0.20),
    "transformers": (("GPT-2", "Bert"), (4, 8), (800, 4000), 0.15),
}


def build_workload(num_jobs: int, seed: int):
    rng = random.Random(seed)
    specs, families = [], {}
    names = list(FAMILIES)
    weights = [FAMILIES[name][3] for name in names]
    submit = 0.0
    for _ in range(num_jobs):
        family = rng.choices(names, weights)[0]
        models, gpu_choices, (lo, hi), _share = FAMILIES[family]
        model = get_model(rng.choice(models))
        gpus = rng.choice(gpu_choices)
        spec = JobSpec(
            profile=model.stage_profile(gpus),
            num_gpus=gpus,
            submit_time=submit,
            num_iterations=rng.randint(lo, hi),
            model=model.name,
        )
        specs.append(spec)
        families[spec.job_id] = family
        submit += rng.expovariate(1 / 20.0)  # ~one job per 20 s: congested
    return specs, families


def main():
    specs, families = build_workload(num_jobs=250, seed=11)
    total_work = sum(s.gpu_service for s in specs) / 3600.0
    print(f"workload: {len(specs)} jobs, {total_work:.0f} GPU-hours on 64 GPUs")
    print()

    rows = []
    per_family_rows = defaultdict(dict)
    for name in ("srsf", "muri-s", "tiresias", "antman", "muri-l"):
        scheduler = make_scheduler(name)
        result = ClusterSimulator(scheduler, cluster=Cluster(8, 8)).run(
            specs, "mixed-cluster"
        )
        rows.append(
            (scheduler.name, result.avg_jct / 3600.0,
             result.tail_jct(99) / 3600.0, result.makespan / 3600.0)
        )
        family_jcts = defaultdict(list)
        for job_id, jct in result.jcts.items():
            family_jcts[families[job_id]].append(jct)
        for family, jcts in family_jcts.items():
            per_family_rows[family][scheduler.name] = (
                sum(jcts) / len(jcts) / 3600.0
            )

    print(format_table(
        ["Scheduler", "Avg JCT (h)", "p99 JCT (h)", "Makespan (h)"],
        rows,
        title="Cluster-wide metrics",
    ))
    print()

    schedulers = [row[0] for row in rows]
    family_table = [
        [family] + [per_family_rows[family][name] for name in schedulers]
        for family in FAMILIES
    ]
    print(format_table(
        ["Family"] + schedulers,
        family_table,
        title="Average JCT by workload family (hours)",
    ))
    print()
    print("Things to notice: Muri helps most when bottleneck-diverse jobs")
    print("coexist; edge-CV sweeps (storage-bound) interleave almost for")
    print("free with transformers (GPU-bound) and RL (CPU-bound).")


if __name__ == "__main__":
    main()
