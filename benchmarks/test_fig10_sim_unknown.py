"""Figure 10: trace-driven simulations, job durations unknown.

Paper: Muri-L improves average JCT by 1.53-6.15x, makespan by 1-1.55x,
and tail JCT by 1.21-5.37x over Tiresias/AntMan/Themis.

Shape expectations:

* Muri-L beats Tiresias and AntMan on JCT on every congested trace;
* AntMan's JCT is the weakest column (non-preemptive FIFO), i.e.
  Muri-L's speedup over AntMan exceeds its speedup over Tiresias on
  most traces;
* unknown-duration speedups exceed the known-duration ones of Fig. 9.
"""

from repro.analysis.experiments import simulation_comparison
from repro.analysis.report import format_table

TRACES = ("1", "2", "3", "4", "1'", "2'", "3'", "4'")
CONGESTED = ("1", "2", "4", "1'", "2'", "3'", "4'")


def test_fig10(benchmark, record_text):
    sweep = benchmark.pedantic(
        simulation_comparison,
        kwargs=dict(duration_known=False, trace_ids=TRACES, num_jobs=400, seed=0),
        rounds=1,
        iterations=1,
    )

    rows = []
    for trace_id in TRACES:
        for baseline, speedups in sweep[trace_id].items():
            rows.append(
                (trace_id, baseline, speedups["avg_jct"],
                 speedups["makespan"], speedups["p99_jct"])
            )
    record_text(
        "fig10_sim_unknown",
        format_table(
            ["Trace", "Baseline", "JCT speedup", "Makespan speedup", "p99 speedup"],
            rows,
            title="Fig. 10 — Muri-L speedups (paper: JCT 1.53-6.15x, "
                  "makespan 1-1.55x, p99 1.21-5.37x)",
        ),
    )

    for trace_id in CONGESTED:
        assert sweep[trace_id]["Tiresias"]["avg_jct"] > 1.2, trace_id
        assert sweep[trace_id]["AntMan"]["avg_jct"] > 1.2, trace_id
        assert sweep[trace_id]["Tiresias"]["makespan"] >= 0.95, trace_id

    # AntMan's FIFO hurts its JCT more than Tiresias' on most traces.
    wins = sum(
        1
        for trace_id in CONGESTED
        if sweep[trace_id]["AntMan"]["avg_jct"]
        >= sweep[trace_id]["Tiresias"]["avg_jct"]
    )
    assert wins >= len(CONGESTED) // 2

    # Trace 3: light load, makespan parity.
    assert 0.9 <= sweep["3"]["Tiresias"]["makespan"] <= 1.15
