"""Figure 14: impact of inaccurate profiling.

Paper: stage durations seen by the scheduler are the truth multiplied
by a uniform factor in [1 - n_p, 1 + n_p].  Sweeping n_p from 0 to 1,
the normalized average JCT rises from 1x to ~1.3x, while noise <= 0.2
(the practical regime) costs under ~1%; makespan stays near 1x.

Substitution note (also in DESIGN.md): the paper runs this on its
lightly loaded trace 3, where our capacity-aware Muri would never group
and noise would trivially be a no-op, so the bench uses congested
trace 1 where grouping decisions are actually exercised.
"""

from repro.analysis.experiments import profiling_noise_sweep
from repro.analysis.report import format_series

LEVELS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def test_fig14(benchmark, record_text):
    sweep = benchmark.pedantic(
        profiling_noise_sweep,
        kwargs=dict(noise_levels=LEVELS, num_jobs=400, seed=0),
        rounds=1,
        iterations=1,
    )

    record_text(
        "fig14_profiling_noise",
        format_series(
            "noise n_p",
            list(LEVELS),
            {
                "Norm. avg JCT": [sweep[level]["avg_jct"] for level in LEVELS],
                "Norm. makespan": [sweep[level]["makespan"] for level in LEVELS],
            },
            title="Fig. 14 — Muri-L under profiling noise (paper: JCT "
                  "1x -> ~1.3x, <=0.2 noise nearly free)",
        ),
    )

    assert sweep[0.0]["avg_jct"] == 1.0
    # Practical noise (<= 0.2) is nearly free.
    assert sweep[0.2]["avg_jct"] <= 1.10
    # Full noise degrades but stays bounded (the paper tops out ~1.3x).
    assert 1.0 <= sweep[1.0]["avg_jct"] <= 1.5
    # Noise never helps beyond tolerance.
    for level in LEVELS:
        assert sweep[level]["avg_jct"] >= 0.97
