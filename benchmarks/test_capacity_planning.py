"""Capacity planning: the GPU savings interleaving buys.

Translates the paper's speedups into the operator's currency: how many
machines does each scheduler need to hit the same average JCT the
SRSF baseline achieves on the full 8-machine cluster?
"""

from repro.analysis.capacity import capacity_sweep, equivalent_capacity
from repro.analysis.report import format_table
from repro.schedulers.registry import make_scheduler
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs

MACHINES = (2, 4, 6, 8)


def test_capacity_planning(benchmark, record_text):
    trace = generate_trace("1", num_jobs=250, seed=9)
    specs = [s for s in build_jobs(trace, seed=9) if s.num_gpus <= 16]

    def run():
        sweep = capacity_sweep(
            specs,
            {
                "SRSF": lambda: make_scheduler("srsf"),
                "Muri-S": lambda: make_scheduler("muri-s"),
            },
            machine_counts=MACHINES,
            trace_name=trace.name,
        )
        # "Match" = within 5% of the baseline's full-cluster JCT (at
        # bench scale Muri-S and SRSF sit near JCT parity; the paper's
        # loads give Muri more headroom).
        target = sweep[8]["SRSF"].avg_jct * 1.05
        needed = equivalent_capacity(
            specs,
            lambda: make_scheduler("muri-s"),
            target_value=target,
            machine_range=(1, 8),
            trace_name=trace.name,
        )
        return sweep, target, needed

    sweep, target, needed = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for machines in MACHINES:
        rows.append((
            machines * 8,
            sweep[machines]["SRSF"].avg_jct,
            sweep[machines]["Muri-S"].avg_jct,
        ))
    rows.append((f"Muri-S machines to match SRSF@64 GPUs "
                 f"(JCT {target:.0f}s)", 0.0, float(needed * 8)))
    record_text(
        "capacity_planning",
        format_table(
            ["GPUs", "SRSF avg JCT (s)", "Muri-S avg JCT (s)"],
            rows,
            title="Capacity sweep (trace 1, 250 jobs)",
        ),
    )

    # Muri matches the baseline's full-cluster JCT with fewer machines.
    assert needed is not None
    assert needed <= 8
    # And at every swept size, Muri's JCT is within noise of or better
    # than the baseline's at the same size under congestion.
    assert sweep[2]["Muri-S"].avg_jct <= sweep[2]["SRSF"].avg_jct * 1.05
