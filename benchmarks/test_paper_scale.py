"""Paper-scale validation: one full-size trace, end to end.

Every other bench uses 400-job traces for runtime.  This one runs
trace 1 at its full published size (992 jobs, the paper's smallest
slice) on the 64-GPU cluster for the headline pairings, demonstrating
that the harness — and the speedup shapes — hold at the paper's scale,
not just at bench scale.
"""

from repro.analysis.report import format_table
from repro.cluster.cluster import Cluster
from repro.schedulers.registry import make_scheduler
from repro.sim.simulator import ClusterSimulator
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs

SCHEDULERS = ("srsf", "muri-s", "tiresias", "muri-l")


def test_paper_scale_trace1(benchmark, record_text):
    trace = generate_trace("1", seed=1)  # full 992 jobs
    specs = build_jobs(trace, seed=1)

    def run_all():
        return {
            name: ClusterSimulator(
                make_scheduler(name), cluster=Cluster(8, 8)
            ).run(specs, trace.name)
            for name in SCHEDULERS
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        (r.scheduler_name, r.avg_jct, r.tail_jct(99), r.makespan,
         r.wall_clock)
        for r in results.values()
    ]
    s_known = results["muri-s"].speedup_over(results["srsf"])
    s_unknown = results["muri-l"].speedup_over(results["tiresias"])
    rows.append(("Muri-S/SRSF speedup", s_known["avg_jct"],
                 s_known["p99_jct"], s_known["makespan"], 0.0))
    rows.append(("Muri-L/Tiresias speedup", s_unknown["avg_jct"],
                 s_unknown["p99_jct"], s_unknown["makespan"], 0.0))
    record_text(
        "paper_scale_trace1",
        format_table(
            ["Scheduler", "Avg JCT (s)", "p99 JCT (s)", "Makespan (s)",
             "Sim wall (s)"],
            rows,
            title=f"Full-size {trace.name} ({len(specs)} jobs, 64 GPUs)",
        ),
    )

    assert results["muri-s"].num_jobs == len(specs)
    # Headline shapes hold at paper scale.
    assert s_known["avg_jct"] >= 0.95
    assert s_known["makespan"] >= 1.0
    assert s_unknown["avg_jct"] >= 1.3
    assert s_unknown["makespan"] >= 1.0
