"""Ablation (DESIGN.md section 5): scheduling-interval sensitivity.

The paper fixes the interval at six minutes "to minimize the overhead
of preemption and restart".  This bench sweeps the interval and shows
the trade-off it balances:

* short intervals react faster (lower queueing) but pay restarts and,
  for Muri, regroup churn;
* long intervals waste capacity between completions and ticks.
"""

from repro.analysis.report import format_table
from repro.cluster.cluster import Cluster
from repro.schedulers.registry import make_scheduler
from repro.sim.simulator import ClusterSimulator
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs

INTERVALS = (60.0, 180.0, 360.0, 900.0, 1800.0)


def test_ablation_interval(benchmark, record_text):
    trace = generate_trace("1", num_jobs=250, seed=3)
    specs = build_jobs(trace, seed=3)

    def sweep():
        rows = []
        for interval in INTERVALS:
            for name in ("srsf", "muri-s"):
                result = ClusterSimulator(
                    make_scheduler(name),
                    cluster=Cluster(8, 8),
                    scheduling_interval=interval,
                ).run(specs, trace.name)
                rows.append((
                    interval, result.scheduler_name, result.avg_jct,
                    result.makespan, result.total_preemptions,
                ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_text(
        "ablation_interval",
        format_table(
            ["Interval (s)", "Scheduler", "Avg JCT (s)", "Makespan (s)",
             "Preemptions"],
            rows,
            title="Scheduling-interval sensitivity (paper fixes 360 s)",
        ),
    )

    by_key = {(interval, name): (jct, mk, pre)
              for interval, name, jct, mk, pre in rows}
    # Preemption churn decreases with longer intervals for Muri.
    muri_preempts = [by_key[(i, "Muri-S")][2] for i in INTERVALS]
    assert muri_preempts[0] >= muri_preempts[-1]
    # The extremes are worse than the paper's middle ground on JCT for
    # at least one scheduler (the trade-off exists).
    muri_jcts = {i: by_key[(i, "Muri-S")][0] for i in INTERVALS}
    assert min(muri_jcts.values()) <= muri_jcts[1800.0]
