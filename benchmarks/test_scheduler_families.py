"""The scheduler landscape: every family on one congested trace.

A summary artifact beyond any single paper figure: the classic queue
disciplines (FIFO/SJF/SRSF), the fairness family (DRF, Themis), the
duration-unaware family (Tiresias), the GPU-sharing family (AntMan),
the big-data space packer (Tetris), and Muri, all on the same
workload.  The expected landscape:

* Tetris degenerates to SRTF-like behaviour for DL jobs (section 6.1);
* AntMan's FIFO order gives the worst average JCT among sharers;
* Muri-S leads overall; Muri-L leads the duration-unaware column.
"""

from repro.analysis.report import format_table
from repro.cluster.cluster import Cluster
from repro.schedulers.registry import make_scheduler
from repro.sim.simulator import ClusterSimulator
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs

FAMILIES = [
    ("fifo", "queue discipline"),
    ("sjf", "queue discipline"),
    ("srsf", "queue discipline"),
    ("tetris", "space packing"),
    ("drf", "fairness"),
    ("themis", "fairness"),
    ("tiresias", "duration-unaware"),
    ("antman", "GPU sharing"),
    ("muri-s", "interleaving"),
    ("muri-l", "interleaving"),
]


def test_scheduler_families(benchmark, record_text):
    trace = generate_trace("2", num_jobs=300, seed=11)
    specs = build_jobs(trace, seed=11)

    def run_all():
        results = {}
        for name, _family in FAMILIES:
            results[name] = ClusterSimulator(
                make_scheduler(name), cluster=Cluster(8, 8)
            ).run(specs, trace.name)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, family in FAMILIES:
        r = results[name]
        rows.append((
            r.scheduler_name, family, r.avg_jct, r.tail_jct(99),
            r.makespan, r.avg_blocking_index,
        ))
    rows.sort(key=lambda row: row[2])
    record_text(
        "scheduler_families",
        format_table(
            ["Scheduler", "Family", "Avg JCT (s)", "p99 JCT (s)",
             "Makespan (s)", "Blocking idx"],
            rows,
            title=f"All scheduler families on {trace.name} "
                  f"({len(specs)} jobs, 64 GPUs), sorted by avg JCT",
        ),
    )

    jct = {name: results[name].avg_jct for name, _f in FAMILIES}
    # Tetris degenerates toward the SRTF-like end, far from FIFO.
    assert jct["tetris"] < jct["fifo"]
    # AntMan trails the preemptive sharers on JCT.
    assert jct["antman"] > jct["muri-l"]
    # Muri-S is the best or tied-best overall.
    assert jct["muri-s"] <= min(jct.values()) * 1.10
    # Muri-L leads the duration-unaware group.
    assert jct["muri-l"] <= min(jct["tiresias"], jct["themis"], jct["drf"])
