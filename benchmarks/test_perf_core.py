"""Performance microbenchmarks for the core algorithms.

Unlike the experiment benches (one pedantic round each), these run
multiple rounds and exist to catch performance regressions in the hot
paths: blossom matching, multi-round grouping, ordering enumeration,
and a full scheduler decision.

Budget context: the paper says the centralized scheduler groups 1,000
jobs in "a few seconds"; our Python blossom matches 256 jobs in tens of
milliseconds and a full Muri decision over a 256-GPU-demand batch runs
in well under a second.
"""

import random
import time

from repro.core.grouping import MultiRoundGrouper
from repro.core.muri import MuriScheduler
from repro.core.ordering import best_ordering
from repro.jobs.job import Job, JobSpec
from repro.matching.blossom import matching_pairs
from repro.matching.sparsify import SparsifyConfig, sparse_candidate_edges
from repro.models.zoo import DEFAULT_MODELS, get_model


def _random_edges(n, seed=0):
    rng = random.Random(seed)
    weights = [round(rng.uniform(0.3, 1.0), 3) for _ in range(64)]
    return [
        (u, v, weights[(u * 7 + v) % 64])
        for u in range(n) for v in range(u + 1, n)
    ]


def _random_jobs(n, seed=0):
    rng = random.Random(seed)
    return [
        Job(JobSpec(
            profile=get_model(rng.choice(DEFAULT_MODELS)).stage_profile(1),
            num_iterations=rng.randint(100, 5000),
        ))
        for _ in range(n)
    ]


def test_perf_blossom_128(benchmark):
    edges = _random_edges(128)
    pairs = benchmark(matching_pairs, edges)
    assert len(pairs) == 64


def test_perf_blossom_256(benchmark):
    edges = _random_edges(256)
    pairs = benchmark(matching_pairs, edges)
    assert len(pairs) == 128


def test_perf_grouping_128_jobs(benchmark):
    jobs = _random_jobs(128)
    grouper = MultiRoundGrouper()

    def group():
        return grouper.group(jobs, capacity=32)

    result = benchmark(group)
    assert result.total_gpu_demand <= 128


def test_perf_ordering_enumeration(benchmark):
    profiles = tuple(
        get_model(name).stage_profile(1)
        for name in ("ShuffleNet", "A2C", "GPT-2", "VGG16")
    )
    offsets, period = benchmark(best_ordering, profiles)
    assert period > 0


def test_perf_grouping_512(benchmark):
    """512 single-GPU jobs, capacity 128: the sparse candidate graph
    keeps this in the hundreds of milliseconds (dense: >10 s)."""
    jobs = _random_jobs(512, seed=1)
    grouper = MultiRoundGrouper()

    def group():
        return grouper.group(jobs, capacity=128)

    result = benchmark.pedantic(group, rounds=3, iterations=1)
    assert result.total_gpu_demand == 128


def test_perf_grouping_1024(benchmark):
    """The paper's scale: 1,024 jobs grouped in a few seconds."""
    jobs = _random_jobs(1024, seed=2)
    grouper = MultiRoundGrouper()

    def group():
        return grouper.group(jobs, capacity=256)

    result = benchmark.pedantic(group, rounds=3, iterations=1)
    assert result.total_gpu_demand == 256


def test_perf_blossom_sparse_1024(benchmark):
    """Blossom on a bounded-degree 1,024-node candidate graph.

    The O(V^3) solver is the reason the grouper sparsifies: a dense
    1,024-node instance hands it ~524k edges, the sparse build a few
    thousand, and the matching itself stays fast.
    """
    config = SparsifyConfig(threshold=2, max_degree=8, probe_limit=24)
    signatures = [(i % 4, (i // 4) % 3) for i in range(1024)]
    edges = sparse_candidate_edges(
        signatures, lambda i, j: 1.0 / (1 + abs(i - j)), config
    )
    assert len(edges) <= 1024 * config.max_degree
    pairs = benchmark.pedantic(matching_pairs, args=(edges,), rounds=3, iterations=1)
    assert len(pairs) >= 448  # near-perfect: >= 87% of the 512 possible


def test_perf_grouping_sparse_vs_dense_1024(benchmark, record_text):
    """Acceptance check: sparse vs dense grouping over the same
    1,024-job queue in one run — >= 5x faster, efficiency within 2%."""
    jobs = _random_jobs(1024, seed=0)

    def compare():
        timings = {}
        results = {}
        for label, threshold in (("sparse", 128), ("dense", None)):
            grouper = MultiRoundGrouper(sparsify_threshold=threshold)
            start = time.perf_counter()
            results[label] = grouper.group(jobs, capacity=256)
            timings[label] = time.perf_counter() - start
        return results, timings

    results, timings = benchmark.pedantic(compare, rounds=1, iterations=1)
    speedup = timings["dense"] / timings["sparse"]
    gap = 1.0 - (
        results["sparse"].total_efficiency / results["dense"].total_efficiency
    )
    record_text(
        "perf_grouping_sparse_vs_dense_1024",
        "grouping 1,024 single-GPU jobs, capacity=256\n"
        f"dense : {timings['dense']:8.2f}s  "
        f"efficiency {results['dense'].total_efficiency:.2f}\n"
        f"sparse: {timings['sparse']:8.2f}s  "
        f"efficiency {results['sparse'].total_efficiency:.2f}\n"
        f"speedup {speedup:.1f}x, efficiency gap {gap * 100:.2f}%",
    )
    assert speedup >= 5.0
    assert gap <= 0.02
    assert results["sparse"].total_gpu_demand == 256


def test_perf_muri_decision_256_demand(benchmark):
    """One full Muri scheduling decision: 256 jobs against 64 GPUs."""
    jobs = _random_jobs(256, seed=3)
    scheduler = MuriScheduler()

    def decide():
        # Fresh scheduler state is irrelevant here; the grouper caches
        # by profile multiset, which is the production behaviour.
        return scheduler.decide(0.0, jobs, {}, total_gpus=64)

    plan = benchmark(decide)
    assert sum(group.num_gpus for group in plan) <= 64
