"""Performance microbenchmarks for the core algorithms.

Unlike the experiment benches (one pedantic round each), these run
multiple rounds and exist to catch performance regressions in the hot
paths: blossom matching, multi-round grouping, ordering enumeration,
and a full scheduler decision.

Budget context: the paper says the centralized scheduler groups 1,000
jobs in "a few seconds"; our Python blossom matches 256 jobs in tens of
milliseconds and a full Muri decision over a 256-GPU-demand batch runs
in well under a second.
"""

import random

from repro.core.grouping import MultiRoundGrouper
from repro.core.muri import MuriScheduler
from repro.core.ordering import best_ordering
from repro.jobs.job import Job, JobSpec
from repro.matching.blossom import matching_pairs
from repro.models.zoo import DEFAULT_MODELS, get_model


def _random_edges(n, seed=0):
    rng = random.Random(seed)
    weights = [round(rng.uniform(0.3, 1.0), 3) for _ in range(64)]
    return [
        (u, v, weights[(u * 7 + v) % 64])
        for u in range(n) for v in range(u + 1, n)
    ]


def _random_jobs(n, seed=0):
    rng = random.Random(seed)
    return [
        Job(JobSpec(
            profile=get_model(rng.choice(DEFAULT_MODELS)).stage_profile(1),
            num_iterations=rng.randint(100, 5000),
        ))
        for _ in range(n)
    ]


def test_perf_blossom_128(benchmark):
    edges = _random_edges(128)
    pairs = benchmark(matching_pairs, edges)
    assert len(pairs) == 64


def test_perf_blossom_256(benchmark):
    edges = _random_edges(256)
    pairs = benchmark(matching_pairs, edges)
    assert len(pairs) == 128


def test_perf_grouping_128_jobs(benchmark):
    jobs = _random_jobs(128)
    grouper = MultiRoundGrouper()

    def group():
        return grouper.group(jobs, capacity=32)

    result = benchmark(group)
    assert result.total_gpu_demand <= 128


def test_perf_ordering_enumeration(benchmark):
    profiles = tuple(
        get_model(name).stage_profile(1)
        for name in ("ShuffleNet", "A2C", "GPT-2", "VGG16")
    )
    offsets, period = benchmark(best_ordering, profiles)
    assert period > 0


def test_perf_muri_decision_256_demand(benchmark):
    """One full Muri scheduling decision: 256 jobs against 64 GPUs."""
    jobs = _random_jobs(256, seed=3)
    scheduler = MuriScheduler()

    def decide():
        # Fresh scheduler state is irrelevant here; the grouper caches
        # by profile multiset, which is the production behaviour.
        return scheduler.decide(0.0, jobs, {}, total_gpus=64)

    plan = benchmark(decide)
    assert sum(group.num_gpus for group in plan) <= 64
