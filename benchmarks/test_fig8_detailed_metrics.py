"""Figure 8: detailed metrics over time on the testbed trace.

The paper plots queue length, blocking index, and IO/CPU/GPU
utilization for the duration-known (SRTF/SRSF/Muri-S) and
duration-unknown (Tiresias/Themis/Muri-L) scheduler sets.  The claims
the curves support:

* Muri's queue is shorter (it runs more jobs concurrently);
* Muri's blocking index is lower (less starvation);
* Muri's resource utilization is higher.
"""

from repro.analysis.experiments import detailed_metrics
from repro.analysis.report import format_table
from repro.jobs.resources import Resource


def _summarize(results):
    rows = []
    for label, result in results.items():
        util = result.avg_utilization()
        rows.append(
            (
                label,
                result.avg_queue_length,
                result.avg_blocking_index,
                util[Resource.STORAGE],
                util[Resource.CPU],
                util[Resource.GPU],
                util[Resource.NETWORK],
            )
        )
    return rows


HEADERS = [
    "Scheduler", "Avg Queue", "Avg Blocking",
    "IO util", "CPU util", "GPU util", "Net util",
]


def test_fig8_known(benchmark, record_text):
    results = benchmark.pedantic(
        detailed_metrics,
        kwargs=dict(num_jobs=400, seed=0, duration_known=True),
        rounds=1,
        iterations=1,
    )
    rows = _summarize(results)
    record_text(
        "fig8_detailed_known",
        format_table(HEADERS, rows, title="Fig. 8(a) summary — durations known"),
    )
    by_name = {row[0]: row for row in rows}
    # Muri's queue is shorter and utilization at least matches.
    assert by_name["Muri-S"][1] <= by_name["SRSF"][1]
    assert by_name["Muri-S"][2] <= by_name["SRSF"][2] * 1.05
    muri_util = sum(by_name["Muri-S"][3:7])
    srsf_util = sum(by_name["SRSF"][3:7])
    assert muri_util >= srsf_util * 0.95


def test_fig8_unknown(benchmark, record_text):
    results = benchmark.pedantic(
        detailed_metrics,
        kwargs=dict(num_jobs=400, seed=0, duration_known=False),
        rounds=1,
        iterations=1,
    )
    rows = _summarize(results)
    record_text(
        "fig8_detailed_unknown",
        format_table(HEADERS, rows, title="Fig. 8(b) summary — durations unknown"),
    )
    by_name = {row[0]: row for row in rows}
    assert by_name["Muri-L"][1] <= by_name["Tiresias"][1]
    muri_util = sum(by_name["Muri-L"][3:7])
    tiresias_util = sum(by_name["Tiresias"][3:7])
    assert muri_util >= tiresias_util * 0.95


def test_fig8_timeseries_shape(benchmark, record_text):
    """The raw curves themselves: sampled queue/blocking/util series."""
    results = benchmark.pedantic(
        detailed_metrics,
        kwargs=dict(num_jobs=300, seed=0, duration_known=True),
        rounds=1,
        iterations=1,
    )
    lines = []
    for label, result in results.items():
        points = result.timeseries
        step = max(1, len(points) // 10)
        lines.append(f"{label}: {len(points)} samples")
        for point in points[::step]:
            lines.append(
                f"  t={point.time:9.0f}s queue={point.queue_length:4d} "
                f"blocking={point.blocking_index:6.2f} "
                f"util={'/'.join(f'{u:.2f}' for u in point.utilization)}"
            )
    record_text("fig8_timeseries", "\n".join(lines))
    for result in results.values():
        assert len(result.timeseries) > 10
