"""Figure 11: impact of the scheduling-algorithm design.

Paper: compared with full Muri-L,

* "Muri-L w/ worst ordering" (executes the worst stage ordering) is
  clearly worse on both metrics, confirming that ordering matters;
* "Muri-L w/o Blossom" (packs jobs in priority order instead of
  matching) has up to 14% longer average JCT and up to 6% longer
  makespan.
"""

from repro.analysis.experiments import ablation_comparison
from repro.analysis.report import format_table

TRACES = ("1", "2", "3", "4")


def test_fig11(benchmark, record_text):
    sweep = benchmark.pedantic(
        ablation_comparison,
        kwargs=dict(trace_ids=TRACES, num_jobs=400, seed=0),
        rounds=1,
        iterations=1,
    )

    rows = []
    for trace_id in TRACES:
        for variant, metrics in sweep[trace_id].items():
            rows.append(
                (trace_id, variant, metrics["avg_jct"], metrics["makespan"])
            )
    record_text(
        "fig11_ablation",
        format_table(
            ["Trace", "Variant", "Norm. JCT", "Norm. Makespan"],
            rows,
            title="Fig. 11 — normalized to Muri-L (paper: w/o Blossom "
                  "<= 1.14 JCT / <= 1.06 makespan; worst ordering worse)",
        ),
    )

    worst_wins = 0
    greedy_wins = 0
    for trace_id in TRACES:
        variants = sweep[trace_id]
        assert variants["Muri-L"]["avg_jct"] == 1.0
        if variants["Muri-L w/ worst ordering"]["avg_jct"] >= 1.0:
            worst_wins += 1
        if variants["Muri-L w/o Blossom"]["avg_jct"] >= 0.99:
            greedy_wins += 1
    # The full design is at least as good on (nearly) every trace.
    assert worst_wins >= 3
    assert greedy_wins >= 3

    # Worst ordering hurts more than dropping Blossom on congested
    # traces (ordering is the bigger lever, as in the paper's bars).
    congested = [t for t in TRACES if t != "3"]
    bigger = sum(
        1
        for t in congested
        if sweep[t]["Muri-L w/ worst ordering"]["avg_jct"]
        >= sweep[t]["Muri-L w/o Blossom"]["avg_jct"]
    )
    assert bigger >= 2
