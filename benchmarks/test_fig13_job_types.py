"""Figure 13: impact of the workload distribution.

Paper: varying the number of distinct bottleneck job types from one to
four, Muri's speedup grows monotonically — with one type Muri is only
marginally better than the baselines; with two types it reaches 1.42x
of SRTF and 1.49x of Tiresias; with four types 2.26x and 3.92x.
"""

from repro.analysis.experiments import job_type_sweep
from repro.analysis.report import format_series

NUM_TYPES = (1, 2, 3, 4)


def test_fig13(benchmark, record_text):
    sweep = benchmark.pedantic(
        job_type_sweep,
        kwargs=dict(num_types_values=NUM_TYPES, num_jobs=400, seed=0),
        rounds=1,
        iterations=1,
    )

    record_text(
        "fig13_job_types",
        format_series(
            "# job types",
            list(NUM_TYPES),
            {
                "Muri-S/SRTF": [sweep[k]["Muri-S/SRTF"] for k in NUM_TYPES],
                "Muri-L/Tiresias": [sweep[k]["Muri-L/Tiresias"] for k in NUM_TYPES],
            },
            title="Fig. 13 — speedup vs bottleneck diversity (paper: "
                  "1 type ~1x, 4 types 2.26x / 3.92x)",
        ),
    )

    # With one job type, limited sharing opportunity: near parity.
    assert sweep[1]["Muri-S/SRTF"] >= 0.9
    # The speedup grows with the number of types (allow small wobble).
    for metric in ("Muri-S/SRTF", "Muri-L/Tiresias"):
        values = [sweep[k][metric] for k in NUM_TYPES]
        assert values[-1] > values[0], metric
        for left, right in zip(values, values[1:]):
            assert right >= left - 0.12, (metric, values)
    # Four types beat one type clearly.
    assert sweep[4]["Muri-L/Tiresias"] >= sweep[1]["Muri-L/Tiresias"] + 0.15
