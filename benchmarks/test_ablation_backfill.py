"""Ablation (DESIGN.md section 5): tick-only vs event-driven backfill.

The paper's prototype starts jobs only at scheduling-interval
boundaries.  An idealized scheduler could instead re-run scheduling at
every completion.  This bench quantifies what that idealization is
worth per scheduler — and shows that Muri needs it *least*, because
the surviving members of an interleaving group keep the freed
resources busy between ticks (an underappreciated benefit of
interleaving).
"""

from repro.analysis.report import format_table
from repro.cluster.cluster import Cluster
from repro.schedulers.registry import make_scheduler
from repro.sim.simulator import ClusterSimulator
from repro.trace.philly import generate_trace
from repro.trace.workload import build_jobs

SCHEDULERS = ("srsf", "tiresias", "muri-l")


def test_ablation_backfill(benchmark, record_text):
    trace = generate_trace("2", num_jobs=250, seed=5)
    specs = build_jobs(trace, seed=5)

    def sweep():
        table = {}
        for name in SCHEDULERS:
            for backfill in (False, True):
                result = ClusterSimulator(
                    make_scheduler(name),
                    cluster=Cluster(8, 8),
                    backfill_on_completion=backfill,
                ).run(specs, trace.name)
                table[(name, backfill)] = result
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    gains = {}
    for name in SCHEDULERS:
        tick_only = table[(name, False)]
        event = table[(name, True)]
        gain = tick_only.avg_jct / event.avg_jct
        gains[name] = gain
        rows.append((
            tick_only.scheduler_name,
            tick_only.avg_jct, event.avg_jct, gain,
        ))
    record_text(
        "ablation_backfill",
        format_table(
            ["Scheduler", "Tick-only JCT (s)", "Event-driven JCT (s)",
             "Event-driven gain"],
            rows,
            title="Backfill mode: what instant completion handling is worth",
        ),
    )

    # Event-driven backfill never hurts (it strictly adds opportunities).
    for name, gain in gains.items():
        assert gain >= 0.9, name
    # Muri depends on it less than at least one exclusive baseline.
    assert gains["muri-l"] <= max(gains["srsf"], gains["tiresias"]) + 0.05
