"""Table 4: testbed comparison, job durations known.

Paper (400-job busiest interval, 64 GPUs):

                               SRTF   SRSF   Muri-S
    Normalized JCT             2.12   2.03   1
    Normalized Makespan        1.56   1.59   1
    Normalized 99th %-ile JCT  3.31   3.82   1

Shape expectations: Muri-S wins every metric against both baselines
(normalized values > 1); we do not chase the absolute factors, which
depend on the authors' testbed contention.
"""

from repro.analysis.experiments import compare_testbed
from repro.analysis.report import format_speedup_table

BASELINES = ("SRTF", "SRSF", "Muri-S")


def test_table4(benchmark, record_text):
    _results, rows = benchmark.pedantic(
        compare_testbed,
        kwargs=dict(duration_known=True, num_jobs=400, seed=0),
        rounds=1,
        iterations=1,
    )
    record_text(
        "table4_testbed_known",
        format_speedup_table(
            rows, BASELINES,
            title="Table 4 — durations known (paper: SRTF 2.12/1.56/3.31, "
                  "SRSF 2.03/1.59/3.82, Muri-S 1/1/1)",
        ),
    )
    assert rows["Normalized JCT"]["Muri-S"] == 1.0
    for baseline in ("SRTF", "SRSF"):
        assert rows["Normalized JCT"][baseline] >= 1.0, baseline
        assert rows["Normalized Makespan"][baseline] >= 1.0, baseline
        assert rows["Normalized 99th %-ile JCT"][baseline] >= 1.0, baseline
    # SRTF (GPU-blind) trails SRSF, as in the paper.
    assert rows["Normalized JCT"]["SRTF"] >= rows["Normalized JCT"]["SRSF"]
