"""Table 1: stage-duration percentages per model.

Paper (16 V100 GPUs, PyTorch Profiler):

    Model       Load Data  Preprocess  Propagate  Synchronize
    ShuffleNet  60%        18%         6%         2%
    VGG19       24%        4%          26%        41%
    GPT-2       0.06%      0.03%       85%        28%
    A2C         0%         91%         3%         0.2%

This bench regenerates the rows through the profiler pipeline: each
model's true profile is synthesized into a raw usage timeline, reduced
back to stages with the section-4.2 procedure, and reported as
percentages of the iteration.
"""

from repro.analysis.report import format_table
from repro.analysis.experiments import table1_stage_percentages
from repro.models.zoo import get_model
from repro.profiler.timeline import synthesize_timeline

PAPER_ROWS = {
    "ShuffleNet": (60.0, 18.0, 6.0, 2.0),
    "VGG19": (24.0, 4.0, 26.0, 41.0),
    "GPT-2": (0.06, 0.03, 85.0, 28.0),
    "A2C": (0.0, 91.0, 3.0, 0.2),
}


def _measure_via_timeline(model_name: str):
    """Profile a model the way the real system would: from raw usage."""
    model = get_model(model_name)
    truth = model.stage_profile(16)
    timeline = synthesize_timeline(truth, sample_interval=0.001, seed=1)
    measured = timeline.to_stage_profile(threshold=0.3)
    total = measured.iteration_time
    return tuple(100.0 * d / total for d in measured.durations)


def test_table1(benchmark, record_text):
    def run():
        rows = []
        for name, *_pcts in table1_stage_percentages():
            measured = _measure_via_timeline(name)
            rows.append((name, *measured))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    header = ["Model", "Load Data %", "Preprocess %", "Propagate %", "Synchronize %"]
    record_text(
        "table1_stage_percentages",
        format_table(header, rows, title="Table 1 (measured via profiler pipeline)"),
    )

    # Shape check: measured percentages recover the published stage mix
    # (paper rows are raw and may not sum to 100; compare normalized).
    for name, *measured in rows:
        paper = PAPER_ROWS[name]
        paper_norm = [100.0 * p / sum(paper) for p in paper]
        for got, want in zip(measured, paper_norm):
            assert abs(got - want) < 6.0, (name, got, want)
